// Package interp executes UDF ASTs over boxed pyvalue objects. It is
// Tuplex's fallback path (the "Python interpreter" of §4.3) and the UDF
// engine of the interpreter-based baselines.
//
// Three execution modes mirror the systems compared in the paper's §6.2:
//
//   - tree-walking evaluation (CPython analog, the default);
//   - Compile: one-time AST→closure translation over boxed values
//     ("unrolled interpreter", the Cython/Nuitka transpiler analog);
//   - Trace: warmup-counted trace compilation with per-call type guards
//     and deopt (the PyPy tracing-JIT analog).
//
// All modes share pyvalue's Python semantics, so they are interchangeable
// oracles for the compiled fast path.
package interp

import (
	"sync/atomic"

	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyre"
	"github.com/gotuplex/tuplex/internal/pyvalue"
)

// Interp is an interpreter instance. It is not safe for concurrent use;
// engines allocate one per executor thread (the paper's prototype
// likewise acquires the GIL per fallback invocation — our per-thread
// instances model the same serialization without a global lock).
type Interp struct {
	// Globals are module-level constants available to UDFs (e.g. the
	// LETTERS alphabet in the weblog pipeline).
	Globals map[string]pyvalue.Value
	// Rand powers random.choice.
	Rand *pyre.PRNG

	reCache map[string]*pyre.Regexp
}

// New returns an interpreter with the given globals (may be nil).
func New(globals map[string]pyvalue.Value) *Interp {
	return &Interp{
		Globals: globals,
		Rand:    pyre.NewPRNG(0x7457_1e4),
		reCache: make(map[string]*pyre.Regexp),
	}
}

// Regexp returns the compiled pattern, caching like Python's re module.
func (ip *Interp) Regexp(pattern string) (*pyre.Regexp, error) {
	if re, ok := ip.reCache[pattern]; ok {
		return re, nil
	}
	re, err := pyre.Compile(pattern)
	if err != nil {
		return nil, pyvalue.Raise(pyvalue.ExcValueError, "re.compile: %v", err)
	}
	ip.reCache[pattern] = re
	return re, nil
}

// ctl is statement-level control flow.
type ctl uint8

const (
	ctlNext ctl = iota
	ctlReturn
	ctlBreak
	ctlContinue
)

// env is a variable scope for one UDF invocation.
type env struct {
	vars map[string]pyvalue.Value
	ip   *Interp
}

// Call runs fn on args in tree-walking mode.
func (ip *Interp) Call(fn *pyast.Function, args []pyvalue.Value) (pyvalue.Value, error) {
	if len(args) != len(fn.Params) {
		return nil, pyvalue.Raise(pyvalue.ExcTypeError,
			"%s() takes %d positional arguments but %d were given",
			fnName(fn), len(fn.Params), len(args))
	}
	e := &env{vars: make(map[string]pyvalue.Value, len(fn.Params)+4), ip: ip}
	for i, p := range fn.Params {
		e.vars[p] = args[i]
	}
	c, v, err := e.execStmts(fn.Body)
	if err != nil {
		return nil, err
	}
	if c == ctlReturn {
		return v, nil
	}
	return pyvalue.None{}, nil
}

func fnName(fn *pyast.Function) string {
	if fn.Name != "" {
		return fn.Name
	}
	return "<lambda>"
}

func (e *env) execStmts(stmts []pyast.Stmt) (ctl, pyvalue.Value, error) {
	for _, s := range stmts {
		c, v, err := e.exec(s)
		if err != nil || c != ctlNext {
			return c, v, err
		}
	}
	return ctlNext, nil, nil
}

func (e *env) exec(s pyast.Stmt) (ctl, pyvalue.Value, error) {
	switch s := s.(type) {
	case *pyast.ExprStmt:
		_, err := e.eval(s.X)
		return ctlNext, nil, err
	case *pyast.Assign:
		v, err := e.eval(s.Value)
		if err != nil {
			return ctlNext, nil, err
		}
		return ctlNext, nil, e.assign(s.Target, v)
	case *pyast.AugAssign:
		cur, err := e.eval(s.Target)
		if err != nil {
			return ctlNext, nil, err
		}
		rhs, err := e.eval(s.Value)
		if err != nil {
			return ctlNext, nil, err
		}
		v, err := binOp(s.Op, cur, rhs)
		if err != nil {
			return ctlNext, nil, err
		}
		return ctlNext, nil, e.assign(s.Target, v)
	case *pyast.If:
		cond, err := e.eval(s.Cond)
		if err != nil {
			return ctlNext, nil, err
		}
		if pyvalue.Truth(cond) {
			atomic.AddInt64(&s.ThenTaken, 1)
			return e.execStmts(s.Then)
		}
		atomic.AddInt64(&s.ElseTaken, 1)
		if s.Else != nil {
			return e.execStmts(s.Else)
		}
		return ctlNext, nil, nil
	case *pyast.Return:
		if s.X == nil {
			return ctlReturn, pyvalue.None{}, nil
		}
		v, err := e.eval(s.X)
		if err != nil {
			return ctlNext, nil, err
		}
		return ctlReturn, v, nil
	case *pyast.For:
		return e.execFor(s)
	case *pyast.While:
		for {
			cond, err := e.eval(s.Cond)
			if err != nil {
				return ctlNext, nil, err
			}
			if !pyvalue.Truth(cond) {
				return ctlNext, nil, nil
			}
			c, v, err := e.execStmts(s.Body)
			if err != nil {
				return ctlNext, nil, err
			}
			switch c {
			case ctlReturn:
				return c, v, nil
			case ctlBreak:
				return ctlNext, nil, nil
			}
		}
	case *pyast.Pass:
		return ctlNext, nil, nil
	case *pyast.Break:
		return ctlBreak, nil, nil
	case *pyast.Continue:
		return ctlContinue, nil, nil
	default:
		return ctlNext, nil, pyvalue.Raise(pyvalue.ExcUnsupported, "statement %T", s)
	}
}

func (e *env) execFor(s *pyast.For) (ctl, pyvalue.Value, error) {
	items, err := e.iterate(s.Iter)
	if err != nil {
		return ctlNext, nil, err
	}
	for _, it := range items {
		if err := e.assign(s.Var, it); err != nil {
			return ctlNext, nil, err
		}
		c, v, err := e.execStmts(s.Body)
		if err != nil {
			return ctlNext, nil, err
		}
		switch c {
		case ctlReturn:
			return c, v, nil
		case ctlBreak:
			return ctlNext, nil, nil
		}
	}
	return ctlNext, nil, nil
}

// iterate materializes an iterable expression into a value slice.
func (e *env) iterate(expr pyast.Expr) ([]pyvalue.Value, error) {
	// range(...) iterates lazily in Python; materializing is equivalent
	// for the bounded loops UDFs use.
	v, err := e.eval(expr)
	if err != nil {
		return nil, err
	}
	return Iterate(v)
}

// Iterate converts an iterable value into a slice of elements.
func Iterate(v pyvalue.Value) ([]pyvalue.Value, error) {
	switch v := v.(type) {
	case *pyvalue.List:
		return v.Items, nil
	case *pyvalue.Tuple:
		return v.Items, nil
	case pyvalue.Str:
		items := make([]pyvalue.Value, len(v))
		for i := range v {
			items[i] = v[i : i+1]
		}
		return items, nil
	case *pyvalue.Dict:
		items := make([]pyvalue.Value, 0, v.Len())
		for _, k := range v.Keys() {
			items = append(items, pyvalue.Str(k))
		}
		return items, nil
	default:
		return nil, pyvalue.Raise(pyvalue.ExcTypeError, "%q object is not iterable", pyvalue.TypeName(v))
	}
}

func (e *env) assign(target pyast.Expr, v pyvalue.Value) error {
	switch t := target.(type) {
	case *pyast.Name:
		e.vars[t.Ident] = v
		return nil
	case *pyast.Subscript:
		cont, err := e.eval(t.X)
		if err != nil {
			return err
		}
		idx, err := e.eval(t.Index)
		if err != nil {
			return err
		}
		return pyvalue.SetIndex(cont, idx, v)
	case *pyast.TupleLit:
		items, err := Iterate(v)
		if err != nil {
			return pyvalue.Raise(pyvalue.ExcTypeError, "cannot unpack non-sequence %s", pyvalue.TypeName(v))
		}
		if len(items) != len(t.Elts) {
			return pyvalue.Raise(pyvalue.ExcValueError,
				"not enough values to unpack (expected %d, got %d)", len(t.Elts), len(items))
		}
		for i, el := range t.Elts {
			if err := e.assign(el, items[i]); err != nil {
				return err
			}
		}
		return nil
	default:
		return pyvalue.Raise(pyvalue.ExcUnsupported, "assignment target %T", target)
	}
}

func (e *env) eval(x pyast.Expr) (pyvalue.Value, error) {
	switch x := x.(type) {
	case *pyast.NumLit:
		if x.IsFloat {
			return pyvalue.Float(x.F), nil
		}
		return pyvalue.Int(x.I), nil
	case *pyast.StrLit:
		return pyvalue.Str(x.S), nil
	case *pyast.BoolLit:
		return pyvalue.Bool(x.B), nil
	case *pyast.NoneLit:
		return pyvalue.None{}, nil
	case *pyast.Name:
		if v, ok := e.vars[x.Ident]; ok {
			return v, nil
		}
		if v, ok := e.ip.Globals[x.Ident]; ok {
			return v, nil
		}
		return nil, pyvalue.Raise(pyvalue.ExcNameError, "name %q is not defined", x.Ident)
	case *pyast.BinOp:
		l, err := e.eval(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := e.eval(x.Right)
		if err != nil {
			return nil, err
		}
		return binOp(x.Op, l, r)
	case *pyast.UnaryOp:
		v, err := e.eval(x.X)
		if err != nil {
			return nil, err
		}
		return unaryOp(x.Op, v)
	case *pyast.Compare:
		left, err := e.eval(x.First)
		if err != nil {
			return nil, err
		}
		for i, op := range x.Ops {
			right, err := e.eval(x.Rest[i])
			if err != nil {
				return nil, err
			}
			res, err := pyvalue.Compare(op, left, right)
			if err != nil {
				return nil, err
			}
			if !pyvalue.Truth(res) {
				return pyvalue.Bool(false), nil
			}
			left = right
		}
		return pyvalue.Bool(true), nil
	case *pyast.BoolOp:
		var v pyvalue.Value
		var err error
		for i, sub := range x.Xs {
			v, err = e.eval(sub)
			if err != nil {
				return nil, err
			}
			last := i == len(x.Xs)-1
			if last {
				return v, nil
			}
			if x.Op == "and" && !pyvalue.Truth(v) {
				return v, nil
			}
			if x.Op == "or" && pyvalue.Truth(v) {
				return v, nil
			}
		}
		return v, nil
	case *pyast.IfExpr:
		cond, err := e.eval(x.Cond)
		if err != nil {
			return nil, err
		}
		if pyvalue.Truth(cond) {
			return e.eval(x.Then)
		}
		return e.eval(x.Else)
	case *pyast.Subscript:
		cont, err := e.eval(x.X)
		if err != nil {
			return nil, err
		}
		idx, err := e.eval(x.Index)
		if err != nil {
			return nil, err
		}
		return pyvalue.GetIndex(cont, idx)
	case *pyast.Slice:
		cont, err := e.eval(x.X)
		if err != nil {
			return nil, err
		}
		lo, err := e.evalBound(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := e.evalBound(x.Hi)
		if err != nil {
			return nil, err
		}
		step, err := e.evalBound(x.Step)
		if err != nil {
			return nil, err
		}
		return pyvalue.GetSlice(cont, lo, hi, step)
	case *pyast.TupleLit:
		items, err := e.evalAll(x.Elts)
		if err != nil {
			return nil, err
		}
		return &pyvalue.Tuple{Items: items}, nil
	case *pyast.ListLit:
		items, err := e.evalAll(x.Elts)
		if err != nil {
			return nil, err
		}
		return &pyvalue.List{Items: items}, nil
	case *pyast.DictLit:
		d := pyvalue.NewDict()
		for i := range x.Keys {
			k, err := e.eval(x.Keys[i])
			if err != nil {
				return nil, err
			}
			ks, ok := k.(pyvalue.Str)
			if !ok {
				return nil, pyvalue.Raise(pyvalue.ExcUnsupported, "non-string dict key %s", pyvalue.TypeName(k))
			}
			v, err := e.eval(x.Vals[i])
			if err != nil {
				return nil, err
			}
			d.Set(string(ks), v)
		}
		return d, nil
	case *pyast.ListComp:
		items, err := e.iterate(x.Iter)
		if err != nil {
			return nil, err
		}
		out := &pyvalue.List{}
		saved, had := e.vars[x.Var]
		for _, it := range items {
			e.vars[x.Var] = it
			if x.Cond != nil {
				c, err := e.eval(x.Cond)
				if err != nil {
					return nil, err
				}
				if !pyvalue.Truth(c) {
					continue
				}
			}
			v, err := e.eval(x.Elt)
			if err != nil {
				return nil, err
			}
			out.Items = append(out.Items, v)
		}
		if had {
			e.vars[x.Var] = saved
		} else {
			delete(e.vars, x.Var)
		}
		return out, nil
	case *pyast.Call:
		return e.evalCall(x)
	case *pyast.Attr:
		// Bare attribute access evaluates to a bound-method-like Func.
		recv, err := e.eval(x.X)
		if err != nil {
			return nil, err
		}
		name := x.Name
		return &pyvalue.Func{Name: name, Call: func(args []pyvalue.Value) (pyvalue.Value, error) {
			return pyvalue.CallMethod(recv, name, args)
		}}, nil
	case *pyast.Lambda:
		return nil, pyvalue.Raise(pyvalue.ExcUnsupported, "nested lambda")
	default:
		return nil, pyvalue.Raise(pyvalue.ExcUnsupported, "expression %T", x)
	}
}

func (e *env) evalBound(x pyast.Expr) (*int64, error) {
	if x == nil {
		return nil, nil
	}
	v, err := e.eval(x)
	if err != nil {
		return nil, err
	}
	switch v := v.(type) {
	case pyvalue.Int:
		n := int64(v)
		return &n, nil
	case pyvalue.Bool:
		n := int64(0)
		if v {
			n = 1
		}
		return &n, nil
	case pyvalue.None:
		return nil, nil
	default:
		return nil, pyvalue.Raise(pyvalue.ExcTypeError,
			"slice indices must be integers or None, not %s", pyvalue.TypeName(v))
	}
}

func (e *env) evalAll(xs []pyast.Expr) ([]pyvalue.Value, error) {
	items := make([]pyvalue.Value, len(xs))
	for i, x := range xs {
		v, err := e.eval(x)
		if err != nil {
			return nil, err
		}
		items[i] = v
	}
	return items, nil
}

func binOp(op string, l, r pyvalue.Value) (pyvalue.Value, error) {
	switch op {
	case "+":
		return pyvalue.Add(l, r)
	case "-":
		return pyvalue.Sub(l, r)
	case "*":
		return pyvalue.Mul(l, r)
	case "/":
		return pyvalue.TrueDiv(l, r)
	case "//":
		return pyvalue.FloorDiv(l, r)
	case "%":
		return pyvalue.Mod(l, r)
	case "**":
		return pyvalue.Pow(l, r)
	case "&":
		return pyvalue.BitAnd(l, r)
	case "|":
		return pyvalue.BitOr(l, r)
	case "^":
		return pyvalue.BitXor(l, r)
	case "<<":
		return pyvalue.LShift(l, r)
	case ">>":
		return pyvalue.RShift(l, r)
	default:
		return nil, pyvalue.Raise(pyvalue.ExcUnsupported, "operator %q", op)
	}
}

func unaryOp(op string, v pyvalue.Value) (pyvalue.Value, error) {
	switch op {
	case "-":
		return pyvalue.Neg(v)
	case "+":
		return pyvalue.Pos(v)
	case "~":
		return pyvalue.Invert(v)
	case "not":
		return pyvalue.Not(v), nil
	default:
		return nil, pyvalue.Raise(pyvalue.ExcUnsupported, "unary operator %q", op)
	}
}
