package interp

import (
	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
)

// Traced is the tracing-JIT analog (PyPy in §6.2.1). A function runs in
// the tree-walking interpreter for a warmup period while argument kinds
// are recorded; once hot, it is compiled to boxed closures with per-call
// type guards. A guard miss deoptimizes the call back to the interpreter
// — the same stay-boxed, guard-checked structure that keeps tracing JITs
// far from Tuplex's unboxed specialized code.
type Traced struct {
	fn       *pyast.Function
	ip       *Interp
	warmup   int
	calls    int
	compiled *Compiled
	guards   []pyvalue.Kind
	// Deopts counts guard misses, exported for experiment reporting.
	Deopts int
	// CExtBoundaryCost simulates cpyext-style conversion at a C-extension
	// boundary: when > 0, each call deep-copies its arguments and result
	// that many times (PyPy's documented slowdown with Pandas/NumPy-style
	// extension modules).
	CExtBoundaryCost int
}

// DefaultWarmup is the call count before trace compilation, mirroring
// tracing-JIT hot-loop thresholds.
const DefaultWarmup = 1000

// NewTraced wraps fn for traced execution.
func NewTraced(ip *Interp, fn *pyast.Function, warmup int) *Traced {
	if warmup <= 0 {
		warmup = DefaultWarmup
	}
	return &Traced{fn: fn, ip: ip, warmup: warmup}
}

// Call executes one invocation.
func (t *Traced) Call(args []pyvalue.Value) (pyvalue.Value, error) {
	if t.CExtBoundaryCost > 0 {
		for range t.CExtBoundaryCost {
			for i, a := range args {
				args[i] = pyvalue.Copy(a)
			}
		}
	}
	t.calls++
	if t.compiled == nil {
		if t.calls >= t.warmup {
			t.compileTrace(args)
		}
		return t.ip.Call(t.fn, args)
	}
	// Guard check: argument kinds must match the trace.
	for i, a := range args {
		if i >= len(t.guards) || a.Kind() != t.guards[i] {
			t.Deopts++
			return t.ip.Call(t.fn, args)
		}
	}
	v, err := t.compiled.Call(t.ip, args)
	if err != nil {
		return nil, err
	}
	if t.CExtBoundaryCost > 0 {
		for range t.CExtBoundaryCost {
			v = pyvalue.Copy(v)
		}
	}
	return v, nil
}

func (t *Traced) compileTrace(args []pyvalue.Value) {
	c, err := t.ip.Compile(t.fn)
	if err != nil {
		// Trace bails: stay in the interpreter forever (PyPy's blackhole).
		t.warmup = int(^uint(0) >> 1)
		return
	}
	t.compiled = c
	t.guards = make([]pyvalue.Kind, len(args))
	for i, a := range args {
		t.guards[i] = a.Kind()
	}
}

// Compiled reports whether the trace is live (for tests).
func (t *Traced) IsCompiled() bool { return t.compiled != nil }
