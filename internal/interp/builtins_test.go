package interp

import (
	"testing"

	"github.com/gotuplex/tuplex/internal/pyvalue"
)

func TestRangeVariants(t *testing.T) {
	v := evalOK(t, "lambda n: range(n)", pyvalue.Int(3))
	if l := v.(*pyvalue.List); len(l.Items) != 3 || !pyvalue.Equal(l.Items[2], pyvalue.Int(2)) {
		t.Fatalf("range(3) = %s", pyvalue.Repr(v))
	}
	v = evalOK(t, "lambda n: range(2, n)", pyvalue.Int(5))
	if l := v.(*pyvalue.List); len(l.Items) != 3 {
		t.Fatalf("range(2,5) = %s", pyvalue.Repr(v))
	}
	v = evalOK(t, "lambda n: range(n, 0, -2)", pyvalue.Int(6))
	if l := v.(*pyvalue.List); len(l.Items) != 3 || !pyvalue.Equal(l.Items[0], pyvalue.Int(6)) {
		t.Fatalf("range(6,0,-2) = %s", pyvalue.Repr(v))
	}
	_, err := runUDF(t, "lambda n: range(0, 5, 0)", pyvalue.Int(1))
	if pyvalue.KindOf(err) != pyvalue.ExcValueError {
		t.Fatalf("zero step: %v", err)
	}
}

func TestSortedBuiltin(t *testing.T) {
	v := evalOK(t, "lambda x: sorted(x)",
		&pyvalue.List{Items: []pyvalue.Value{pyvalue.Int(3), pyvalue.Int(1), pyvalue.Int(2)}})
	l := v.(*pyvalue.List)
	if !pyvalue.Equal(l.Items[0], pyvalue.Int(1)) || !pyvalue.Equal(l.Items[2], pyvalue.Int(3)) {
		t.Fatalf("sorted = %s", pyvalue.Repr(v))
	}
	// Unorderable elements raise like Python.
	_, err := runUDF(t, "lambda x: sorted(x)",
		&pyvalue.List{Items: []pyvalue.Value{pyvalue.Int(1), pyvalue.Str("a")}})
	if pyvalue.KindOf(err) != pyvalue.ExcTypeError {
		t.Fatalf("err = %v", err)
	}
}

func TestSumBuiltin(t *testing.T) {
	v := evalOK(t, "lambda x: sum(x)",
		&pyvalue.List{Items: []pyvalue.Value{pyvalue.Int(1), pyvalue.Int(2), pyvalue.Float(0.5)}})
	wantEq(t, v, pyvalue.Float(3.5))
	v = evalOK(t, "lambda x: sum(x, 100)",
		&pyvalue.List{Items: []pyvalue.Value{pyvalue.Int(1)}})
	wantEq(t, v, pyvalue.Int(101))
}

func TestOrdChr(t *testing.T) {
	wantEq(t, evalOK(t, "lambda c: ord(c)", pyvalue.Str("A")), pyvalue.Int(65))
	wantEq(t, evalOK(t, "lambda n: chr(n)", pyvalue.Int(66)), pyvalue.Str("B"))
	_, err := runUDF(t, "lambda c: ord(c)", pyvalue.Str("AB"))
	if pyvalue.KindOf(err) != pyvalue.ExcTypeError {
		t.Fatalf("err = %v", err)
	}
}

func TestBoolAndLenBuiltins(t *testing.T) {
	wantEq(t, evalOK(t, "lambda x: bool(x)", pyvalue.Str("")), pyvalue.Bool(false))
	wantEq(t, evalOK(t, "lambda x: bool(x)", pyvalue.Int(-1)), pyvalue.Bool(true))
	wantEq(t, evalOK(t, "lambda x: len(x)",
		&pyvalue.Tuple{Items: []pyvalue.Value{pyvalue.Int(1), pyvalue.Int(2)}}), pyvalue.Int(2))
	_, err := runUDF(t, "lambda x: len(x)", pyvalue.Int(5))
	if pyvalue.KindOf(err) != pyvalue.ExcTypeError {
		t.Fatalf("err = %v", err)
	}
}

func TestDictGetAndMembership(t *testing.T) {
	d := pyvalue.NewDict()
	d.Set("k", pyvalue.Int(1))
	wantEq(t, evalOK(t, "lambda x: x.get('k', 0) + x.get('missing', 10)", d), pyvalue.Int(11))
	wantEq(t, evalOK(t, "lambda x: 'k' in x", d), pyvalue.Bool(true))
	wantEq(t, evalOK(t, "lambda x: 'z' in x", d), pyvalue.Bool(false))
}

func TestListMutationInUDF(t *testing.T) {
	src := `def f(n):
    out = []
    for i in range(n):
        out.append(i * i)
    return out
`
	v := evalOK(t, src, pyvalue.Int(4))
	l := v.(*pyvalue.List)
	if len(l.Items) != 4 || !pyvalue.Equal(l.Items[3], pyvalue.Int(9)) {
		t.Fatalf("got %s", pyvalue.Repr(v))
	}
}

func TestSubscriptAssignment(t *testing.T) {
	src := `def f(n):
    out = [0, 0, 0]
    out[1] = n
    out[-1] = n * 2
    return out
`
	v := evalOK(t, src, pyvalue.Int(7))
	l := v.(*pyvalue.List)
	if !pyvalue.Equal(l.Items[1], pyvalue.Int(7)) || !pyvalue.Equal(l.Items[2], pyvalue.Int(14)) {
		t.Fatalf("got %s", pyvalue.Repr(v))
	}
}

func TestMathFloorModule(t *testing.T) {
	wantEq(t, evalOK(t, "lambda x: math.floor(x)", pyvalue.Float(2.7)), pyvalue.Float(2))
}

func TestShadowedBuiltin(t *testing.T) {
	src := `def f(x):
    len = 10
    return len + x
`
	wantEq(t, evalOK(t, src, pyvalue.Int(5)), pyvalue.Int(15))
}
