package interp

import (
	"testing"

	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
)

// runUDF parses and tree-walks a UDF on args.
func runUDF(t *testing.T, src string, args ...pyvalue.Value) (pyvalue.Value, error) {
	t.Helper()
	fn, err := pyast.ParseUDF(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return New(nil).Call(fn, args)
}

func evalOK(t *testing.T, src string, args ...pyvalue.Value) pyvalue.Value {
	t.Helper()
	v, err := runUDF(t, src, args...)
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return v
}

func wantEq(t *testing.T, got pyvalue.Value, want pyvalue.Value) {
	t.Helper()
	if !pyvalue.Equal(got, want) || got.Kind() != want.Kind() {
		t.Fatalf("got %s (%s), want %s (%s)",
			pyvalue.Repr(got), pyvalue.TypeName(got), pyvalue.Repr(want), pyvalue.TypeName(want))
	}
}

func TestLambdaArithmetic(t *testing.T) {
	wantEq(t, evalOK(t, "lambda m: m * 1.609", pyvalue.Float(100)), pyvalue.Float(160.9))
	wantEq(t, evalOK(t, "lambda m: m * 1.609", pyvalue.Int(100)), pyvalue.Float(160.9))
	wantEq(t, evalOK(t, "lambda a, b: a // b", pyvalue.Int(7), pyvalue.Int(2)), pyvalue.Int(3))
}

func TestTernaryNullGuard(t *testing.T) {
	src := "lambda m: m * 1.609 if m else 0.0"
	wantEq(t, evalOK(t, src, pyvalue.Float(2)), pyvalue.Float(3.218))
	wantEq(t, evalOK(t, src, pyvalue.None{}), pyvalue.Float(0))
	wantEq(t, evalOK(t, src, pyvalue.Int(0)), pyvalue.Float(0))
	// Without the guard, None raises TypeError like Python.
	_, err := runUDF(t, "lambda m: m * 1.609", pyvalue.None{})
	if pyvalue.KindOf(err) != pyvalue.ExcTypeError {
		t.Fatalf("err = %v", err)
	}
}

func TestChainedComparison(t *testing.T) {
	src := "lambda x: 100000 < x <= 2e7"
	wantEq(t, evalOK(t, src, pyvalue.Int(500000)), pyvalue.Bool(true))
	wantEq(t, evalOK(t, src, pyvalue.Int(100000)), pyvalue.Bool(false))
	wantEq(t, evalOK(t, src, pyvalue.Float(2e7)), pyvalue.Bool(true))
	wantEq(t, evalOK(t, src, pyvalue.Float(2.1e7)), pyvalue.Bool(false))
}

func TestShortCircuit(t *testing.T) {
	// `x and x['a']` must not index when x is falsy.
	src := "lambda x: x and x[0]"
	wantEq(t, evalOK(t, src, pyvalue.Str("")), pyvalue.Str(""))
	wantEq(t, evalOK(t, src, pyvalue.Str("ab")), pyvalue.Str("a"))
	// `or` returns the first truthy operand itself.
	wantEq(t, evalOK(t, "lambda x: x or 'default'", pyvalue.Str("")), pyvalue.Str("default"))
	wantEq(t, evalOK(t, "lambda x: x or 'default'", pyvalue.Str("v")), pyvalue.Str("v"))
}

func TestZeroDivisionRaises(t *testing.T) {
	_, err := runUDF(t, "lambda a, b: a / b", pyvalue.Int(1), pyvalue.Int(0))
	if pyvalue.KindOf(err) != pyvalue.ExcZeroDivisionError {
		t.Fatalf("err = %v", err)
	}
}

func TestDictRowAccess(t *testing.T) {
	row := pyvalue.NewDict()
	row.Set("price", pyvalue.Str("$1,500"))
	v := evalOK(t, "lambda x: int(x['price'][1:].replace(',', ''))", row)
	wantEq(t, v, pyvalue.Int(1500))
	_, err := runUDF(t, "lambda x: x['missing']", row)
	if pyvalue.KindOf(err) != pyvalue.ExcKeyError {
		t.Fatalf("err = %v", err)
	}
}

func TestExtractBdUDF(t *testing.T) {
	src := `def extractBd(x):
    val = x['facts and features']
    max_idx = val.find(' bd')
    if max_idx < 0:
        max_idx = len(val)
    s = val[:max_idx]
    split_idx = s.rfind(',')
    if split_idx < 0:
        split_idx = 0
    else:
        split_idx += 2
    r = s[split_idx:]
    return int(r)
`
	row := pyvalue.NewDict()
	row.Set("facts and features", pyvalue.Str("3 bds, 2 ba , 1,560 sqft"))
	wantEq(t, evalOK(t, src, row), pyvalue.Int(3))

	// Malformed: no digit -> ValueError, like Python.
	row2 := pyvalue.NewDict()
	row2.Set("facts and features", pyvalue.Str("studio apartment"))
	_, err := runUDF(t, src, row2)
	if pyvalue.KindOf(err) != pyvalue.ExcValueError {
		t.Fatalf("err = %v", err)
	}
}

func TestExtractPriceUDF(t *testing.T) {
	src := `def extractPrice(x):
    price = x['price']
    p = 0
    if x['offer'] == 'sold':
        val = x['facts and features']
        s = val[val.find('Price/sqft:') + len('Price/sqft:') + 1:]
        r = s[s.find('$')+1:s.find(', ') - 1]
        price_per_sqft = int(r)
        p = price_per_sqft * x['sqft']
    elif x['offer'] == 'rent':
        max_idx = price.rfind('/')
        p = int(price[1:max_idx].replace(',', ''))
    else:
        p = int(price[1:].replace(',', ''))
    return p
`
	mk := func(price, offer, facts string, sqft int64) *pyvalue.Dict {
		d := pyvalue.NewDict()
		d.Set("price", pyvalue.Str(price))
		d.Set("offer", pyvalue.Str(offer))
		d.Set("facts and features", pyvalue.Str(facts))
		d.Set("sqft", pyvalue.Int(sqft))
		return d
	}
	wantEq(t, evalOK(t, src, mk("$1,250,000", "sale", "", 0)), pyvalue.Int(1250000))
	wantEq(t, evalOK(t, src, mk("$2,500/mo", "rent", "", 0)), pyvalue.Int(2500))
	// Zillow facts strings carry a space before the comma after the
	// price-per-sqft figure; the UDF's `s.find(', ') - 1` depends on it.
	wantEq(t, evalOK(t, src, mk("", "sold", "Price/sqft: $250 , built 1995", 1000)), pyvalue.Int(250000))
}

func TestFormatUDFs(t *testing.T) {
	v := evalOK(t, "lambda x: '{:02}:{:02}'.format(int(x / 100), x % 100) if x else None", pyvalue.Int(545))
	wantEq(t, v, pyvalue.Str("05:45"))
	v = evalOK(t, "lambda x: '%05d' % int(x)", pyvalue.Str("2134"))
	wantEq(t, v, pyvalue.Str("02134"))
}

func TestCapitalizeCityUDF(t *testing.T) {
	v := evalOK(t, "lambda x: x[0].upper() + x[1:].lower()", pyvalue.Str("bOSTON"))
	wantEq(t, v, pyvalue.Str("Boston"))
	// Empty city raises IndexError in Python.
	_, err := runUDF(t, "lambda x: x[0].upper() + x[1:].lower()", pyvalue.Str(""))
	if pyvalue.KindOf(err) != pyvalue.ExcIndexError {
		t.Fatalf("err = %v", err)
	}
}

func TestForLoopAndListComp(t *testing.T) {
	src := `def f(n):
    total = 0
    for i in range(n):
        if i % 2 == 0:
            continue
        total += i
    return total
`
	wantEq(t, evalOK(t, src, pyvalue.Int(10)), pyvalue.Int(25))
	v := evalOK(t, "lambda n: [i * i for i in range(n) if i > 1]", pyvalue.Int(5))
	l := v.(*pyvalue.List)
	if len(l.Items) != 3 || !pyvalue.Equal(l.Items[2], pyvalue.Int(16)) {
		t.Fatalf("listcomp = %s", pyvalue.Repr(v))
	}
}

func TestWhileLoop(t *testing.T) {
	src := `def f(n):
    i = 0
    while i * i < n:
        i += 1
    return i
`
	wantEq(t, evalOK(t, src, pyvalue.Int(17)), pyvalue.Int(5))
}

func TestGlobalsAndRandomChoice(t *testing.T) {
	fn, err := pyast.ParseUDF("lambda x: ''.join([random_choice(LETTERS) for t in range(10)])")
	if err != nil {
		t.Fatal(err)
	}
	ip := New(map[string]pyvalue.Value{"LETTERS": pyvalue.Str("ABCDEFGHIJKLMNOPQRSTUVWXYZ")})
	v, err := ip.Call(fn, []pyvalue.Value{pyvalue.Str("ignored")})
	if err != nil {
		t.Fatal(err)
	}
	s := string(v.(pyvalue.Str))
	if len(s) != 10 {
		t.Fatalf("len = %d (%q)", len(s), s)
	}
	for i := range s {
		if s[i] < 'A' || s[i] > 'Z' {
			t.Fatalf("bad char in %q", s)
		}
	}
}

func TestRegexSearchUDF(t *testing.T) {
	src := `def parse(logline):
    match = re_search('^(\S+) (\S+)', logline)
    if match:
        return match[1]
    return ''
`
	wantEq(t, evalOK(t, src, pyvalue.Str("1.2.3.4 - rest")), pyvalue.Str("1.2.3.4"))
	wantEq(t, evalOK(t, src, pyvalue.Str("")), pyvalue.Str(""))
}

func TestRegexModuleAttrForm(t *testing.T) {
	// re.sub(...) as an attribute call.
	v := evalOK(t, "lambda x: re.sub('^/~[^/]+', '/~anon', x)", pyvalue.Str("/~alice/pubs"))
	wantEq(t, v, pyvalue.Str("/~anon/pubs"))
}

func TestStringCapwords(t *testing.T) {
	v := evalOK(t, "lambda x: string.capwords(x)", pyvalue.Str("LOGAN  INTL"))
	wantEq(t, v, pyvalue.Str("Logan Intl"))
	v = evalOK(t, "lambda x: string_capwords(x)", pyvalue.Str("a b"))
	wantEq(t, v, pyvalue.Str("A B"))
}

func TestNoneAttributeRaises(t *testing.T) {
	_, err := runUDF(t, "lambda x: x.rfind(',')", pyvalue.None{})
	if pyvalue.KindOf(err) != pyvalue.ExcAttributeError {
		t.Fatalf("err = %v", err)
	}
}

func TestTupleUnpackingAndReturn(t *testing.T) {
	src := `def f(x):
    a, b = x[0], x[1]
    return b, a
`
	v := evalOK(t, src, &pyvalue.Tuple{Items: []pyvalue.Value{pyvalue.Int(1), pyvalue.Int(2)}})
	tu := v.(*pyvalue.Tuple)
	if !pyvalue.Equal(tu.Items[0], pyvalue.Int(2)) || !pyvalue.Equal(tu.Items[1], pyvalue.Int(1)) {
		t.Fatalf("got %s", pyvalue.Repr(v))
	}
}

func TestDictLiteralReturn(t *testing.T) {
	v := evalOK(t, "lambda x: {'a': x + 1, 'b': 'y'}", pyvalue.Int(1))
	d := v.(*pyvalue.Dict)
	a, _ := d.Get("a")
	wantEq(t, a, pyvalue.Int(2))
}

func TestUnboundNameRaises(t *testing.T) {
	_, err := runUDF(t, "lambda x: undefined_name + 1", pyvalue.Int(1))
	if pyvalue.KindOf(err) != pyvalue.ExcNameError {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregateCombinerUDF(t *testing.T) {
	// Two-argument UDFs back .aggregate (§4.6).
	v := evalOK(t, "lambda acc, r: acc + r", pyvalue.Int(10), pyvalue.Int(5))
	wantEq(t, v, pyvalue.Int(15))
}

// ---- Compiled (transpiler-analog) mode ----

var equivalenceUDFs = []struct {
	src  string
	args [][]pyvalue.Value
}{
	{"lambda m: m * 1.609 if m else 0.0",
		[][]pyvalue.Value{{pyvalue.Float(2)}, {pyvalue.None{}}, {pyvalue.Int(3)}}},
	{"lambda x: x[0].upper() + x[1:].lower()",
		[][]pyvalue.Value{{pyvalue.Str("bOSTON")}, {pyvalue.Str("")}}},
	{"lambda a, b: a // b",
		[][]pyvalue.Value{{pyvalue.Int(7), pyvalue.Int(2)}, {pyvalue.Int(1), pyvalue.Int(0)}, {pyvalue.Int(-7), pyvalue.Int(2)}}},
	{`def f(n):
    total = 0
    for i in range(n):
        total += i * i
    return total
`, [][]pyvalue.Value{{pyvalue.Int(10)}, {pyvalue.Int(0)}}},
	{"lambda x: 100000 < x <= 2e7",
		[][]pyvalue.Value{{pyvalue.Int(150000)}, {pyvalue.Int(5)}, {pyvalue.Str("x")}}},
	{"lambda s: s.split(' ')[1] if ' ' in s else s",
		[][]pyvalue.Value{{pyvalue.Str("a b c")}, {pyvalue.Str("solo")}}},
	{"lambda x: int(x)",
		[][]pyvalue.Value{{pyvalue.Str("42")}, {pyvalue.Str("bad")}, {pyvalue.None{}}, {pyvalue.Float(9.7)}}},
}

// TestCompiledMatchesInterp is the transpiler-vs-interpreter equivalence
// property: both modes must agree on results and exception kinds.
func TestCompiledMatchesInterp(t *testing.T) {
	for _, c := range equivalenceUDFs {
		fn, err := pyast.ParseUDF(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		ip := New(nil)
		compiled, err := ip.Compile(fn)
		if err != nil {
			t.Fatalf("compile %q: %v", c.src, err)
		}
		for _, args := range c.args {
			want, werr := ip.Call(fn, args)
			got, gerr := compiled.Call(ip, args)
			if pyvalue.KindOf(werr) != pyvalue.KindOf(gerr) {
				t.Errorf("%q %v: interp err %v, compiled err %v", c.src, args, werr, gerr)
				continue
			}
			if werr == nil && (!pyvalue.Equal(want, got) || want.Kind() != got.Kind()) {
				t.Errorf("%q %v: interp %s, compiled %s", c.src, args,
					pyvalue.Repr(want), pyvalue.Repr(got))
			}
		}
	}
}

func TestCompiledLocalScopingBeforeAssignment(t *testing.T) {
	// Python treats names assigned anywhere in the function as locals.
	src := `def f(x):
    if x > 0:
        y = 1
    return y
`
	fn, _ := pyast.ParseUDF(src)
	ip := New(nil)
	compiled, err := ip.Compile(fn)
	if err != nil {
		t.Fatal(err)
	}
	v, err := compiled.Call(ip, []pyvalue.Value{pyvalue.Int(5)})
	if err != nil {
		t.Fatal(err)
	}
	wantEq(t, v, pyvalue.Int(1))
	_, err = compiled.Call(ip, []pyvalue.Value{pyvalue.Int(-5)})
	if pyvalue.KindOf(err) != pyvalue.ExcNameError {
		t.Fatalf("err = %v", err)
	}
}

// ---- Traced (tracing-JIT-analog) mode ----

func TestTracedWarmupAndGuards(t *testing.T) {
	fn, _ := pyast.ParseUDF("lambda m: m * 2")
	ip := New(nil)
	tr := NewTraced(ip, fn, 5)
	for i := range 10 {
		v, err := tr.Call([]pyvalue.Value{pyvalue.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		wantEq(t, v, pyvalue.Int(int64(2*i)))
	}
	if !tr.IsCompiled() {
		t.Fatal("trace did not compile after warmup")
	}
	// Different argument kind hits the guard and deopts, still correct.
	v, err := tr.Call([]pyvalue.Value{pyvalue.Float(1.5)})
	if err != nil {
		t.Fatal(err)
	}
	wantEq(t, v, pyvalue.Float(3))
	if tr.Deopts != 1 {
		t.Fatalf("deopts = %d", tr.Deopts)
	}
}

func TestTracedMatchesInterp(t *testing.T) {
	for _, c := range equivalenceUDFs {
		fn, err := pyast.ParseUDF(c.src)
		if err != nil {
			t.Fatal(err)
		}
		ip := New(nil)
		tr := NewTraced(ip, fn, 2)
		for round := range 3 { // crosses the warmup boundary
			_ = round
			for _, args := range c.args {
				want, werr := ip.Call(fn, args)
				got, gerr := tr.Call(args)
				if pyvalue.KindOf(werr) != pyvalue.KindOf(gerr) {
					t.Errorf("%q: err mismatch %v vs %v", c.src, werr, gerr)
					continue
				}
				if werr == nil && !pyvalue.Equal(want, got) {
					t.Errorf("%q: %s vs %s", c.src, pyvalue.Repr(want), pyvalue.Repr(got))
				}
			}
		}
	}
}

func TestIsNotNone(t *testing.T) {
	wantEq(t, evalOK(t, "lambda x: x is None", pyvalue.None{}), pyvalue.Bool(true))
	wantEq(t, evalOK(t, "lambda x: x is not None", pyvalue.None{}), pyvalue.Bool(false))
	wantEq(t, evalOK(t, "lambda x: x is None", pyvalue.Int(0)), pyvalue.Bool(false))
}

func TestStrOfValues(t *testing.T) {
	wantEq(t, evalOK(t, "lambda x: str(x)", pyvalue.Float(2.5)), pyvalue.Str("2.5"))
	wantEq(t, evalOK(t, "lambda x: str(x)", pyvalue.None{}), pyvalue.Str("None"))
	wantEq(t, evalOK(t, "lambda x: str(x)", pyvalue.Bool(true)), pyvalue.Str("True"))
}
