package interp

import (
	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
)

// Compiled is a UDF translated once into a tree of Go closures over boxed
// values: the moral equivalent of Cython/Nuitka's "unrolled interpreter"
// output (§6.2.1). Dispatch on AST node kinds is paid at compile time
// only, but every value is still a heap-boxed Python object — which is
// exactly why the paper finds transpilers only ~20% faster than CPython.
type Compiled struct {
	Fn     *pyast.Function
	nslots int
	params []int
	body   []bstmt
}

// bframe is the runtime frame of a Compiled UDF.
type bframe struct {
	slots []pyvalue.Value
	ip    *Interp
}

type bexpr func(fr *bframe) (pyvalue.Value, error)
type bstmt func(fr *bframe) (ctl, pyvalue.Value, error)

// Compile translates fn into closures. The returned Compiled is safe for
// concurrent Call only if each goroutine uses its own Interp; engines
// compile once per executor.
func (ip *Interp) Compile(fn *pyast.Function) (*Compiled, error) {
	bc := &bcompiler{ip: ip, slots: map[string]int{}}
	for _, p := range fn.Params {
		bc.slot(p)
	}
	// Pre-allocate slots for every assigned name so that reads compiled
	// before the (textually later) assignment still resolve as locals,
	// matching Python's function-wide local scoping.
	pyast.InspectStmts(fn.Body, func(n pyast.Node) bool {
		switch n := n.(type) {
		case *pyast.Assign:
			bc.slotTarget(n.Target)
		case *pyast.AugAssign:
			bc.slotTarget(n.Target)
		case *pyast.For:
			bc.slotTarget(n.Var)
		case *pyast.ListComp:
			bc.slot(n.Var)
		}
		return true
	})
	c := &Compiled{Fn: fn}
	for _, p := range fn.Params {
		c.params = append(c.params, bc.slots[p])
	}
	body, err := bc.compileStmts(fn.Body)
	if err != nil {
		return nil, err
	}
	c.body = body
	c.nslots = len(bc.slots)
	return c, nil
}

// Call executes the compiled UDF. The interp argument supplies the
// per-thread regex cache and PRNG.
func (c *Compiled) Call(ip *Interp, args []pyvalue.Value) (pyvalue.Value, error) {
	if len(args) != len(c.params) {
		return nil, pyvalue.Raise(pyvalue.ExcTypeError,
			"%s() takes %d positional arguments but %d were given",
			fnName(c.Fn), len(c.params), len(args))
	}
	fr := &bframe{slots: make([]pyvalue.Value, c.nslots), ip: ip}
	for i, s := range c.params {
		fr.slots[s] = args[i]
	}
	for _, st := range c.body {
		ctl, v, err := st(fr)
		if err != nil {
			return nil, err
		}
		if ctl == ctlReturn {
			return v, nil
		}
	}
	return pyvalue.None{}, nil
}

type bcompiler struct {
	ip    *Interp
	slots map[string]int
}

func (bc *bcompiler) slot(name string) int {
	if s, ok := bc.slots[name]; ok {
		return s
	}
	s := len(bc.slots)
	bc.slots[name] = s
	return s
}

func (bc *bcompiler) compileStmts(stmts []pyast.Stmt) ([]bstmt, error) {
	out := make([]bstmt, 0, len(stmts))
	for _, s := range stmts {
		cs, err := bc.compileStmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}

func runStmts(fr *bframe, stmts []bstmt) (ctl, pyvalue.Value, error) {
	for _, s := range stmts {
		c, v, err := s(fr)
		if err != nil || c != ctlNext {
			return c, v, err
		}
	}
	return ctlNext, nil, nil
}

func (bc *bcompiler) compileStmt(s pyast.Stmt) (bstmt, error) {
	switch s := s.(type) {
	case *pyast.ExprStmt:
		x, err := bc.compileExpr(s.X)
		if err != nil {
			return nil, err
		}
		return func(fr *bframe) (ctl, pyvalue.Value, error) {
			_, err := x(fr)
			return ctlNext, nil, err
		}, nil
	case *pyast.Assign:
		v, err := bc.compileExpr(s.Value)
		if err != nil {
			return nil, err
		}
		st, err := bc.compileAssign(s.Target, v)
		if err != nil {
			return nil, err
		}
		return st, nil
	case *pyast.AugAssign:
		cur, err := bc.compileExpr(s.Target)
		if err != nil {
			return nil, err
		}
		rhs, err := bc.compileExpr(s.Value)
		if err != nil {
			return nil, err
		}
		op := s.Op
		comb := func(fr *bframe) (pyvalue.Value, error) {
			a, err := cur(fr)
			if err != nil {
				return nil, err
			}
			b, err := rhs(fr)
			if err != nil {
				return nil, err
			}
			return binOp(op, a, b)
		}
		return bc.compileAssign(s.Target, comb)
	case *pyast.Return:
		if s.X == nil {
			return func(fr *bframe) (ctl, pyvalue.Value, error) {
				return ctlReturn, pyvalue.None{}, nil
			}, nil
		}
		x, err := bc.compileExpr(s.X)
		if err != nil {
			return nil, err
		}
		return func(fr *bframe) (ctl, pyvalue.Value, error) {
			v, err := x(fr)
			if err != nil {
				return ctlNext, nil, err
			}
			return ctlReturn, v, nil
		}, nil
	case *pyast.If:
		cond, err := bc.compileExpr(s.Cond)
		if err != nil {
			return nil, err
		}
		then, err := bc.compileStmts(s.Then)
		if err != nil {
			return nil, err
		}
		var els []bstmt
		if s.Else != nil {
			if els, err = bc.compileStmts(s.Else); err != nil {
				return nil, err
			}
		}
		return func(fr *bframe) (ctl, pyvalue.Value, error) {
			c, err := cond(fr)
			if err != nil {
				return ctlNext, nil, err
			}
			if pyvalue.Truth(c) {
				return runStmts(fr, then)
			}
			return runStmts(fr, els)
		}, nil
	case *pyast.For:
		iter, err := bc.compileExpr(s.Iter)
		if err != nil {
			return nil, err
		}
		setVar, err := bc.compileAssignValue(s.Var)
		if err != nil {
			return nil, err
		}
		body, err := bc.compileStmts(s.Body)
		if err != nil {
			return nil, err
		}
		return func(fr *bframe) (ctl, pyvalue.Value, error) {
			itv, err := iter(fr)
			if err != nil {
				return ctlNext, nil, err
			}
			items, err := Iterate(itv)
			if err != nil {
				return ctlNext, nil, err
			}
			for _, it := range items {
				if err := setVar(fr, it); err != nil {
					return ctlNext, nil, err
				}
				c, v, err := runStmts(fr, body)
				if err != nil {
					return ctlNext, nil, err
				}
				if c == ctlReturn {
					return c, v, nil
				}
				if c == ctlBreak {
					break
				}
			}
			return ctlNext, nil, nil
		}, nil
	case *pyast.While:
		cond, err := bc.compileExpr(s.Cond)
		if err != nil {
			return nil, err
		}
		body, err := bc.compileStmts(s.Body)
		if err != nil {
			return nil, err
		}
		return func(fr *bframe) (ctl, pyvalue.Value, error) {
			for {
				c, err := cond(fr)
				if err != nil {
					return ctlNext, nil, err
				}
				if !pyvalue.Truth(c) {
					return ctlNext, nil, nil
				}
				cc, v, err := runStmts(fr, body)
				if err != nil {
					return ctlNext, nil, err
				}
				if cc == ctlReturn {
					return cc, v, nil
				}
				if cc == ctlBreak {
					return ctlNext, nil, nil
				}
			}
		}, nil
	case *pyast.Pass:
		return func(fr *bframe) (ctl, pyvalue.Value, error) { return ctlNext, nil, nil }, nil
	case *pyast.Break:
		return func(fr *bframe) (ctl, pyvalue.Value, error) { return ctlBreak, nil, nil }, nil
	case *pyast.Continue:
		return func(fr *bframe) (ctl, pyvalue.Value, error) { return ctlContinue, nil, nil }, nil
	default:
		return nil, pyvalue.Raise(pyvalue.ExcUnsupported, "statement %T", s)
	}
}

func (bc *bcompiler) compileAssign(target pyast.Expr, value bexpr) (bstmt, error) {
	set, err := bc.compileAssignValue(target)
	if err != nil {
		return nil, err
	}
	return func(fr *bframe) (ctl, pyvalue.Value, error) {
		v, err := value(fr)
		if err != nil {
			return ctlNext, nil, err
		}
		return ctlNext, nil, set(fr, v)
	}, nil
}

// compileAssignValue compiles a target into a setter.
func (bc *bcompiler) compileAssignValue(target pyast.Expr) (func(fr *bframe, v pyvalue.Value) error, error) {
	switch t := target.(type) {
	case *pyast.Name:
		s := bc.slot(t.Ident)
		return func(fr *bframe, v pyvalue.Value) error {
			fr.slots[s] = v
			return nil
		}, nil
	case *pyast.Subscript:
		cont, err := bc.compileExpr(t.X)
		if err != nil {
			return nil, err
		}
		idx, err := bc.compileExpr(t.Index)
		if err != nil {
			return nil, err
		}
		return func(fr *bframe, v pyvalue.Value) error {
			c, err := cont(fr)
			if err != nil {
				return err
			}
			i, err := idx(fr)
			if err != nil {
				return err
			}
			return pyvalue.SetIndex(c, i, v)
		}, nil
	case *pyast.TupleLit:
		setters := make([]func(fr *bframe, v pyvalue.Value) error, len(t.Elts))
		for i, el := range t.Elts {
			set, err := bc.compileAssignValue(el)
			if err != nil {
				return nil, err
			}
			setters[i] = set
		}
		return func(fr *bframe, v pyvalue.Value) error {
			items, err := Iterate(v)
			if err != nil {
				return pyvalue.Raise(pyvalue.ExcTypeError, "cannot unpack non-sequence %s", pyvalue.TypeName(v))
			}
			if len(items) != len(setters) {
				return pyvalue.Raise(pyvalue.ExcValueError,
					"not enough values to unpack (expected %d, got %d)", len(setters), len(items))
			}
			for i, set := range setters {
				if err := set(fr, items[i]); err != nil {
					return err
				}
			}
			return nil
		}, nil
	default:
		return nil, pyvalue.Raise(pyvalue.ExcUnsupported, "assignment target %T", target)
	}
}

func (bc *bcompiler) compileExprs(xs []pyast.Expr) ([]bexpr, error) {
	out := make([]bexpr, len(xs))
	for i, x := range xs {
		e, err := bc.compileExpr(x)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

func evalAllB(fr *bframe, xs []bexpr) ([]pyvalue.Value, error) {
	items := make([]pyvalue.Value, len(xs))
	for i, x := range xs {
		v, err := x(fr)
		if err != nil {
			return nil, err
		}
		items[i] = v
	}
	return items, nil
}

func (bc *bcompiler) compileExpr(x pyast.Expr) (bexpr, error) {
	switch x := x.(type) {
	case *pyast.NumLit:
		if x.IsFloat {
			v := pyvalue.Float(x.F)
			return func(fr *bframe) (pyvalue.Value, error) { return v, nil }, nil
		}
		v := pyvalue.Int(x.I)
		return func(fr *bframe) (pyvalue.Value, error) { return v, nil }, nil
	case *pyast.StrLit:
		v := pyvalue.Str(x.S)
		return func(fr *bframe) (pyvalue.Value, error) { return v, nil }, nil
	case *pyast.BoolLit:
		v := pyvalue.Bool(x.B)
		return func(fr *bframe) (pyvalue.Value, error) { return v, nil }, nil
	case *pyast.NoneLit:
		return func(fr *bframe) (pyvalue.Value, error) { return pyvalue.None{}, nil }, nil
	case *pyast.Name:
		if s, ok := bc.slots[x.Ident]; ok {
			ident := x.Ident
			return func(fr *bframe) (pyvalue.Value, error) {
				v := fr.slots[s]
				if v == nil {
					return nil, pyvalue.Raise(pyvalue.ExcNameError,
						"local variable %q referenced before assignment", ident)
				}
				return v, nil
			}, nil
		}
		if v, ok := bc.ip.Globals[x.Ident]; ok {
			return func(fr *bframe) (pyvalue.Value, error) { return v, nil }, nil
		}
		ident := x.Ident
		return func(fr *bframe) (pyvalue.Value, error) {
			if g, ok := fr.ip.Globals[ident]; ok {
				return g, nil
			}
			return nil, pyvalue.Raise(pyvalue.ExcNameError, "name %q is not defined", ident)
		}, nil
	case *pyast.BinOp:
		l, err := bc.compileExpr(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := bc.compileExpr(x.Right)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(fr *bframe) (pyvalue.Value, error) {
			a, err := l(fr)
			if err != nil {
				return nil, err
			}
			b, err := r(fr)
			if err != nil {
				return nil, err
			}
			return binOp(op, a, b)
		}, nil
	case *pyast.UnaryOp:
		sub, err := bc.compileExpr(x.X)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(fr *bframe) (pyvalue.Value, error) {
			v, err := sub(fr)
			if err != nil {
				return nil, err
			}
			return unaryOp(op, v)
		}, nil
	case *pyast.Compare:
		first, err := bc.compileExpr(x.First)
		if err != nil {
			return nil, err
		}
		rest, err := bc.compileExprs(x.Rest)
		if err != nil {
			return nil, err
		}
		ops := x.Ops
		return func(fr *bframe) (pyvalue.Value, error) {
			left, err := first(fr)
			if err != nil {
				return nil, err
			}
			for i, op := range ops {
				right, err := rest[i](fr)
				if err != nil {
					return nil, err
				}
				res, err := pyvalue.Compare(op, left, right)
				if err != nil {
					return nil, err
				}
				if !pyvalue.Truth(res) {
					return pyvalue.Bool(false), nil
				}
				left = right
			}
			return pyvalue.Bool(true), nil
		}, nil
	case *pyast.BoolOp:
		subs, err := bc.compileExprs(x.Xs)
		if err != nil {
			return nil, err
		}
		isAnd := x.Op == "and"
		return func(fr *bframe) (pyvalue.Value, error) {
			var v pyvalue.Value
			var err error
			for i, sub := range subs {
				v, err = sub(fr)
				if err != nil {
					return nil, err
				}
				if i == len(subs)-1 {
					break
				}
				if isAnd && !pyvalue.Truth(v) {
					return v, nil
				}
				if !isAnd && pyvalue.Truth(v) {
					return v, nil
				}
			}
			return v, nil
		}, nil
	case *pyast.IfExpr:
		cond, err := bc.compileExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		then, err := bc.compileExpr(x.Then)
		if err != nil {
			return nil, err
		}
		els, err := bc.compileExpr(x.Else)
		if err != nil {
			return nil, err
		}
		return func(fr *bframe) (pyvalue.Value, error) {
			c, err := cond(fr)
			if err != nil {
				return nil, err
			}
			if pyvalue.Truth(c) {
				return then(fr)
			}
			return els(fr)
		}, nil
	case *pyast.Subscript:
		cont, err := bc.compileExpr(x.X)
		if err != nil {
			return nil, err
		}
		idx, err := bc.compileExpr(x.Index)
		if err != nil {
			return nil, err
		}
		return func(fr *bframe) (pyvalue.Value, error) {
			c, err := cont(fr)
			if err != nil {
				return nil, err
			}
			i, err := idx(fr)
			if err != nil {
				return nil, err
			}
			return pyvalue.GetIndex(c, i)
		}, nil
	case *pyast.Slice:
		return bc.compileSlice(x)
	case *pyast.TupleLit:
		elts, err := bc.compileExprs(x.Elts)
		if err != nil {
			return nil, err
		}
		return func(fr *bframe) (pyvalue.Value, error) {
			items, err := evalAllB(fr, elts)
			if err != nil {
				return nil, err
			}
			return &pyvalue.Tuple{Items: items}, nil
		}, nil
	case *pyast.ListLit:
		elts, err := bc.compileExprs(x.Elts)
		if err != nil {
			return nil, err
		}
		return func(fr *bframe) (pyvalue.Value, error) {
			items, err := evalAllB(fr, elts)
			if err != nil {
				return nil, err
			}
			return &pyvalue.List{Items: items}, nil
		}, nil
	case *pyast.DictLit:
		keys, err := bc.compileExprs(x.Keys)
		if err != nil {
			return nil, err
		}
		vals, err := bc.compileExprs(x.Vals)
		if err != nil {
			return nil, err
		}
		return func(fr *bframe) (pyvalue.Value, error) {
			d := pyvalue.NewDict()
			for i := range keys {
				k, err := keys[i](fr)
				if err != nil {
					return nil, err
				}
				ks, ok := k.(pyvalue.Str)
				if !ok {
					return nil, pyvalue.Raise(pyvalue.ExcUnsupported, "non-string dict key")
				}
				v, err := vals[i](fr)
				if err != nil {
					return nil, err
				}
				d.Set(string(ks), v)
			}
			return d, nil
		}, nil
	case *pyast.ListComp:
		iter, err := bc.compileExpr(x.Iter)
		if err != nil {
			return nil, err
		}
		s := bc.slot(x.Var)
		var cond bexpr
		if x.Cond != nil {
			if cond, err = bc.compileExpr(x.Cond); err != nil {
				return nil, err
			}
		}
		elt, err := bc.compileExpr(x.Elt)
		if err != nil {
			return nil, err
		}
		return func(fr *bframe) (pyvalue.Value, error) {
			itv, err := iter(fr)
			if err != nil {
				return nil, err
			}
			items, err := Iterate(itv)
			if err != nil {
				return nil, err
			}
			out := &pyvalue.List{Items: make([]pyvalue.Value, 0, len(items))}
			saved := fr.slots[s]
			for _, it := range items {
				fr.slots[s] = it
				if cond != nil {
					c, err := cond(fr)
					if err != nil {
						return nil, err
					}
					if !pyvalue.Truth(c) {
						continue
					}
				}
				v, err := elt(fr)
				if err != nil {
					return nil, err
				}
				out.Items = append(out.Items, v)
			}
			fr.slots[s] = saved
			return out, nil
		}, nil
	case *pyast.Call:
		return bc.compileCall(x)
	case *pyast.Attr:
		recv, err := bc.compileExpr(x.X)
		if err != nil {
			return nil, err
		}
		name := x.Name
		return func(fr *bframe) (pyvalue.Value, error) {
			r, err := recv(fr)
			if err != nil {
				return nil, err
			}
			return &pyvalue.Func{Name: name, Call: func(args []pyvalue.Value) (pyvalue.Value, error) {
				return pyvalue.CallMethod(r, name, args)
			}}, nil
		}, nil
	default:
		return nil, pyvalue.Raise(pyvalue.ExcUnsupported, "expression %T", x)
	}
}

// slotTarget allocates slots for all names in an assignment target.
func (bc *bcompiler) slotTarget(t pyast.Expr) {
	switch t := t.(type) {
	case *pyast.Name:
		bc.slot(t.Ident)
	case *pyast.TupleLit:
		for _, el := range t.Elts {
			if n, ok := el.(*pyast.Name); ok {
				bc.slot(n.Ident)
			}
		}
	}
}

func (bc *bcompiler) compileSlice(x *pyast.Slice) (bexpr, error) {
	cont, err := bc.compileExpr(x.X)
	if err != nil {
		return nil, err
	}
	compileBound := func(b pyast.Expr) (bexpr, error) {
		if b == nil {
			return nil, nil
		}
		return bc.compileExpr(b)
	}
	lo, err := compileBound(x.Lo)
	if err != nil {
		return nil, err
	}
	hi, err := compileBound(x.Hi)
	if err != nil {
		return nil, err
	}
	step, err := compileBound(x.Step)
	if err != nil {
		return nil, err
	}
	evalBound := func(fr *bframe, b bexpr) (*int64, error) {
		if b == nil {
			return nil, nil
		}
		v, err := b(fr)
		if err != nil {
			return nil, err
		}
		switch v := v.(type) {
		case pyvalue.Int:
			n := int64(v)
			return &n, nil
		case pyvalue.Bool:
			n := int64(0)
			if v {
				n = 1
			}
			return &n, nil
		case pyvalue.None:
			return nil, nil
		default:
			return nil, pyvalue.Raise(pyvalue.ExcTypeError,
				"slice indices must be integers or None, not %s", pyvalue.TypeName(v))
		}
	}
	return func(fr *bframe) (pyvalue.Value, error) {
		c, err := cont(fr)
		if err != nil {
			return nil, err
		}
		l, err := evalBound(fr, lo)
		if err != nil {
			return nil, err
		}
		h, err := evalBound(fr, hi)
		if err != nil {
			return nil, err
		}
		st, err := evalBound(fr, step)
		if err != nil {
			return nil, err
		}
		return pyvalue.GetSlice(c, l, h, st)
	}, nil
}

// compileCall resolves callables at compile time where possible (the
// transpiler advantage over tree-walking).
func (bc *bcompiler) compileCall(call *pyast.Call) (bexpr, error) {
	if attr, ok := call.Fn.(*pyast.Attr); ok {
		if mod, ok := attr.X.(*pyast.Name); ok && isModuleName(mod.Ident) {
			if _, shadowed := bc.slots[mod.Ident]; !shadowed {
				args, err := bc.compileExprs(call.Args)
				if err != nil {
					return nil, err
				}
				modName, fnName := mod.Ident, attr.Name
				return func(fr *bframe) (pyvalue.Value, error) {
					vals, err := evalAllB(fr, args)
					if err != nil {
						return nil, err
					}
					e := &env{ip: fr.ip}
					return e.callModule(modName, fnName, vals)
				}, nil
			}
		}
		recv, err := bc.compileExpr(attr.X)
		if err != nil {
			return nil, err
		}
		args, err := bc.compileExprs(call.Args)
		if err != nil {
			return nil, err
		}
		name := attr.Name
		return func(fr *bframe) (pyvalue.Value, error) {
			r, err := recv(fr)
			if err != nil {
				return nil, err
			}
			vals, err := evalAllB(fr, args)
			if err != nil {
				return nil, err
			}
			return pyvalue.CallMethod(r, name, vals)
		}, nil
	}
	name, ok := call.Fn.(*pyast.Name)
	if !ok {
		fn, err := bc.compileExpr(call.Fn)
		if err != nil {
			return nil, err
		}
		args, err := bc.compileExprs(call.Args)
		if err != nil {
			return nil, err
		}
		return func(fr *bframe) (pyvalue.Value, error) {
			fnv, err := fn(fr)
			if err != nil {
				return nil, err
			}
			f, ok := fnv.(*pyvalue.Func)
			if !ok {
				return nil, pyvalue.Raise(pyvalue.ExcTypeError, "%q object is not callable", pyvalue.TypeName(fnv))
			}
			vals, err := evalAllB(fr, args)
			if err != nil {
				return nil, err
			}
			return f.Call(vals)
		}, nil
	}
	// Bound local shadows builtins.
	if s, bound := bc.slots[name.Ident]; bound {
		args, err := bc.compileExprs(call.Args)
		if err != nil {
			return nil, err
		}
		return func(fr *bframe) (pyvalue.Value, error) {
			fnv := fr.slots[s]
			f, ok := fnv.(*pyvalue.Func)
			if !ok {
				return nil, pyvalue.Raise(pyvalue.ExcTypeError, "%q object is not callable", pyvalue.TypeName(fnv))
			}
			vals, err := evalAllB(fr, args)
			if err != nil {
				return nil, err
			}
			return f.Call(vals)
		}, nil
	}
	if v, bound := bc.ip.Globals[name.Ident]; bound {
		if f, isFunc := v.(*pyvalue.Func); isFunc {
			args, err := bc.compileExprs(call.Args)
			if err != nil {
				return nil, err
			}
			return func(fr *bframe) (pyvalue.Value, error) {
				vals, err := evalAllB(fr, args)
				if err != nil {
					return nil, err
				}
				return f.Call(vals)
			}, nil
		}
	}
	args, err := bc.compileExprs(call.Args)
	if err != nil {
		return nil, err
	}
	ident := name.Ident
	astCall := call
	return func(fr *bframe) (pyvalue.Value, error) {
		vals, err := evalAllB(fr, args)
		if err != nil {
			return nil, err
		}
		e := &env{ip: fr.ip, vars: map[string]pyvalue.Value{}}
		return e.callBuiltin(ident, vals, astCall)
	}, nil
}
