package lambda

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/handopt"
	"github.com/gotuplex/tuplex/internal/pipelines"
)

func TestChunkCSVPreservesRowsAndHeader(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("a,b\n")
	for i := range 1000 {
		fmt.Fprintf(&sb, "%d,x%d\n", i, i)
	}
	raw := []byte(sb.String())
	chunks := ChunkCSV(raw, 2000, true)
	if len(chunks) < 3 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	total := 0
	for _, c := range chunks {
		if !bytes.HasPrefix(c, []byte("a,b\n")) {
			t.Fatal("chunk missing header")
		}
		total += bytes.Count(c, []byte("\n")) - 1
	}
	if total != 1000 {
		t.Fatalf("rows across chunks = %d", total)
	}
}

func TestBackendRunsAllChunksWithConcurrencyCap(t *testing.T) {
	store := NewObjectStore()
	raw := data.Zillow(data.ZillowConfig{Rows: 2000, Seed: 1})
	UploadChunks(store, "in/zillow", ChunkCSV(raw, 20_000, true))
	cfg := Config{MaxConcurrency: 4, ColdStart: time.Millisecond, InvokeOverhead: time.Microsecond}
	b := NewBackend(cfg)
	stats, err := b.Run(store, "in/zillow", "out/zillow", func(chunk []byte) ([]byte, error) {
		return handopt.ZillowCSV(chunk), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks < 2 {
		t.Fatalf("tasks = %d", stats.Tasks)
	}
	if stats.ColdStarts == 0 || stats.ColdStarts > cfg.MaxConcurrency {
		t.Fatalf("cold starts = %d (cap %d)", stats.ColdStarts, cfg.MaxConcurrency)
	}
	if got := len(store.List("out/zillow")); got != stats.Tasks {
		t.Fatalf("outputs = %d, want %d", got, stats.Tasks)
	}
}

func TestLambdaTuplexMatchesClusterBlackboxRowCounts(t *testing.T) {
	store := NewObjectStore()
	raw := data.Zillow(data.ZillowConfig{Rows: 3000, Seed: 9})
	UploadChunks(store, "in/z", ChunkCSV(raw, 50_000, true))

	tuplexTask := func(chunk []byte) ([]byte, error) {
		c := tuplex.NewContext()
		res, err := pipelines.Zillow(c.CSV("", tuplex.CSVData(chunk))).ToCSV("")
		if err != nil {
			return nil, err
		}
		return res.CSV, nil
	}
	b := NewBackend(Config{MaxConcurrency: 8, ColdStart: time.Millisecond})
	lstats, err := b.Run(store, "in/z", "out/z", tuplexTask)
	if err != nil {
		t.Fatal(err)
	}

	nativeRows := len(handopt.Zillow(raw))
	lambdaRows := 0
	for _, k := range store.List("out/z") {
		out, _ := store.Get(k)
		lambdaRows += bytes.Count(out, []byte("\n")) - 1 // minus header
	}
	if lambdaRows != nativeRows {
		t.Fatalf("lambda rows = %d, native = %d", lambdaRows, nativeRows)
	}
	if lstats.ComputeTotal <= 0 {
		t.Fatal("no compute recorded")
	}

	cl := &Cluster{Executors: 8}
	_, outs, err := cl.Run(store, "in/z", tuplexTask)
	if err != nil {
		t.Fatal(err)
	}
	clusterRows := 0
	for _, out := range outs {
		clusterRows += bytes.Count(out, []byte("\n")) - 1
	}
	if clusterRows != nativeRows {
		t.Fatalf("cluster rows = %d, native = %d", clusterRows, nativeRows)
	}
}
