// Package lambda simulates Tuplex's experimental distributed backend
// (§6.4): serverless function invocations over chunked objects in an
// object store, compared against a continuously-running cluster of
// executors. Both sides execute real pipelines on real bytes; only the
// infrastructure latencies — container cold starts, request overhead,
// object-store writes — are injected, because those are what the
// experiment controls for ("compiled UDFs amortize the overheads
// incurred by Lambdas").
package lambda

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// ObjectStore is an in-memory S3 stand-in with chunked objects.
type ObjectStore struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewObjectStore returns an empty store.
func NewObjectStore() *ObjectStore {
	return &ObjectStore{objects: map[string][]byte{}}
}

// Put stores an object.
func (s *ObjectStore) Put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[key] = data
}

// Get fetches an object.
func (s *ObjectStore) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.objects[key]
	return v, ok
}

// List returns the sorted keys under a prefix.
func (s *ObjectStore) List(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.objects {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// TotalSize sums object sizes under a prefix.
func (s *ObjectStore) TotalSize(prefix string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for k, v := range s.objects {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			n += len(v)
		}
	}
	return n
}

// ChunkCSV splits CSV bytes into roughly chunkSize pieces at record
// boundaries, replicating the header into each chunk (how the paper
// stores "data in 256 MB chunks in AWS S3").
func ChunkCSV(data []byte, chunkSize int, hasHeader bool) [][]byte {
	if chunkSize <= 0 {
		chunkSize = 1 << 20
	}
	var header []byte
	body := data
	if hasHeader {
		for i, b := range data {
			if b == '\n' {
				header = data[:i+1]
				body = data[i+1:]
				break
			}
		}
	}
	var chunks [][]byte
	start := 0
	for start < len(body) {
		end := start + chunkSize
		if end >= len(body) {
			end = len(body)
		} else {
			for end < len(body) && body[end] != '\n' {
				end++
			}
			if end < len(body) {
				end++
			}
		}
		chunk := make([]byte, 0, len(header)+(end-start))
		chunk = append(chunk, header...)
		chunk = append(chunk, body[start:end]...)
		chunks = append(chunks, chunk)
		start = end
	}
	return chunks
}

// UploadChunks writes chunks under prefix-%05d.
func UploadChunks(store *ObjectStore, prefix string, chunks [][]byte) []string {
	keys := make([]string, len(chunks))
	for i, c := range chunks {
		key := fmt.Sprintf("%s-%05d", prefix, i)
		store.Put(key, c)
		keys[i] = key
	}
	return keys
}

// Config sets the simulated infrastructure parameters.
type Config struct {
	// MaxConcurrency caps simultaneously running invocations (the
	// paper's 64).
	MaxConcurrency int
	// ColdStart is container provisioning latency for a fresh
	// invocation slot.
	ColdStart time.Duration
	// InvokeOverhead is the per-request cost (HTTP, queueing).
	InvokeOverhead time.Duration
	// PutOverheadPerMB is the object-store write latency per MiB.
	PutOverheadPerMB time.Duration
}

// DefaultConfig approximates AWS Lambda characteristics, scaled for
// laptop-sized chunks.
func DefaultConfig() Config {
	return Config{
		MaxConcurrency:   64,
		ColdStart:        60 * time.Millisecond,
		InvokeOverhead:   5 * time.Millisecond,
		PutOverheadPerMB: 2 * time.Millisecond,
	}
}

// Stats summarizes one distributed run.
type Stats struct {
	Tasks      int
	ColdStarts int
	Wall       time.Duration
	// ComputeTotal is summed task compute time (excludes injected
	// latencies).
	ComputeTotal time.Duration
	OutputBytes  int
}

// Task is one chunk-processing function: it returns the output bytes to
// store.
type Task func(chunk []byte) ([]byte, error)

// Backend is the serverless executor.
type Backend struct {
	cfg Config
	// warm counts provisioned containers (never deprovisioned within a
	// run).
	mu   sync.Mutex
	warm int
}

// NewBackend returns a backend.
func NewBackend(cfg Config) *Backend {
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = 64
	}
	return &Backend{cfg: cfg}
}

// acquireContainer reports whether the invocation got a warm container.
func (b *Backend) acquireContainer() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.warm > 0 {
		b.warm--
		return true
	}
	return false
}

func (b *Backend) releaseContainer() {
	b.mu.Lock()
	b.warm++
	b.mu.Unlock()
}

// Run maps fn over every object under inPrefix, writing results under
// outPrefix, with Lambda semantics: per-invocation provisioning, bounded
// concurrency, per-request overhead and store-write latency.
func (b *Backend) Run(store *ObjectStore, inPrefix, outPrefix string, fn Task) (*Stats, error) {
	keys := store.List(inPrefix)
	if len(keys) == 0 {
		return nil, fmt.Errorf("lambda: no objects under %q", inPrefix)
	}
	stats := &Stats{Tasks: len(keys)}
	sem := make(chan struct{}, b.cfg.MaxConcurrency)
	errs := make([]error, len(keys))
	var mu sync.Mutex
	var wg sync.WaitGroup
	t0 := time.Now()
	for i, key := range keys {
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			warm := b.acquireContainer()
			if !warm {
				time.Sleep(b.cfg.ColdStart)
				mu.Lock()
				stats.ColdStarts++
				mu.Unlock()
			}
			defer b.releaseContainer()
			time.Sleep(b.cfg.InvokeOverhead)
			chunk, _ := store.Get(key)
			tC := time.Now()
			out, err := fn(chunk)
			compute := time.Since(tC)
			if err != nil {
				errs[i] = err
				return
			}
			time.Sleep(time.Duration(float64(len(out)) / (1 << 20) * float64(b.cfg.PutOverheadPerMB)))
			store.Put(fmt.Sprintf("%s-%05d", outPrefix, i), out)
			mu.Lock()
			stats.ComputeTotal += compute
			stats.OutputBytes += len(out)
			mu.Unlock()
		}(i, key)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	stats.Wall = time.Since(t0)
	return stats, nil
}

// Cluster simulates the comparison Spark cluster: a fixed executor pool
// that is already provisioned (no cold starts; the paper notes "the
// cluster runs continuously") and collects results at the driver rather
// than writing to the store.
type Cluster struct {
	Executors int
}

// Run maps fn over the chunks with the fixed pool; outputs are collected
// in order at the driver.
func (c *Cluster) Run(store *ObjectStore, inPrefix string, fn Task) (*Stats, [][]byte, error) {
	keys := store.List(inPrefix)
	if len(keys) == 0 {
		return nil, nil, fmt.Errorf("lambda: no objects under %q", inPrefix)
	}
	stats := &Stats{Tasks: len(keys)}
	outs := make([][]byte, len(keys))
	errs := make([]error, len(keys))
	sem := make(chan struct{}, max(1, c.Executors))
	var mu sync.Mutex
	var wg sync.WaitGroup
	t0 := time.Now()
	for i, key := range keys {
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			chunk, _ := store.Get(key)
			tC := time.Now()
			out, err := fn(chunk)
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			stats.ComputeTotal += time.Since(tC)
			stats.OutputBytes += len(out)
			mu.Unlock()
			outs[i] = out
		}(i, key)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	stats.Wall = time.Since(t0)
	return stats, outs, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
