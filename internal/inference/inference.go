// Package inference types UDF ASTs with the normal-case types derived
// from the input sample (§4.3: "typing the abstract syntax tree with the
// normal-case types ... is crucial to making UDF compilation tractable").
//
// Typing proceeds by abstract interpretation over the statement list with
// a per-variable type environment; branch joins unify, loops iterate to a
// fixpoint with widening. Expressions that cannot be typed — or that are
// statically guaranteed to raise — are marked in Info.Failed and compile
// into exception exits, which routes affected rows to the general-case
// path at runtime instead of failing compilation (the dual-mode bargain).
//
// Branches whose condition is statically falsy/truthy under the sampled
// types (e.g. testing a column whose normal case is None) are recorded in
// Info.Dead so the code generator prunes them — the §4.7 "code generation
// optimizations".
package inference

import (
	"fmt"

	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/types"
)

// Branch identifies the arm of an If/IfExpr that is statically dead.
type Branch int8

const (
	// DeadNone marks no dead arm.
	DeadNone Branch = iota
	// DeadThen marks a then-arm that can never execute.
	DeadThen
	// DeadElse marks an else-arm that can never execute.
	DeadElse
)

// Info is the result of typing one UDF.
type Info struct {
	Fn         *pyast.Function
	ParamTypes []types.Type
	ReturnType types.Type
	// Failed maps AST nodes that could not be typed (or are statically
	// raising) to a reason. The code generator emits an exception exit
	// with the given kind for these.
	Failed map[pyast.Node]Failure
	// Dead marks statically-pruned branches of If and IfExpr nodes.
	Dead map[pyast.Node]Branch
	// Globals are the types of module-level constants referenced.
	Globals map[string]types.Type
}

// Failure describes why a node failed to type.
type Failure struct {
	Reason string
	// Raises is the exception this node is statically known to raise
	// ("TypeError" etc.), or "" for a plain unsupported construct.
	Raises string
	// Pos is the source position of the offending node.
	Pos pyast.Pos
}

// Compilable reports whether the whole function typed cleanly (no failed
// nodes reachable).
func (inf *Info) Compilable() bool { return len(inf.Failed) == 0 }

// Options controls inference behavior.
type Options struct {
	// DisableNullPruning turns off constant folding of Null-typed
	// conditions, for the §6.3.3 ablation.
	DisableNullPruning bool
}

// typer carries state through one inference run.
type typer struct {
	info *Info
	opts Options
}

// scope is the per-path variable environment.
type scope map[string]types.Type

func (s scope) clone() scope {
	c := make(scope, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// TypeFunction types fn given its parameter types and global constant
// types. It annotates every expression node in place and returns the
// Info. A non-nil error means the function shape itself is unusable
// (e.g. arity mismatch); recoverable typing failures land in Info.Failed
// instead.
func TypeFunction(fn *pyast.Function, paramTypes []types.Type, globals map[string]types.Type, opts Options) (*Info, error) {
	if len(paramTypes) != len(fn.Params) {
		return nil, fmt.Errorf("inference: UDF %s takes %d parameters, got %d input types",
			fnName(fn), len(fn.Params), len(paramTypes))
	}
	info := &Info{
		Fn:         fn,
		ParamTypes: paramTypes,
		Failed:     map[pyast.Node]Failure{},
		Dead:       map[pyast.Node]Branch{},
		Globals:    globals,
	}
	t := &typer{info: info, opts: opts}
	env := scope{}
	for i, p := range fn.Params {
		env[p] = paramTypes[i]
	}
	ret := t.stmts(fn.Body, env)
	if !ret.IsValid() {
		ret = types.Null // fell off the end: returns None
	}
	info.ReturnType = ret
	return info, nil
}

func fnName(fn *pyast.Function) string {
	if fn.Name != "" {
		return fn.Name
	}
	return "<lambda>"
}

// fail records a typing failure for a node and returns Any so enclosing
// expressions keep typing (their failure is implied).
func (t *typer) fail(n pyast.Node, raises, format string, args ...any) types.Type {
	if _, dup := t.info.Failed[n]; !dup {
		pos := n.Pos()
		t.info.Failed[n] = Failure{
			Reason: fmt.Sprintf("%s: ", pos) + fmt.Sprintf(format, args...),
			Raises: raises,
			Pos:    pos,
		}
	}
	if e, ok := n.(pyast.Expr); ok {
		e.SetType(types.Any)
	}
	return types.Any
}

// stmts types a statement list and returns the unified return type of all
// return statements encountered (invalid Type if none).
func (t *typer) stmts(ss []pyast.Stmt, env scope) types.Type {
	var ret types.Type
	for _, s := range ss {
		r := t.stmt(s, env)
		ret = types.Unify(ret, r)
	}
	return ret
}

func (t *typer) stmt(s pyast.Stmt, env scope) types.Type {
	switch s := s.(type) {
	case *pyast.ExprStmt:
		t.expr(s.X, env)
		return types.Type{}
	case *pyast.Assign:
		v := t.expr(s.Value, env)
		t.assign(s.Target, v, env)
		return types.Type{}
	case *pyast.AugAssign:
		cur := t.expr(s.Target, env)
		rhs := t.expr(s.Value, env)
		res := t.binOpType(s, s.Op, cur, rhs)
		t.assign(s.Target, res, env)
		return types.Type{}
	case *pyast.Return:
		if s.X == nil {
			return types.Null
		}
		return t.expr(s.X, env)
	case *pyast.If:
		return t.ifStmt(s, env)
	case *pyast.For:
		return t.forStmt(s, env)
	case *pyast.While:
		t.expr(s.Cond, env)
		// Two passes for loop-carried types, then widen instabilities.
		snapshot := env.clone()
		r1 := t.stmts(s.Body, env)
		t.expr(s.Cond, env)
		r2 := t.stmts(s.Body, env)
		t.widenUnstable(snapshot, env)
		return types.Unify(r1, r2)
	case *pyast.Pass, *pyast.Break, *pyast.Continue:
		return types.Type{}
	default:
		t.fail(s, "", "unsupported statement %T", s)
		return types.Type{}
	}
}

func (t *typer) assign(target pyast.Expr, v types.Type, env scope) {
	switch target := target.(type) {
	case *pyast.Name:
		env[target.Ident] = v
		target.SetType(v)
	case *pyast.Subscript:
		t.expr(target.X, env)
		t.expr(target.Index, env)
		// Item assignment keeps the container type; only list/dict
		// targets are semantically valid and only the boxed paths mutate
		// containers, so no further refinement here.
	case *pyast.TupleLit:
		elts := tupleEltTypes(v, len(target.Elts))
		if elts == nil {
			t.fail(target, "", "cannot statically unpack %s into %d names", v, len(target.Elts))
			return
		}
		for i, el := range target.Elts {
			if n, ok := el.(*pyast.Name); ok {
				env[n.Ident] = elts[i]
				n.SetType(elts[i])
			}
		}
	default:
		t.fail(target, "", "unsupported assignment target %T", target)
	}
}

// tupleEltTypes resolves the element types for unpacking v into n names.
func tupleEltTypes(v types.Type, n int) []types.Type {
	switch v.Kind() {
	case types.KindTuple:
		if len(v.Elts()) != n {
			return nil
		}
		return v.Elts()
	case types.KindList:
		out := make([]types.Type, n)
		for i := range out {
			out[i] = v.Elem()
		}
		return out
	default:
		return nil
	}
}

func (t *typer) ifStmt(s *pyast.If, env scope) types.Type {
	condT := t.expr(s.Cond, env)
	// Static truthiness pruning: a Null condition is always falsy under
	// the sampled normal case (§4.7's flights example).
	if !t.opts.DisableNullPruning {
		switch staticTruth(s.Cond, condT) {
		case truthFalse:
			t.info.Dead[s] = DeadThen
			if s.Else != nil {
				return t.stmts(s.Else, env)
			}
			return types.Type{}
		case truthTrue:
			t.info.Dead[s] = DeadElse
			return t.stmts(s.Then, env)
		}
	}
	thenEnv := env.clone()
	elseEnv := env.clone()
	r1 := t.stmts(s.Then, thenEnv)
	var r2 types.Type
	if s.Else != nil {
		r2 = t.stmts(s.Else, elseEnv)
	}
	mergeScopes(env, thenEnv, elseEnv)
	return types.Unify(r1, r2)
}

// mergeScopes joins the variable types of two branch environments into
// env. A variable assigned in only one branch keeps that type (reading it
// when unassigned raises at runtime, which the frame handles).
func mergeScopes(env, a, b scope) {
	for k, va := range a {
		if vb, ok := b[k]; ok {
			env[k] = types.Unify(va, vb)
		} else {
			env[k] = va
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			env[k] = vb
		}
	}
}

func (t *typer) forStmt(s *pyast.For, env scope) types.Type {
	iterT := t.expr(s.Iter, env)
	eltT := elementType(iterT)
	if !eltT.IsValid() {
		t.fail(s.Iter, "TypeError", "%s is not iterable", iterT)
		eltT = types.Any
	}
	t.assign(s.Var, eltT, env)
	snapshot := env.clone()
	r1 := t.stmts(s.Body, env)
	r2 := t.stmts(s.Body, env)
	t.widenUnstable(snapshot, env)
	return types.Unify(r1, r2)
}

// widenUnstable replaces variables whose type is still changing across
// loop iterations with the unified type (or Any when incompatible).
func (t *typer) widenUnstable(before, after scope) {
	for k, vb := range before {
		if va, ok := after[k]; ok && !types.Equal(va, vb) {
			after[k] = types.Unify(va, vb)
		}
	}
}

// elementType returns the element type when iterating a value of type ty.
func elementType(ty types.Type) types.Type {
	switch ty.Kind() {
	case types.KindList, types.KindIter:
		return ty.Elem()
	case types.KindStr:
		return types.Str
	case types.KindTuple:
		return types.UnifyAll(ty.Elts())
	case types.KindDict:
		return types.Str
	default:
		return types.Type{}
	}
}

type truth int8

const (
	truthUnknown truth = iota
	truthTrue
	truthFalse
)

// staticTruth decides a condition's truthiness from its type alone where
// sound: Null is always falsy; literal constants fold.
func staticTruth(e pyast.Expr, ty types.Type) truth {
	switch e := e.(type) {
	case *pyast.BoolLit:
		if e.B {
			return truthTrue
		}
		return truthFalse
	case *pyast.NoneLit:
		return truthFalse
	case *pyast.NumLit:
		var truthy bool
		if e.IsFloat {
			truthy = e.F != 0
		} else {
			truthy = e.I != 0
		}
		if truthy {
			return truthTrue
		}
		return truthFalse
	case *pyast.StrLit:
		if e.S != "" {
			return truthTrue
		}
		return truthFalse
	}
	if ty.Kind() == types.KindNull {
		return truthFalse
	}
	return truthUnknown
}
