package inference

import (
	"testing"

	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/types"
)

func TestWhileLoopTyping(t *testing.T) {
	src := `def f(n):
    i = 0
    while i * i < n:
        i += 1
    return i
`
	info := typeUDF(t, src, []types.Type{types.I64})
	if !info.Compilable() || !types.Equal(info.ReturnType, types.I64) {
		t.Fatalf("ret=%s failed=%v", info.ReturnType, info.Failed)
	}
}

func TestTupleUnpackTyping(t *testing.T) {
	src := `def f(x):
    a, b = x, x * 2.5
    return b
`
	info := typeUDF(t, src, []types.Type{types.I64})
	if !types.Equal(info.ReturnType, types.F64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestBadUnpackFails(t *testing.T) {
	src := `def f(x):
    a, b = x
    return a
`
	info := typeUDF(t, src, []types.Type{types.I64})
	if info.Compilable() {
		t.Fatal("unpacking an int typed")
	}
}

func TestUnaryOperators(t *testing.T) {
	info := typeUDF(t, "lambda x: -x + +x + ~x", []types.Type{types.I64})
	if !info.Compilable() || !types.Equal(info.ReturnType, types.I64) {
		t.Fatalf("ret=%s failed=%v", info.ReturnType, info.Failed)
	}
	info = typeUDF(t, "lambda x: not x", []types.Type{types.Str})
	if !types.Equal(info.ReturnType, types.Bool) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
	info = typeUDF(t, "lambda x: ~x", []types.Type{types.F64})
	if info.Compilable() {
		t.Fatal("~float typed")
	}
}

func TestBitwiseTyping(t *testing.T) {
	info := typeUDF(t, "lambda a, b: (a & b) | (a << 2)", []types.Type{types.I64, types.I64})
	if !info.Compilable() || !types.Equal(info.ReturnType, types.I64) {
		t.Fatalf("ret=%s failed=%v", info.ReturnType, info.Failed)
	}
}

func TestStrRepeatTyping(t *testing.T) {
	info := typeUDF(t, "lambda s, n: s * n + n * s", []types.Type{types.Str, types.I64})
	if !info.Compilable() || !types.Equal(info.ReturnType, types.Str) {
		t.Fatalf("ret=%s failed=%v", info.ReturnType, info.Failed)
	}
}

func TestListConcatAndRepeatTyping(t *testing.T) {
	info := typeUDF(t, "lambda s: s.split(',') + s.split(';')", []types.Type{types.Str})
	if !types.Equal(info.ReturnType, types.List(types.Str)) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
	info = typeUDF(t, "lambda s: s.split(',') * 2", []types.Type{types.Str})
	if !types.Equal(info.ReturnType, types.List(types.Str)) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestMinMaxSumSortedTyping(t *testing.T) {
	info := typeUDF(t, "lambda l: max(l)", []types.Type{types.List(types.F64)})
	if !types.Equal(info.ReturnType, types.F64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
	info = typeUDF(t, "lambda l: sum(l)", []types.Type{types.List(types.I64)})
	if !types.Equal(info.ReturnType, types.I64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
	info = typeUDF(t, "lambda l: sorted(l)[0]", []types.Type{types.List(types.Str)})
	if !types.Equal(info.ReturnType, types.Str) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestInOperatorTyping(t *testing.T) {
	info := typeUDF(t, "lambda s: 'x' in s", []types.Type{types.Str})
	if !info.Compilable() {
		t.Fatalf("failed: %v", info.Failed)
	}
	info = typeUDF(t, "lambda s: 1 in s", []types.Type{types.Str})
	if info.Compilable() {
		t.Fatal("int in str typed")
	}
	info = typeUDF(t, "lambda s: 1 in (1, 2, 3)", []types.Type{types.I64})
	if !info.Compilable() {
		t.Fatalf("failed: %v", info.Failed)
	}
}

func TestSliceOfTupleTyping(t *testing.T) {
	info := typeUDF(t, "lambda t: t[0:2]", []types.Type{types.Tuple(types.I64, types.I64, types.I64)})
	if !types.Equal(info.ReturnType, types.List(types.I64)) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestDictGetTyping(t *testing.T) {
	info := typeUDF(t, "lambda d: d.get('k', 0)", []types.Type{types.Dict(types.I64)})
	if !info.Compilable() || !types.Equal(info.ReturnType, types.I64) {
		t.Fatalf("ret=%s failed=%v", info.ReturnType, info.Failed)
	}
}

func TestOrdChrRoundRangeTyping(t *testing.T) {
	info := typeUDF(t, "lambda c: chr(ord(c) + 1)", []types.Type{types.Str})
	if !info.Compilable() || !types.Equal(info.ReturnType, types.Str) {
		t.Fatalf("ret=%s failed=%v", info.ReturnType, info.Failed)
	}
	info = typeUDF(t, "lambda x: round(x)", []types.Type{types.F64})
	if !types.Equal(info.ReturnType, types.I64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
	info = typeUDF(t, "lambda x: round(x, 2)", []types.Type{types.F64})
	if !types.Equal(info.ReturnType, types.F64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
	info = typeUDF(t, "lambda n: range(n)[0]", []types.Type{types.I64})
	if !types.Equal(info.ReturnType, types.I64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestMatchGroupMethodTyping(t *testing.T) {
	src := `def f(x):
    m = re_search('(a+)', x)
    if m:
        return m.group(1)
    return ''
`
	info := typeUDF(t, src, []types.Type{types.Str})
	if !info.Compilable() || !types.Equal(info.ReturnType, types.Str) {
		t.Fatalf("ret=%s failed=%v", info.ReturnType, info.Failed)
	}
}

func TestConstIntIndexHelper(t *testing.T) {
	e, err := pyast.ParseExprString("-3")
	if err != nil {
		t.Fatal(err)
	}
	if i, ok := ConstIntIndex(e); !ok || i != -3 {
		t.Fatalf("got %d, %v", i, ok)
	}
	e, _ = pyast.ParseExprString("x")
	if _, ok := ConstIntIndex(e); ok {
		t.Fatal("variable treated as constant")
	}
}

func TestSubscriptAssignmentTyping(t *testing.T) {
	src := `def f(n):
    out = [0, 0]
    out[0] = n
    return out
`
	info := typeUDF(t, src, []types.Type{types.I64})
	if !info.Compilable() {
		t.Fatalf("failed: %v", info.Failed)
	}
}

func TestBoolOpIncompatibleTypesFail(t *testing.T) {
	info := typeUDF(t, "lambda x: x or [1]", []types.Type{types.Str})
	if info.Compilable() {
		t.Fatal("str or list typed")
	}
}

func TestRowLenTyping(t *testing.T) {
	sch := types.NewSchema([]types.Column{{Name: "a", Type: types.I64}})
	info := typeUDF(t, "lambda x: len(x)", []types.Type{types.Row(sch)})
	if !info.Compilable() || !types.Equal(info.ReturnType, types.I64) {
		t.Fatalf("ret=%s failed=%v", info.ReturnType, info.Failed)
	}
}
