package inference

import (
	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/types"
)

// callType types builtin, module-function and method calls.
func (t *typer) callType(x *pyast.Call, env scope) types.Type {
	args := make([]types.Type, len(x.Args))
	evalArgs := func() {
		for i, a := range x.Args {
			args[i] = t.expr(a, env)
		}
		for _, a := range x.KwArgs {
			t.expr(a, env)
		}
	}

	if attr, ok := x.Fn.(*pyast.Attr); ok {
		if mod, ok := attr.X.(*pyast.Name); ok && isModule(mod.Ident) {
			if _, shadowed := env[mod.Ident]; !shadowed {
				evalArgs()
				return t.moduleCallType(x, mod.Ident+"."+attr.Name, args)
			}
		}
		recv := t.expr(attr.X, env)
		evalArgs()
		return t.methodType(x, recv, attr.Name, args)
	}

	name, ok := x.Fn.(*pyast.Name)
	if !ok {
		return t.fail(x, "", "calling a computed expression is not compilable")
	}
	if _, bound := env[name.Ident]; bound {
		return t.fail(x, "", "calling a local variable is not compilable")
	}
	evalArgs()
	switch name.Ident {
	case "len":
		if len(args) == 1 {
			switch args[0].Unwrap().Kind() {
			case types.KindStr, types.KindList, types.KindTuple, types.KindDict, types.KindRow:
				return types.I64
			}
			return t.fail(x, "TypeError", "object of type %s has no len()", args[0])
		}
	case "int":
		if len(args) == 1 {
			switch args[0].Unwrap().Kind() {
			case types.KindBool, types.KindI64, types.KindF64, types.KindStr:
				return types.I64
			}
			return t.fail(x, "TypeError", "int() argument must be a string or a number, not %s", args[0])
		}
		if len(args) == 0 {
			return types.I64
		}
	case "float":
		if len(args) == 1 {
			switch args[0].Unwrap().Kind() {
			case types.KindBool, types.KindI64, types.KindF64, types.KindStr:
				return types.F64
			}
			return t.fail(x, "TypeError", "float() argument must be a string or a number, not %s", args[0])
		}
		if len(args) == 0 {
			return types.F64
		}
	case "str":
		return types.Str
	case "bool":
		return types.Bool
	case "abs":
		if len(args) == 1 {
			switch numKind(args[0]) {
			case 1, 2:
				return types.I64
			case 3:
				return types.F64
			}
			return t.fail(x, "TypeError", "bad operand type for abs(): %s", args[0])
		}
	case "min", "max":
		if len(args) >= 2 {
			allNum := true
			for _, a := range args {
				if numKind(a) == 0 {
					allNum = false
				}
			}
			if allNum {
				u := types.I64
				for _, a := range args {
					if numKind(a) == 3 {
						u = types.F64
					}
				}
				return u
			}
			u := types.UnifyAll(args)
			if u.Kind() != types.KindAny {
				return u
			}
			return t.fail(x, "TypeError", "min/max over incompatible types")
		}
		if len(args) == 1 {
			e := elementType(args[0].Unwrap())
			if e.IsValid() {
				return e
			}
			return t.fail(x, "TypeError", "%s is not iterable", args[0])
		}
	case "round":
		if len(args) >= 1 && numKind(args[0]) > 0 {
			if len(args) >= 2 || len(x.KwArgs) > 0 {
				return types.F64
			}
			return types.I64
		}
		return t.fail(x, "TypeError", "round() argument must be numeric")
	case "range":
		for _, a := range args {
			if k := numKind(a); k == 0 || k == 3 {
				return t.fail(x, "TypeError", "range() arguments must be integers")
			}
		}
		if len(args) >= 1 && len(args) <= 3 {
			return types.List(types.I64)
		}
	case "ord":
		if len(args) == 1 && args[0].Unwrap().Kind() == types.KindStr {
			return types.I64
		}
	case "chr":
		if len(args) == 1 && numKind(args[0]) > 0 {
			return types.Str
		}
	case "sorted":
		if len(args) == 1 {
			if e := elementType(args[0].Unwrap()); e.IsValid() {
				return types.List(e)
			}
		}
	case "sum":
		if len(args) >= 1 {
			if e := elementType(args[0].Unwrap()); e.IsValid() && numKind(e) > 0 {
				if numKind(e) == 3 {
					return types.F64
				}
				return types.I64
			}
		}
	case "re_search":
		return t.moduleCallType(x, "re.search", args)
	case "re_match":
		return t.moduleCallType(x, "re.match", args)
	case "re_sub":
		return t.moduleCallType(x, "re.sub", args)
	case "random_choice":
		return t.moduleCallType(x, "random.choice", args)
	case "string_capwords":
		return t.moduleCallType(x, "string.capwords", args)
	default:
		return t.fail(x, "NameError", "name %q is not defined", name.Ident)
	}
	return t.fail(x, "TypeError", "bad arguments to %s()", name.Ident)
}

func isModule(n string) bool {
	return n == "re" || n == "random" || n == "string"
}

func (t *typer) moduleCallType(x *pyast.Call, qual string, args []types.Type) types.Type {
	strArg := func(i int) bool {
		return i < len(args) && args[i].Unwrap().Kind() == types.KindStr
	}
	switch qual {
	case "re.search", "re.match":
		if len(args) == 2 && strArg(0) && strArg(1) {
			// re.search returns a match or None.
			return types.Option(types.Match)
		}
	case "re.sub":
		if len(args) == 3 && strArg(0) && strArg(1) && strArg(2) {
			return types.Str
		}
	case "random.choice":
		if len(args) == 1 {
			a := args[0].Unwrap()
			if a.Kind() == types.KindStr {
				return types.Str
			}
			if e := elementType(a); e.IsValid() {
				return e
			}
		}
	case "string.capwords":
		if len(args) == 1 && strArg(0) {
			return types.Str
		}
	default:
		return t.fail(x, "AttributeError", "unknown module function %s", qual)
	}
	return t.fail(x, "TypeError", "bad arguments to %s", qual)
}

// methodType types a method call on recv.
func (t *typer) methodType(x *pyast.Call, recv types.Type, name string, args []types.Type) types.Type {
	ru := recv.Unwrap()
	if recv.Kind() == types.KindNull {
		return t.fail(x, "AttributeError", "'NoneType' object has no attribute %q", name)
	}
	strArg := func(i int) bool {
		return i < len(args) && args[i].Unwrap().Kind() == types.KindStr
	}
	intArg := func(i int) bool {
		k := numKind(args[i])
		return k == 1 || k == 2
	}
	switch ru.Kind() {
	case types.KindStr:
		switch name {
		case "find", "rfind", "index", "rindex":
			if len(args) >= 1 && strArg(0) {
				return types.I64
			}
		case "count":
			if len(args) == 1 && strArg(0) {
				return types.I64
			}
		case "lower", "upper", "capitalize", "title", "swapcase":
			if len(args) == 0 {
				return types.Str
			}
		case "strip", "lstrip", "rstrip":
			if len(args) == 0 || strArg(0) {
				return types.Str
			}
		case "replace":
			if len(args) >= 2 && strArg(0) && strArg(1) {
				return types.Str
			}
		case "split":
			if len(args) == 0 || strArg(0) {
				return types.List(types.Str)
			}
			if len(args) == 2 && strArg(0) && intArg(1) {
				return types.List(types.Str)
			}
		case "join":
			if len(args) == 1 {
				a := args[0].Unwrap()
				if (a.Kind() == types.KindList && a.Elem().Kind() == types.KindStr) ||
					(a.Kind() == types.KindList && a.Elem().Kind() == types.KindAny) {
					return types.Str
				}
				if a.Kind() == types.KindTuple {
					return types.Str
				}
				return t.fail(x, "TypeError", "can only join an iterable of str")
			}
		case "startswith", "endswith", "isdigit", "isalpha", "isalnum",
			"isspace", "islower", "isupper":
			if name == "startswith" || name == "endswith" {
				if len(args) == 1 && strArg(0) {
					return types.Bool
				}
			} else if len(args) == 0 {
				return types.Bool
			}
		case "format":
			return types.Str
		case "zfill", "ljust", "rjust":
			if len(args) >= 1 && intArg(0) {
				return types.Str
			}
		}
		return t.fail(x, "AttributeError", "'str' object has no usable method %q here", name)
	case types.KindList:
		switch name {
		case "append":
			if len(args) == 1 {
				return types.Null
			}
		case "extend", "reverse":
			return types.Null
		case "pop":
			return ru.Elem()
		case "count", "index":
			return types.I64
		}
		return t.fail(x, "AttributeError", "'list' object has no usable method %q here", name)
	case types.KindDict:
		switch name {
		case "get":
			if len(args) >= 1 {
				if len(args) == 2 {
					u := types.Unify(ru.Elem(), args[1])
					if u.Kind() != types.KindAny {
						return u
					}
				}
				return types.Option(ru.Elem())
			}
		case "keys":
			return types.List(types.Str)
		case "values":
			return types.List(ru.Elem())
		}
		return t.fail(x, "AttributeError", "'dict' object has no usable method %q here", name)
	case types.KindMatch:
		switch name {
		case "group":
			return types.Str
		case "groups":
			return types.List(types.Str)
		}
		return t.fail(x, "AttributeError", "'re.Match' object has no attribute %q", name)
	default:
		return t.fail(x, "AttributeError", "%s object has no attribute %q", recv, name)
	}
}
