package inference

import (
	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/types"
)

// expr types one expression, annotates the node and returns its type.
func (t *typer) expr(x pyast.Expr, env scope) types.Type {
	ty := t.exprInner(x, env)
	x.SetType(ty)
	return ty
}

func (t *typer) exprInner(x pyast.Expr, env scope) types.Type {
	switch x := x.(type) {
	case *pyast.NumLit:
		if x.IsFloat {
			return types.F64
		}
		return types.I64
	case *pyast.StrLit:
		return types.Str
	case *pyast.BoolLit:
		return types.Bool
	case *pyast.NoneLit:
		return types.Null
	case *pyast.Name:
		if ty, ok := env[x.Ident]; ok {
			return ty
		}
		if ty, ok := t.info.Globals[x.Ident]; ok {
			return ty
		}
		return t.fail(x, "NameError", "name %q is not defined", x.Ident)
	case *pyast.BinOp:
		l := t.expr(x.Left, env)
		r := t.expr(x.Right, env)
		return t.binOpType(x, x.Op, l, r)
	case *pyast.UnaryOp:
		v := t.expr(x.X, env)
		return t.unaryOpType(x, x.Op, v)
	case *pyast.Compare:
		t.expr(x.First, env)
		prev := x.First.Type()
		for i, op := range x.Ops {
			t.expr(x.Rest[i], env)
			cur := x.Rest[i].Type()
			t.checkComparable(x, op, prev, cur)
			prev = cur
		}
		return types.Bool
	case *pyast.BoolOp:
		var u types.Type
		for _, sub := range x.Xs {
			u = types.Unify(u, t.expr(sub, env))
		}
		// `a and b` yields one of the operands; unified type covers both.
		if u.Kind() == types.KindAny {
			return t.fail(x, "", "boolean operands have incompatible types")
		}
		return u
	case *pyast.IfExpr:
		condT := t.expr(x.Cond, env)
		if !t.opts.DisableNullPruning {
			switch staticTruth(x.Cond, condT) {
			case truthFalse:
				t.info.Dead[x] = DeadThen
				return t.expr(x.Else, env)
			case truthTrue:
				t.info.Dead[x] = DeadElse
				return t.expr(x.Then, env)
			}
		}
		a := t.expr(x.Then, env)
		b := t.expr(x.Else, env)
		u := types.Unify(a, b)
		if u.Kind() == types.KindAny && a.Kind() != types.KindAny && b.Kind() != types.KindAny {
			return t.fail(x, "", "conditional arms have incompatible types %s and %s", a, b)
		}
		return u
	case *pyast.Subscript:
		return t.subscriptType(x, env)
	case *pyast.Slice:
		return t.sliceType(x, env)
	case *pyast.TupleLit:
		elts := make([]types.Type, len(x.Elts))
		for i, e := range x.Elts {
			elts[i] = t.expr(e, env)
		}
		return types.Tuple(elts...)
	case *pyast.ListLit:
		var u types.Type
		for _, e := range x.Elts {
			u = types.Unify(u, t.expr(e, env))
		}
		if !u.IsValid() {
			u = types.Any // empty list: element type unconstrained
		}
		if u.Kind() == types.KindAny && len(x.Elts) > 0 {
			return t.fail(x, "", "list elements have incompatible types")
		}
		return types.List(u)
	case *pyast.DictLit:
		// Constant-keyed dict literals are row-shaped (the idiom map UDFs
		// use to emit named columns); type them as heterogeneous rows so
		// per-column types survive into the output schema.
		cols := make([]types.Column, len(x.Keys))
		for i := range x.Keys {
			lit, ok := x.Keys[i].(*pyast.StrLit)
			if !ok {
				return t.fail(x, "", "only constant string dict keys are compilable")
			}
			t.expr(x.Keys[i], env)
			cols[i] = types.Column{Name: lit.S, Type: t.expr(x.Vals[i], env)}
		}
		return types.Row(types.NewSchema(cols))
	case *pyast.ListComp:
		iterT := t.expr(x.Iter, env)
		eltIn := elementType(iterT)
		if !eltIn.IsValid() {
			return t.fail(x.Iter, "TypeError", "%s is not iterable", iterT)
		}
		inner := env.clone()
		inner[x.Var] = eltIn
		if x.Cond != nil {
			t.expr(x.Cond, inner)
		}
		eltOut := t.expr(x.Elt, inner)
		return types.List(eltOut)
	case *pyast.Call:
		return t.callType(x, env)
	case *pyast.Attr:
		// Bare attribute (no call): not compilable.
		t.expr(x.X, env)
		return t.fail(x, "", "bare attribute access %q is not compilable", x.Name)
	case *pyast.Lambda:
		return t.fail(x, "", "nested lambda")
	default:
		return t.fail(x, "", "unsupported expression %T", x)
	}
}

// ConstIntIndex extracts a compile-time integer constant from an index
// expression (a literal or a negated literal). Exported for the code
// generator, which resolves constant tuple/row indices statically.
func ConstIntIndex(e pyast.Expr) (int, bool) {
	switch e := e.(type) {
	case *pyast.NumLit:
		if !e.IsFloat {
			return int(e.I), true
		}
	case *pyast.UnaryOp:
		if e.Op == "-" {
			if lit, ok := e.X.(*pyast.NumLit); ok && !lit.IsFloat {
				return -int(lit.I), true
			}
		}
	}
	return 0, false
}

// numKind returns the numeric rank of a type for arithmetic: 0 not
// numeric, 1 bool, 2 i64, 3 f64. Options unwrap (runtime null checks are
// the code generator's job).
func numKind(ty types.Type) int {
	switch ty.Unwrap().Kind() {
	case types.KindBool:
		return 1
	case types.KindI64:
		return 2
	case types.KindF64:
		return 3
	default:
		return 0
	}
}

func (t *typer) binOpType(n pyast.Node, op string, l, r types.Type) types.Type {
	lu, ru := l.Unwrap(), r.Unwrap()
	lk, rk := numKind(l), numKind(r)
	switch op {
	case "+":
		if lk > 0 && rk > 0 {
			if lk == 3 || rk == 3 {
				return types.F64
			}
			return types.I64
		}
		if lu.Kind() == types.KindStr && ru.Kind() == types.KindStr {
			return types.Str
		}
		if lu.Kind() == types.KindList && ru.Kind() == types.KindList {
			u := types.Unify(lu.Elem(), ru.Elem())
			if u.Kind() == types.KindAny {
				return t.fail(n, "", "list concat with incompatible element types")
			}
			return types.List(u)
		}
		if lu.Kind() == types.KindTuple && ru.Kind() == types.KindTuple {
			return types.Tuple(append(append([]types.Type{}, lu.Elts()...), ru.Elts()...)...)
		}
		return t.fail(n, "TypeError", "unsupported operand type(s) for +: %s and %s", l, r)
	case "-":
		if lk > 0 && rk > 0 {
			if lk == 3 || rk == 3 {
				return types.F64
			}
			return types.I64
		}
		return t.fail(n, "TypeError", "unsupported operand type(s) for -: %s and %s", l, r)
	case "*":
		if lk > 0 && rk > 0 {
			if lk == 3 || rk == 3 {
				return types.F64
			}
			return types.I64
		}
		if lu.Kind() == types.KindStr && rk > 0 && rk < 3 {
			return types.Str
		}
		if ru.Kind() == types.KindStr && lk > 0 && lk < 3 {
			return types.Str
		}
		if lu.Kind() == types.KindList && rk > 0 && rk < 3 {
			return lu
		}
		return t.fail(n, "TypeError", "unsupported operand type(s) for *: %s and %s", l, r)
	case "/":
		if lk > 0 && rk > 0 {
			return types.F64
		}
		return t.fail(n, "TypeError", "unsupported operand type(s) for /: %s and %s", l, r)
	case "//":
		if lk > 0 && rk > 0 {
			if lk == 3 || rk == 3 {
				return types.F64
			}
			return types.I64
		}
		return t.fail(n, "TypeError", "unsupported operand type(s) for //: %s and %s", l, r)
	case "%":
		if lu.Kind() == types.KindStr {
			return types.Str // printf-style formatting
		}
		if lk > 0 && rk > 0 {
			if lk == 3 || rk == 3 {
				return types.F64
			}
			return types.I64
		}
		return t.fail(n, "TypeError", "unsupported operand type(s) for %%: %s and %s", l, r)
	case "**":
		if lk > 0 && rk > 0 {
			if lk == 3 || rk == 3 {
				return types.F64
			}
			// int ** int: non-negative exponents yield int — the normal
			// case the paper establishes by sample tracing. Negative
			// exponents raise to the general path at runtime.
			return types.I64
		}
		return t.fail(n, "TypeError", "unsupported operand type(s) for **: %s and %s", l, r)
	case "&", "|", "^", "<<", ">>":
		if lk > 0 && lk < 3 && rk > 0 && rk < 3 {
			return types.I64
		}
		return t.fail(n, "TypeError", "unsupported operand type(s) for %s: %s and %s", op, l, r)
	default:
		return t.fail(n, "", "unsupported operator %q", op)
	}
}

func (t *typer) unaryOpType(n pyast.Node, op string, v types.Type) types.Type {
	switch op {
	case "not":
		return types.Bool
	case "-", "+":
		switch numKind(v) {
		case 1, 2:
			return types.I64
		case 3:
			return types.F64
		}
		return t.fail(n, "TypeError", "bad operand type for unary %s: %s", op, v)
	case "~":
		if k := numKind(v); k == 1 || k == 2 {
			return types.I64
		}
		return t.fail(n, "TypeError", "bad operand type for unary ~: %s", v)
	default:
		return t.fail(n, "", "unsupported unary operator %q", op)
	}
}

func (t *typer) checkComparable(n pyast.Node, op string, l, r types.Type) {
	switch op {
	case "==", "!=", "is", "is not":
		return // always defined
	case "in", "not in":
		ru := r.Unwrap()
		switch ru.Kind() {
		case types.KindStr:
			if l.Unwrap().Kind() != types.KindStr {
				t.fail(n, "TypeError", "'in <string>' requires string operand, got %s", l)
			}
		case types.KindList, types.KindTuple, types.KindDict:
		default:
			t.fail(n, "TypeError", "argument of type %s is not iterable", r)
		}
		return
	default: // ordering
		lu, ru := l.Unwrap(), r.Unwrap()
		if numKind(l) > 0 && numKind(r) > 0 {
			return
		}
		if lu.Kind() == ru.Kind() {
			switch lu.Kind() {
			case types.KindStr, types.KindList, types.KindTuple:
				return
			}
		}
		t.fail(n, "TypeError", "%q not supported between %s and %s", op, l, r)
	}
}

func (t *typer) subscriptType(x *pyast.Subscript, env scope) types.Type {
	cont := t.expr(x.X, env)
	idx := t.expr(x.Index, env)
	cu := cont.Unwrap()
	switch cu.Kind() {
	case types.KindRow:
		sch := cu.Schema()
		if lit, ok := x.Index.(*pyast.StrLit); ok {
			i, found := sch.Lookup(lit.S)
			if !found {
				return t.fail(x, "KeyError", "row has no column %q", lit.S)
			}
			x.RowIdx = i
			return sch.Col(i).Type
		}
		if i, ok := ConstIntIndex(x.Index); ok {
			if i < 0 {
				i += sch.Len()
			}
			if i < 0 || i >= sch.Len() {
				return t.fail(x, "IndexError", "row index out of range")
			}
			x.RowIdx = i
			return sch.Col(i).Type
		}
		return t.fail(x, "", "dynamic row subscript is not compilable")
	}
	switch cu.Kind() {
	case types.KindStr:
		if numKind(idx) == 0 || numKind(idx) == 3 {
			return t.fail(x, "TypeError", "string indices must be integers")
		}
		return types.Str
	case types.KindList:
		if numKind(idx) == 0 || numKind(idx) == 3 {
			return t.fail(x, "TypeError", "list indices must be integers")
		}
		return cu.Elem()
	case types.KindTuple:
		if i, ok := ConstIntIndex(x.Index); ok {
			elts := cu.Elts()
			if i < 0 {
				i += len(elts)
			}
			if i < 0 || i >= len(elts) {
				return t.fail(x, "IndexError", "tuple index out of range")
			}
			return elts[i]
		}
		u := types.UnifyAll(cu.Elts())
		if u.Kind() == types.KindAny {
			return t.fail(x, "", "dynamic index into heterogeneous tuple")
		}
		return u
	case types.KindDict:
		if idx.Unwrap().Kind() != types.KindStr {
			return t.fail(x, "KeyError", "dict key must be str")
		}
		return cu.Elem()
	case types.KindMatch:
		if numKind(idx) == 0 {
			return t.fail(x, "IndexError", "no such group")
		}
		// A group can be absent (None) at runtime; the fast path raises
		// to the general path in that case, so Str is the normal type.
		return types.Str
	case types.KindNull:
		return t.fail(x, "TypeError", "'NoneType' object is not subscriptable")
	default:
		return t.fail(x, "", "cannot subscript %s", cont)
	}
}

func (t *typer) sliceType(x *pyast.Slice, env scope) types.Type {
	cont := t.expr(x.X, env)
	for _, b := range []pyast.Expr{x.Lo, x.Hi, x.Step} {
		if b == nil {
			continue
		}
		bt := t.expr(b, env)
		if k := numKind(bt); k == 0 || k == 3 {
			if bt.Kind() != types.KindNull {
				return t.fail(x, "TypeError", "slice indices must be integers or None")
			}
		}
	}
	cu := cont.Unwrap()
	switch cu.Kind() {
	case types.KindStr, types.KindList, types.KindTuple:
		if cu.Kind() == types.KindTuple {
			u := types.UnifyAll(cu.Elts())
			if u.Kind() == types.KindAny {
				return t.fail(x, "", "slicing heterogeneous tuple")
			}
			return types.List(u)
		}
		return cu
	case types.KindNull:
		return t.fail(x, "TypeError", "'NoneType' object is not subscriptable")
	default:
		return t.fail(x, "", "cannot slice %s", cont)
	}
}
