package inference

import (
	"testing"

	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/types"
)

func typeUDF(t *testing.T, src string, params []types.Type) *Info {
	t.Helper()
	fn, err := pyast.ParseUDF(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := TypeFunction(fn, params, nil, Options{})
	if err != nil {
		t.Fatalf("type: %v", err)
	}
	return info
}

func TestSimpleArithmeticTyping(t *testing.T) {
	info := typeUDF(t, "lambda m: m * 1.609", []types.Type{types.I64})
	if !info.Compilable() {
		t.Fatalf("failed: %v", info.Failed)
	}
	if !types.Equal(info.ReturnType, types.F64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
	info = typeUDF(t, "lambda m: m * 2", []types.Type{types.I64})
	if !types.Equal(info.ReturnType, types.I64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestTernaryOptionResult(t *testing.T) {
	info := typeUDF(t, "lambda x: '{:02}'.format(x) if x else None", []types.Type{types.I64})
	if !types.Equal(info.ReturnType, types.Option(types.Str)) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestNullConditionPruning(t *testing.T) {
	// Column typed Null in the normal case: the then-branch is pruned and
	// the whole expression types as the else arm (§4.7's flights
	// example).
	info := typeUDF(t, "lambda m: m * 1.609 if m else 0.0", []types.Type{types.Null})
	if !info.Compilable() {
		t.Fatalf("failed: %v", info.Failed)
	}
	if !types.Equal(info.ReturnType, types.F64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
	if len(info.Dead) != 1 {
		t.Fatalf("dead = %v", info.Dead)
	}
	for _, br := range info.Dead {
		if br != DeadThen {
			t.Fatalf("expected DeadThen, got %v", br)
		}
	}
}

func TestNullPruningDisabled(t *testing.T) {
	fn, _ := pyast.ParseUDF("lambda m: m * 1.609 if m else 0.0")
	info, err := TypeFunction(fn, []types.Type{types.Null}, nil, Options{DisableNullPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without pruning the then arm types against Null and fails, so the
	// UDF is not fast-path compilable — exactly the §6.3.3 cost.
	if info.Compilable() {
		t.Fatal("expected typing failure without null pruning")
	}
}

func TestDeadBranchInStatementIf(t *testing.T) {
	src := `def f(row):
    if row:
        return 1.0
    return 0.0
`
	info := typeUDF(t, src, []types.Type{types.Null})
	if !info.Compilable() || len(info.Dead) != 1 {
		t.Fatalf("failed=%v dead=%v", info.Failed, info.Dead)
	}
	if !types.Equal(info.ReturnType, types.F64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestBranchJoinUnifies(t *testing.T) {
	src := `def f(x):
    if x > 0:
        v = 1
    else:
        v = 2.5
    return v
`
	info := typeUDF(t, src, []types.Type{types.I64})
	if !info.Compilable() {
		t.Fatalf("failed: %v", info.Failed)
	}
	if !types.Equal(info.ReturnType, types.F64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestReturnTypeUnifiesAcrossReturns(t *testing.T) {
	src := `def f(x):
    if x > 0:
        return 'pos'
    return None
`
	info := typeUDF(t, src, []types.Type{types.I64})
	if !types.Equal(info.ReturnType, types.Option(types.Str)) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestFallOffEndReturnsNone(t *testing.T) {
	src := `def f(x):
    y = x + 1
`
	info := typeUDF(t, src, []types.Type{types.I64})
	if !types.Equal(info.ReturnType, types.Null) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestStringMethodChain(t *testing.T) {
	info := typeUDF(t, "lambda s: s.replace(',', '').strip().lower()", []types.Type{types.Str})
	if !info.Compilable() {
		t.Fatalf("failed: %v", info.Failed)
	}
	if !types.Equal(info.ReturnType, types.Str) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestSplitAndIndexTyping(t *testing.T) {
	info := typeUDF(t, "lambda s: s.split(' ')[0]", []types.Type{types.Str})
	if !types.Equal(info.ReturnType, types.Str) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
	info = typeUDF(t, "lambda s: int(s.split(',')[1])", []types.Type{types.Str})
	if !types.Equal(info.ReturnType, types.I64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestTupleRowAccess(t *testing.T) {
	row := types.Tuple(types.Str, types.I64, types.F64)
	info := typeUDF(t, "lambda x: x[1] + 1", []types.Type{row})
	if !info.Compilable() || !types.Equal(info.ReturnType, types.I64) {
		t.Fatalf("ret = %s failed=%v", info.ReturnType, info.Failed)
	}
	// Negative constant index.
	info = typeUDF(t, "lambda x: x[-1]", []types.Type{row})
	if !types.Equal(info.ReturnType, types.F64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
	// Out-of-range constant index is a static IndexError.
	info = typeUDF(t, "lambda x: x[7]", []types.Type{row})
	if info.Compilable() {
		t.Fatal("expected IndexError failure")
	}
}

func TestDictRowAccess(t *testing.T) {
	info := typeUDF(t, "lambda x: x['price'] * 2", []types.Type{types.Dict(types.I64)})
	if !info.Compilable() || !types.Equal(info.ReturnType, types.I64) {
		t.Fatalf("ret = %s failed=%v", info.ReturnType, info.Failed)
	}
}

func TestStaticTypeErrorMarksNode(t *testing.T) {
	info := typeUDF(t, "lambda x: x + 1", []types.Type{types.Str})
	if info.Compilable() {
		t.Fatal("str + int should fail typing")
	}
	for _, f := range info.Failed {
		if f.Raises != "TypeError" {
			t.Fatalf("raises = %q", f.Raises)
		}
	}
}

func TestNoneMethodFails(t *testing.T) {
	info := typeUDF(t, "lambda x: x.rfind(',')", []types.Type{types.Null})
	if info.Compilable() {
		t.Fatal("None.rfind should fail typing")
	}
}

func TestOptionUnwrapInOps(t *testing.T) {
	// Ops on Option types type against the element; the runtime check is
	// codegen's job.
	info := typeUDF(t, "lambda m: m * 1.609", []types.Type{types.Option(types.I64)})
	if !info.Compilable() {
		t.Fatalf("failed: %v", info.Failed)
	}
	if !types.Equal(info.ReturnType, types.F64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestRegexTyping(t *testing.T) {
	src := `def parse(x):
    match = re_search('^(\S+) (\S+)', x)
    if match:
        return match[1]
    return ''
`
	info := typeUDF(t, src, []types.Type{types.Str})
	if !info.Compilable() {
		t.Fatalf("failed: %v", info.Failed)
	}
	if !types.Equal(info.ReturnType, types.Str) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestReSubTyping(t *testing.T) {
	info := typeUDF(t, "lambda x: re.sub('^/~[^/]+', '/~x', x)", []types.Type{types.Str})
	if !info.Compilable() || !types.Equal(info.ReturnType, types.Str) {
		t.Fatalf("ret=%s failed=%v", info.ReturnType, info.Failed)
	}
}

func TestListCompTyping(t *testing.T) {
	info := typeUDF(t, "lambda n: [i * 2 for i in range(n)]", []types.Type{types.I64})
	if !types.Equal(info.ReturnType, types.List(types.I64)) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
	// With globals, the weblog randomize pattern types end to end.
	fn, _ := pyast.ParseUDF("lambda x: ''.join([random_choice(LETTERS) for t in range(10)])")
	info2, err := TypeFunction(fn, []types.Type{types.Str},
		map[string]types.Type{"LETTERS": types.Str}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Compilable() || !types.Equal(info2.ReturnType, types.Str) {
		t.Fatalf("ret=%s failed=%v", info2.ReturnType, info2.Failed)
	}
}

func TestDictLiteralTyping(t *testing.T) {
	// Constant-keyed dict literals type as heterogeneous rows so map UDFs
	// can emit mixed-type columns.
	info := typeUDF(t, "lambda x: {'a': x, 'b': 'label'}", []types.Type{types.I64})
	want := types.Row(types.NewSchema([]types.Column{
		{Name: "a", Type: types.I64}, {Name: "b", Type: types.Str},
	}))
	if !types.Equal(info.ReturnType, want) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestLoopWidening(t *testing.T) {
	src := `def f(n):
    v = 0
    for i in range(n):
        v = v + 0.5
    return v
`
	info := typeUDF(t, src, []types.Type{types.I64})
	if !info.Compilable() {
		t.Fatalf("failed: %v", info.Failed)
	}
	if !types.Equal(info.ReturnType, types.F64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}

func TestUnboundNameFails(t *testing.T) {
	info := typeUDF(t, "lambda x: nope + 1", []types.Type{types.I64})
	if info.Compilable() {
		t.Fatal("unbound name typed")
	}
}

func TestChainedComparisonTyping(t *testing.T) {
	info := typeUDF(t, "lambda x: 100000 < x <= 2e7", []types.Type{types.I64})
	if !info.Compilable() || !types.Equal(info.ReturnType, types.Bool) {
		t.Fatalf("ret=%s failed=%v", info.ReturnType, info.Failed)
	}
	info = typeUDF(t, "lambda x: 'a' < x", []types.Type{types.I64})
	if info.Compilable() {
		t.Fatal("str < int typed")
	}
}

func TestPercentFormatTyping(t *testing.T) {
	info := typeUDF(t, "lambda x: '%05d' % int(x)", []types.Type{types.Str})
	if !info.Compilable() || !types.Equal(info.ReturnType, types.Str) {
		t.Fatalf("ret=%s failed=%v", info.ReturnType, info.Failed)
	}
}

func TestArityMismatchIsError(t *testing.T) {
	fn, _ := pyast.ParseUDF("lambda a, b: a + b")
	if _, err := TypeFunction(fn, []types.Type{types.I64}, nil, Options{}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestExtractBdTypesEndToEnd(t *testing.T) {
	src := `def extractBd(x):
    val = x['facts and features']
    max_idx = val.find(' bd')
    if max_idx < 0:
        max_idx = len(val)
    s = val[:max_idx]
    split_idx = s.rfind(',')
    if split_idx < 0:
        split_idx = 0
    else:
        split_idx += 2
    r = s[split_idx:]
    return int(r)
`
	info := typeUDF(t, src, []types.Type{types.Dict(types.Str)})
	if !info.Compilable() {
		t.Fatalf("failed: %v", info.Failed)
	}
	if !types.Equal(info.ReturnType, types.I64) {
		t.Fatalf("ret = %s", info.ReturnType)
	}
}
