package pyast

import (
	"strings"
)

// lexer tokenizes Python source with indentation tracking. It follows the
// CPython tokenizer's rules for the constructs in our subset: logical
// lines, INDENT/DEDENT, implicit line joining inside brackets, explicit
// joining with a trailing backslash, comments, and string literals with
// single/double quotes and escapes.
type lexer struct {
	src     string
	off     int
	line    int
	col     int
	indents []int
	pending []Tok // queued INDENT/DEDENT tokens
	depth   int   // bracket nesting depth ([({ vs )}])
	atBOL   bool  // at beginning of a logical line
	emitted bool  // some non-NEWLINE token emitted on current line
}

func newLexer(src string) *lexer {
	// Normalize line endings so the indentation logic sees \n only.
	src = strings.ReplaceAll(src, "\r\n", "\n")
	src = strings.ReplaceAll(src, "\r", "\n")
	return &lexer{src: src, line: 1, col: 1, indents: []int{0}, atBOL: true}
}

// Lex tokenizes the whole source.
func Lex(src string) ([]Tok, error) {
	lx := newLexer(src)
	var toks []Tok
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) peekByteAt(d int) byte {
	if lx.off+d >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+d]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) next() (Tok, error) {
	if len(lx.pending) > 0 {
		t := lx.pending[0]
		lx.pending = lx.pending[1:]
		return t, nil
	}

	if lx.atBOL && lx.depth == 0 {
		if tok, handled, err := lx.handleIndentation(); err != nil {
			return Tok{}, err
		} else if handled {
			return tok, nil
		}
	}

	lx.skipSpacesAndComments()

	pos := lx.pos()
	c := lx.peekByte()

	switch {
	case c == 0:
		// Close the final logical line and drain indents.
		if lx.emitted {
			lx.emitted = false
			return Tok{Kind: TokNewline, Pos: pos}, nil
		}
		for len(lx.indents) > 1 {
			lx.indents = lx.indents[:len(lx.indents)-1]
			lx.pending = append(lx.pending, Tok{Kind: TokDedent, Pos: pos})
		}
		lx.pending = append(lx.pending, Tok{Kind: TokEOF, Pos: pos})
		t := lx.pending[0]
		lx.pending = lx.pending[1:]
		return t, nil

	case c == '\n':
		lx.advance()
		if lx.depth > 0 || !lx.emitted {
			// Implicit joining inside brackets; blank lines produce no
			// NEWLINE either.
			lx.atBOL = lx.depth == 0
			return lx.next()
		}
		lx.atBOL = true
		lx.emitted = false
		return Tok{Kind: TokNewline, Pos: pos}, nil

	case c == '\\' && lx.peekByteAt(1) == '\n':
		lx.advance()
		lx.advance()
		return lx.next()

	case isDigit(c) || (c == '.' && isDigit(lx.peekByteAt(1))):
		return lx.lexNumber()

	case c == '\'' || c == '"':
		return lx.lexString(c)

	case isNameStart(c):
		return lx.lexName()

	default:
		return lx.lexOp()
	}
}

// handleIndentation measures leading whitespace of a fresh logical line
// and emits INDENT/DEDENT tokens as needed. It reports handled=false when
// the line is blank or comment-only (no tokens emitted).
func (lx *lexer) handleIndentation() (Tok, bool, error) {
	width := 0
	for {
		c := lx.peekByte()
		if c == ' ' {
			width++
			lx.advance()
		} else if c == '\t' {
			width += 8 - width%8
			lx.advance()
		} else {
			break
		}
	}
	c := lx.peekByte()
	if c == '\n' || c == '#' || c == 0 {
		// Blank/comment-only line: no indentation effect.
		lx.atBOL = false
		return Tok{}, false, nil
	}
	lx.atBOL = false
	pos := lx.pos()
	cur := lx.indents[len(lx.indents)-1]
	switch {
	case width > cur:
		lx.indents = append(lx.indents, width)
		return Tok{Kind: TokIndent, Pos: pos}, true, nil
	case width < cur:
		var toks []Tok
		for len(lx.indents) > 1 && lx.indents[len(lx.indents)-1] > width {
			lx.indents = lx.indents[:len(lx.indents)-1]
			toks = append(toks, Tok{Kind: TokDedent, Pos: pos})
		}
		if lx.indents[len(lx.indents)-1] != width {
			return Tok{}, false, errf(pos, "unindent does not match any outer indentation level")
		}
		lx.pending = append(lx.pending, toks[1:]...)
		return toks[0], true, nil
	default:
		return Tok{}, false, nil
	}
}

func (lx *lexer) skipSpacesAndComments() {
	for {
		c := lx.peekByte()
		if c == ' ' || c == '\t' {
			lx.advance()
			continue
		}
		if c == '#' {
			for lx.peekByte() != '\n' && lx.peekByte() != 0 {
				lx.advance()
			}
			continue
		}
		return
	}
}

func (lx *lexer) lexNumber() (Tok, error) {
	pos := lx.pos()
	start := lx.off
	isFloat := false
	// Hex literals.
	if lx.peekByte() == '0' && (lx.peekByteAt(1) == 'x' || lx.peekByteAt(1) == 'X') {
		lx.advance()
		lx.advance()
		for isHexDigit(lx.peekByte()) || lx.peekByte() == '_' {
			lx.advance()
		}
		return Tok{Kind: TokInt, Text: lx.src[start:lx.off], Pos: pos}, nil
	}
	for isDigit(lx.peekByte()) || lx.peekByte() == '_' {
		lx.advance()
	}
	if lx.peekByte() == '.' && lx.peekByteAt(1) != '.' {
		isFloat = true
		lx.advance()
		for isDigit(lx.peekByte()) || lx.peekByte() == '_' {
			lx.advance()
		}
	}
	if c := lx.peekByte(); c == 'e' || c == 'E' {
		d := 1
		if lx.peekByteAt(1) == '+' || lx.peekByteAt(1) == '-' {
			d = 2
		}
		if isDigit(lx.peekByteAt(d)) {
			isFloat = true
			for range d {
				lx.advance()
			}
			for isDigit(lx.peekByte()) {
				lx.advance()
			}
		}
	}
	kind := TokInt
	if isFloat {
		kind = TokFloat
	}
	return Tok{Kind: kind, Text: lx.src[start:lx.off], Pos: pos}, nil
}

func (lx *lexer) lexString(quote byte) (Tok, error) {
	pos := lx.pos()
	lx.advance() // opening quote
	// Triple-quoted strings.
	triple := lx.peekByte() == quote && lx.peekByteAt(1) == quote
	if triple {
		lx.advance()
		lx.advance()
	}
	var sb strings.Builder
	for {
		c := lx.peekByte()
		if c == 0 {
			return Tok{}, errf(pos, "unterminated string literal")
		}
		if !triple && c == '\n' {
			return Tok{}, errf(pos, "newline in string literal")
		}
		if c == quote {
			if !triple {
				lx.advance()
				break
			}
			if lx.peekByteAt(1) == quote && lx.peekByteAt(2) == quote {
				lx.advance()
				lx.advance()
				lx.advance()
				break
			}
			sb.WriteByte(lx.advance())
			continue
		}
		if c == '\\' {
			lx.advance()
			e := lx.peekByte()
			if e == 0 {
				return Tok{}, errf(pos, "unterminated string literal")
			}
			lx.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\':
				sb.WriteByte('\\')
			case '\'':
				sb.WriteByte('\'')
			case '"':
				sb.WriteByte('"')
			case '0':
				sb.WriteByte(0)
			case 'x':
				hi, lo := lx.peekByte(), lx.peekByteAt(1)
				if !isHexDigit(hi) || !isHexDigit(lo) {
					return Tok{}, errf(lx.pos(), `invalid \x escape`)
				}
				lx.advance()
				lx.advance()
				sb.WriteByte(hexVal(hi)<<4 | hexVal(lo))
			case '\n':
				// Line continuation inside a string: swallowed.
			default:
				// Python keeps unknown escapes verbatim (with the
				// backslash), e.g. regex patterns like '\S+' or '\d{3}'.
				sb.WriteByte('\\')
				sb.WriteByte(e)
			}
			continue
		}
		sb.WriteByte(lx.advance())
	}
	lx.emitted = true
	return Tok{Kind: TokString, Str: sb.String(), Pos: pos}, nil
}

func (lx *lexer) lexName() (Tok, error) {
	pos := lx.pos()
	start := lx.off
	for isNameCont(lx.peekByte()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	// Raw string prefix: r'...' or r"..." (used for regex patterns).
	if (text == "r" || text == "R") && (lx.peekByte() == '\'' || lx.peekByte() == '"') {
		return lx.lexRawString(lx.peekByte())
	}
	lx.emitted = true
	if keywords[text] {
		return Tok{Kind: TokKeyword, Text: text, Pos: pos}, nil
	}
	return Tok{Kind: TokName, Text: text, Pos: pos}, nil
}

func (lx *lexer) lexRawString(quote byte) (Tok, error) {
	pos := lx.pos()
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		c := lx.peekByte()
		if c == 0 || c == '\n' {
			return Tok{}, errf(pos, "unterminated raw string literal")
		}
		if c == quote {
			lx.advance()
			break
		}
		if c == '\\' {
			// In a raw string the backslash is kept and the next char can
			// never terminate the string.
			sb.WriteByte(lx.advance())
			if n := lx.peekByte(); n != 0 && n != '\n' {
				sb.WriteByte(lx.advance())
			}
			continue
		}
		sb.WriteByte(lx.advance())
	}
	lx.emitted = true
	return Tok{Kind: TokString, Str: sb.String(), Pos: pos}, nil
}

// multi-character operators, longest first.
var multiOps = []string{
	"**=", "//=", "<<=", ">>=",
	"==", "!=", "<=", ">=", "**", "//", "->", "+=", "-=", "*=", "/=", "%=",
	"&=", "|=", "^=", "<<", ">>",
}

func (lx *lexer) lexOp() (Tok, error) {
	pos := lx.pos()
	rest := lx.src[lx.off:]
	for _, op := range multiOps {
		if strings.HasPrefix(rest, op) {
			for range len(op) {
				lx.advance()
			}
			lx.emitted = true
			return Tok{Kind: TokOp, Text: op, Pos: pos}, nil
		}
	}
	c := lx.advance()
	switch c {
	case '(', '[', '{':
		lx.depth++
	case ')', ']', '}':
		if lx.depth > 0 {
			lx.depth--
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '=', '(', ')', '[', ']', '{', '}',
		',', ':', '.', ';', '@', '&', '|', '^', '~':
		lx.emitted = true
		return Tok{Kind: TokOp, Text: string(c), Pos: pos}, nil
	}
	return Tok{}, errf(pos, "unexpected character %q", string(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func hexVal(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	default:
		return c - 'A' + 10
	}
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameCont(c byte) bool { return isNameStart(c) || isDigit(c) }
