// Package pyast implements a lexer, parser and AST for the subset of
// Python that Tuplex pipelines use in their UDFs (lambdas and small
// multi-statement functions over rows: string wrangling, arithmetic,
// control flow, comprehensions, regex and formatting calls).
//
// The subset is deliberately scoped to what the paper's pipelines
// (Appendix A) and similar data-wrangling UDFs need; anything outside the
// subset parses into an error that routes the UDF to the interpreter-only
// fallback path.
package pyast

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokNewline
	TokIndent
	TokDedent
	TokName
	TokInt
	TokFloat
	TokString
	TokOp      // operators and punctuation; Tok.Text holds the exact spelling
	TokKeyword // Python keywords; Tok.Text holds the keyword
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokNewline:
		return "NEWLINE"
	case TokIndent:
		return "INDENT"
	case TokDedent:
		return "DEDENT"
	case TokName:
		return "NAME"
	case TokInt:
		return "INT"
	case TokFloat:
		return "FLOAT"
	case TokString:
		return "STRING"
	case TokOp:
		return "OP"
	case TokKeyword:
		return "KEYWORD"
	default:
		return fmt.Sprintf("TokKind(%d)", uint8(k))
	}
}

// Pos is a 1-based source position.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Tok is one lexical token.
type Tok struct {
	Kind TokKind
	Text string // spelling: identifier, keyword, operator, or literal text
	Str  string // decoded value for TokString
	Pos  Pos
}

func (t Tok) String() string {
	if t.Text != "" {
		return fmt.Sprintf("%s(%q)@%s", t.Kind, t.Text, t.Pos)
	}
	return fmt.Sprintf("%s@%s", t.Kind, t.Pos)
}

var keywords = map[string]bool{
	"False": true, "None": true, "True": true, "and": true, "def": true,
	"elif": true, "else": true, "for": true, "if": true, "in": true,
	"is": true, "lambda": true, "not": true, "or": true, "pass": true,
	"return": true, "while": true, "break": true, "continue": true,
}

// Error is a lexing/parsing error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("python:%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
