package pyast

import "sort"

// ColumnAccess summarizes how a UDF uses its row parameter. The logical
// planner (§4.7 "Logical optimizations") uses this to push projections and
// filters through UDFs and to reorder UDF-applying operators past joins.
type ColumnAccess struct {
	// ByName lists column names accessed as x['name'].
	ByName []string
	// ByIndex lists column positions accessed as x[i] with a constant i.
	ByIndex []int
	// WholeRow reports that the row parameter is used in a way the
	// analysis cannot attribute to specific columns (passed to a call,
	// returned, iterated, subscripted with a dynamic key, ...). When set,
	// the UDF must be treated as reading every column.
	WholeRow bool
	// OutputColumns lists the column names of a dict-literal return value
	// when every return statement returns a dict literal with constant
	// string keys; nil otherwise.
	OutputColumns []string
}

// Reads reports whether the UDF may read the named column at position idx.
func (ca *ColumnAccess) Reads(name string, idx int) bool {
	if ca.WholeRow {
		return true
	}
	for _, n := range ca.ByName {
		if n == name {
			return true
		}
	}
	for _, i := range ca.ByIndex {
		if i == idx {
			return true
		}
	}
	return false
}

// AnalyzeColumns computes the ColumnAccess summary for fn's first
// parameter. UDFs with zero or multiple parameters (e.g. aggregation
// combiners) are reported as WholeRow.
func AnalyzeColumns(fn *Function) *ColumnAccess {
	ca := &ColumnAccess{}
	if len(fn.Params) != 1 {
		ca.WholeRow = true
		return ca
	}
	param := fn.Params[0]
	byName := map[string]bool{}
	byIndex := map[int]bool{}

	// shadowed tracks whether the parameter has been rebound (plain,
	// tuple or augmented assignment, loop variable, comprehension or
	// nested-function parameter, nested def name); after that,
	// attribution is unsound and we bail to WholeRow. Aliasing
	// (`y = x`) is handled below: the bare-Name walk treats any
	// non-subscript use of the parameter — including the right-hand
	// side of an alias assignment — as reading every column.
	shadowed := false
	bindsParam := func(t Expr) bool {
		switch t := t.(type) {
		case *Name:
			return t.Ident == param
		case *TupleLit:
			for _, e := range t.Elts {
				if nm, ok := e.(*Name); ok && nm.Ident == param {
					return true
				}
			}
		}
		return false
	}
	InspectStmts(fn.Body, func(n Node) bool {
		switch n := n.(type) {
		case *Assign:
			if bindsParam(n.Target) {
				shadowed = true
			}
		case *AugAssign:
			if bindsParam(n.Target) {
				shadowed = true
			}
		case *For:
			if bindsParam(n.Var) {
				shadowed = true
			}
		case *ListComp:
			if n.Var == param {
				shadowed = true
			}
		case *Lambda:
			for _, p := range n.Params {
				if p == param {
					shadowed = true
				}
			}
		case *FuncDef:
			if n.Name == param {
				shadowed = true
			}
			for _, p := range n.Params {
				if p == param {
					shadowed = true
				}
			}
		}
		return true
	})
	if shadowed {
		ca.WholeRow = true
		return ca
	}

	// Collect accesses; any bare use of the parameter that is not the X of
	// a constant subscript escapes the row. We walk twice: first marking
	// Name uses consumed by an enclosing constant Subscript, then flagging
	// the rest.
	consumed := map[*Name]bool{}
	InspectStmts(fn.Body, func(n Node) bool {
		sub, ok := n.(*Subscript)
		if !ok {
			return true
		}
		nm, ok := sub.X.(*Name)
		if !ok || nm.Ident != param {
			return true
		}
		switch idx := sub.Index.(type) {
		case *StrLit:
			byName[idx.S] = true
			consumed[nm] = true
		case *NumLit:
			if !idx.IsFloat {
				byIndex[int(idx.I)] = true
				consumed[nm] = true
			}
		}
		return true
	})
	InspectStmts(fn.Body, func(n Node) bool {
		if nm, ok := n.(*Name); ok && nm.Ident == param && !consumed[nm] {
			ca.WholeRow = true
		}
		return true
	})

	for n := range byName {
		ca.ByName = append(ca.ByName, n)
	}
	sort.Strings(ca.ByName)
	for i := range byIndex {
		ca.ByIndex = append(ca.ByIndex, i)
	}
	sort.Ints(ca.ByIndex)

	ca.OutputColumns = dictReturnColumns(fn.Body)
	return ca
}

// dictReturnColumns returns the common key set when every return in body
// returns a dict literal with constant string keys in the same order.
func dictReturnColumns(body []Stmt) []string {
	var cols []string
	ok := true
	sawReturn := false
	InspectStmts(body, func(n Node) bool {
		r, isRet := n.(*Return)
		if !isRet || !ok {
			return true
		}
		sawReturn = true
		d, isDict := r.X.(*DictLit)
		if !isDict {
			ok = false
			return true
		}
		keys := make([]string, 0, len(d.Keys))
		for _, k := range d.Keys {
			s, isStr := k.(*StrLit)
			if !isStr {
				ok = false
				return true
			}
			keys = append(keys, s.S)
		}
		if cols == nil {
			cols = keys
		} else if !equalStrings(cols, keys) {
			ok = false
		}
		return true
	})
	if !ok || !sawReturn {
		return nil
	}
	return cols
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// UsesUnsupported reports the first construct in fn outside the compilable
// subset, or "" if the whole function is compilable. The engine uses this
// to route whole UDFs to the fallback path up front (paper §5
// "Limitations": unsupported language features fall back on the
// interpreter).
func UsesUnsupported(fn *Function) string {
	reason := ""
	InspectStmts(fn.Body, func(n Node) bool {
		if reason != "" {
			return false
		}
		if _, ok := n.(*Lambda); ok {
			// Nested lambdas only appear as arguments to higher-order
			// helpers we do not compile. (Unknown function names are
			// caught later, during type inference, so UDF globals remain
			// usable.)
			reason = "nested lambda"
		}
		return true
	})
	return reason
}

// CompilableBuiltins is the set of free functions the code generator and
// interpreter both implement. Module functions (re.sub, random.choice,
// string.capwords) are attribute calls and handled separately.
var CompilableBuiltins = map[string]bool{
	"len": true, "int": true, "float": true, "str": true, "bool": true,
	"abs": true, "min": true, "max": true, "round": true, "range": true,
	"ord": true, "chr": true,
	// The paper's pipelines import these under bare names.
	"re_sub": true, "re_search": true, "random_choice": true,
	"string_capwords": true,
}
