package pyast

import (
	"strings"
	"testing"
)

func mustParseUDF(t *testing.T, src string) *Function {
	t.Helper()
	fn, err := ParseUDF(src)
	if err != nil {
		t.Fatalf("ParseUDF(%q): %v", src, err)
	}
	return fn
}

func TestParseLambdaSimple(t *testing.T) {
	fn := mustParseUDF(t, "lambda m: m * 1.609")
	if len(fn.Params) != 1 || fn.Params[0] != "m" {
		t.Fatalf("params = %v", fn.Params)
	}
	if len(fn.Body) != 1 {
		t.Fatalf("body = %v", fn.Body)
	}
	ret, ok := fn.Body[0].(*Return)
	if !ok {
		t.Fatalf("body[0] = %T", fn.Body[0])
	}
	bin, ok := ret.X.(*BinOp)
	if !ok || bin.Op != "*" {
		t.Fatalf("ret.X = %s", Dump(ret.X))
	}
}

func TestParseLambdaMultiParam(t *testing.T) {
	fn := mustParseUDF(t, "lambda acc, r: acc + r['col']")
	if len(fn.Params) != 2 {
		t.Fatalf("params = %v", fn.Params)
	}
}

func TestParseTernaryAndNullCheck(t *testing.T) {
	fn := mustParseUDF(t, "lambda m: m * 1.609 if m else 0.0")
	ret := fn.Body[0].(*Return)
	ife, ok := ret.X.(*IfExpr)
	if !ok {
		t.Fatalf("ret.X = %s", Dump(ret.X))
	}
	if _, ok := ife.Cond.(*Name); !ok {
		t.Fatalf("cond = %s", Dump(ife.Cond))
	}
}

func TestParseChainedComparison(t *testing.T) {
	fn := mustParseUDF(t, "lambda x: 100000 < x['price'] <= 2e7")
	ret := fn.Body[0].(*Return)
	cmp, ok := ret.X.(*Compare)
	if !ok || len(cmp.Ops) != 2 {
		t.Fatalf("ret.X = %s", Dump(ret.X))
	}
	if cmp.Ops[0] != "<" || cmp.Ops[1] != "<=" {
		t.Fatalf("ops = %v", cmp.Ops)
	}
}

func TestParseDefWithControlFlow(t *testing.T) {
	src := `def extractBd(x):
    val = x['facts and features']
    max_idx = val.find(' bd')
    if max_idx < 0:
        max_idx = len(val)
    s = val[:max_idx]
    split_idx = s.rfind(',')
    if split_idx < 0:
        split_idx = 0
    else:
        split_idx += 2
    r = s[split_idx:]
    return int(r)
`
	fn := mustParseUDF(t, src)
	if fn.Name != "extractBd" {
		t.Fatalf("name = %q", fn.Name)
	}
	if got := len(fn.Body); got != 8 {
		t.Fatalf("len(body) = %d, want 8", got)
	}
	if _, ok := fn.Body[2].(*If); !ok {
		t.Fatalf("body[2] = %T", fn.Body[2])
	}
	// The else branch holds an augmented assignment.
	ifs := fn.Body[5].(*If)
	if len(ifs.Else) != 1 {
		t.Fatalf("else = %v", ifs.Else)
	}
	if _, ok := ifs.Else[0].(*AugAssign); !ok {
		t.Fatalf("else[0] = %T", ifs.Else[0])
	}
}

func TestParseElifChain(t *testing.T) {
	src := `def cleanCode(t):
    if t["CancellationCode"] == 'A':
        return 'carrier'
    elif t["CancellationCode"] == 'B':
        return 'weather'
    elif t["CancellationCode"] == 'C':
        return 'national air system'
    else:
        return None
`
	fn := mustParseUDF(t, src)
	top, ok := fn.Body[0].(*If)
	if !ok {
		t.Fatalf("body[0] = %T", fn.Body[0])
	}
	lvl2, ok := top.Else[0].(*If)
	if !ok {
		t.Fatalf("elif did not nest: %T", top.Else[0])
	}
	lvl3, ok := lvl2.Else[0].(*If)
	if !ok {
		t.Fatalf("second elif did not nest: %T", lvl2.Else[0])
	}
	if len(lvl3.Else) != 1 {
		t.Fatalf("final else missing")
	}
}

func TestParseListComprehension(t *testing.T) {
	fn := mustParseUDF(t, "lambda x: ''.join([random_choice(LETTERS) for t in range(10)])")
	ret := fn.Body[0].(*Return)
	call := ret.X.(*Call)
	lc, ok := call.Args[0].(*ListComp)
	if !ok {
		t.Fatalf("arg = %s", Dump(call.Args[0]))
	}
	if lc.Var != "t" {
		t.Fatalf("var = %q", lc.Var)
	}
}

func TestParseDictLiteralReturn(t *testing.T) {
	src := `def parse(x):
    return {"ip": x, "code": 200}
`
	fn := mustParseUDF(t, src)
	ret := fn.Body[0].(*Return)
	d, ok := ret.X.(*DictLit)
	if !ok || len(d.Keys) != 2 {
		t.Fatalf("ret = %s", Dump(ret.X))
	}
}

func TestParseSlices(t *testing.T) {
	for _, src := range []string{
		"lambda s: s[1:]",
		"lambda s: s[:-1]",
		"lambda s: s[1:-1]",
		"lambda s: s[::2]",
		"lambda s: s[a:b]",
	} {
		fn := mustParseUDF(t, src)
		ret := fn.Body[0].(*Return)
		if _, ok := ret.X.(*Slice); !ok {
			t.Errorf("%s: got %s", src, Dump(ret.X))
		}
	}
}

func TestParseStringFormatting(t *testing.T) {
	fn := mustParseUDF(t, "lambda x: '{:02}:{:02}'.format(int(x / 100), x % 100) if x else None")
	ret := fn.Body[0].(*Return)
	ife := ret.X.(*IfExpr)
	call, ok := ife.Then.(*Call)
	if !ok {
		t.Fatalf("then = %s", Dump(ife.Then))
	}
	attr, ok := call.Fn.(*Attr)
	if !ok || attr.Name != "format" {
		t.Fatalf("fn = %s", Dump(call.Fn))
	}
}

func TestParsePercentFormat(t *testing.T) {
	fn := mustParseUDF(t, "lambda x: '%05d' % int(x['postal_code'])")
	ret := fn.Body[0].(*Return)
	bin, ok := ret.X.(*BinOp)
	if !ok || bin.Op != "%" {
		t.Fatalf("ret = %s", Dump(ret.X))
	}
}

func TestParseInOperator(t *testing.T) {
	fn := mustParseUDF(t, "lambda t: 'condo' in t or 'apartment' in t")
	ret := fn.Body[0].(*Return)
	bo, ok := ret.X.(*BoolOp)
	if !ok || bo.Op != "or" || len(bo.Xs) != 2 {
		t.Fatalf("ret = %s", Dump(ret.X))
	}
	cmp := bo.Xs[0].(*Compare)
	if cmp.Ops[0] != "in" {
		t.Fatalf("op = %v", cmp.Ops)
	}
}

func TestParseNotIn(t *testing.T) {
	fn := mustParseUDF(t, "lambda x: x not in ('a', 'b')")
	cmp := fn.Body[0].(*Return).X.(*Compare)
	if cmp.Ops[0] != "not in" {
		t.Fatalf("op = %v", cmp.Ops)
	}
}

func TestParseForLoopWithRange(t *testing.T) {
	src := `def f(x):
    total = 0
    for i in range(10):
        total += i
    return total
`
	fn := mustParseUDF(t, src)
	fl, ok := fn.Body[1].(*For)
	if !ok {
		t.Fatalf("body[1] = %T", fn.Body[1])
	}
	if _, ok := fl.Var.(*Name); !ok {
		t.Fatalf("var = %s", Dump(fl.Var))
	}
}

func TestParseWhileBreakContinue(t *testing.T) {
	src := `def f(x):
    i = 0
    while True:
        i += 1
        if i > 10:
            break
        if i % 2 == 0:
            continue
    return i
`
	fn := mustParseUDF(t, src)
	wl, ok := fn.Body[1].(*While)
	if !ok {
		t.Fatalf("body[1] = %T", fn.Body[1])
	}
	if len(wl.Body) != 3 {
		t.Fatalf("while body = %d stmts", len(wl.Body))
	}
}

func TestParseImplicitLineJoining(t *testing.T) {
	src := `lambda s: s.replace('Inc.', '') \
    .replace('LLC', '') \
    .replace('Co.', '').strip()`
	fn := mustParseUDF(t, src)
	ret := fn.Body[0].(*Return)
	call, ok := ret.X.(*Call)
	if !ok {
		t.Fatalf("ret = %s", Dump(ret.X))
	}
	attr := call.Fn.(*Attr)
	if attr.Name != "strip" {
		t.Fatalf("outermost = %q", attr.Name)
	}
}

func TestParseParenJoining(t *testing.T) {
	src := `def f(x):
    y = (x +
         1)
    return y
`
	mustParseUDF(t, src)
}

func TestParseTupleUnpacking(t *testing.T) {
	src := `def f(x):
    a, b = x['u'], x['v']
    return a + b
`
	fn := mustParseUDF(t, src)
	as, ok := fn.Body[0].(*Assign)
	if !ok {
		t.Fatalf("body[0] = %T", fn.Body[0])
	}
	if _, ok := as.Target.(*TupleLit); !ok {
		t.Fatalf("target = %s", Dump(as.Target))
	}
}

func TestParseRawStringRegex(t *testing.T) {
	fn := mustParseUDF(t, `lambda x: re_search(r'^(\S+) (\S+)', x)`)
	ret := fn.Body[0].(*Return)
	call := ret.X.(*Call)
	lit, ok := call.Args[0].(*StrLit)
	if !ok {
		t.Fatalf("arg = %s", Dump(call.Args[0]))
	}
	if !strings.HasPrefix(lit.S, `^(\S+)`) {
		t.Fatalf("raw string = %q", lit.S)
	}
}

func TestParseRegexEscapesInNormalString(t *testing.T) {
	// Python keeps unknown escapes verbatim; the weblog pipeline relies on
	// this for '\S' and '\d' in a non-raw string.
	fn := mustParseUDF(t, `lambda x: re_search('^(\S+) \[([\w:/]+\s[+\-]\d{4})\]', x)`)
	call := fn.Body[0].(*Return).X.(*Call)
	lit := call.Args[0].(*StrLit)
	if !strings.Contains(lit.S, `\S`) || !strings.Contains(lit.S, `\d{4}`) {
		t.Fatalf("escapes lost: %q", lit.S)
	}
}

func TestParsePowerRightAssoc(t *testing.T) {
	e, err := ParseExprString("2 ** 3 ** 2")
	if err != nil {
		t.Fatal(err)
	}
	top := e.(*BinOp)
	if _, ok := top.Right.(*BinOp); !ok {
		t.Fatalf("** not right-associative: %s", Dump(e))
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	e, err := ParseExprString("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	top := e.(*BinOp)
	if top.Op != "+" {
		t.Fatalf("top = %q", top.Op)
	}
	if r, ok := top.Right.(*BinOp); !ok || r.Op != "*" {
		t.Fatalf("precedence wrong: %s", Dump(e))
	}
}

func TestParseUnaryMinusPrecedence(t *testing.T) {
	e, err := ParseExprString("-x ** 2")
	if err != nil {
		t.Fatal(err)
	}
	// -x**2 is -(x**2) in Python.
	top, ok := e.(*UnaryOp)
	if !ok || top.Op != "-" {
		t.Fatalf("got %s", Dump(e))
	}
	if _, ok := top.X.(*BinOp); !ok {
		t.Fatalf("got %s", Dump(e))
	}
}

func TestParseStringConcatenationAdjacent(t *testing.T) {
	e, err := ParseExprString(`'abc' 'def'`)
	if err != nil {
		t.Fatal(err)
	}
	lit := e.(*StrLit)
	if lit.S != "abcdef" {
		t.Fatalf("got %q", lit.S)
	}
}

func TestParseKeywordArgs(t *testing.T) {
	e, err := ParseExprString("round(x, ndigits=2)")
	if err != nil {
		t.Fatal(err)
	}
	call := e.(*Call)
	if len(call.Args) != 1 || len(call.KwNames) != 1 || call.KwNames[0] != "ndigits" {
		t.Fatalf("got %s", Dump(e))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"lambda x: (",
		"def f(x):\nreturn x", // missing indent
		"lambda x: x +",
		"x = y = 1",
		"1 = x",
		"lambda x: 'unterminated",
	}
	for _, src := range cases {
		if _, err := ParseModule(src); err == nil {
			t.Errorf("ParseModule(%q) succeeded, want error", src)
		}
	}
}

func TestParseUDFErrors(t *testing.T) {
	for _, src := range []string{"", "x + 1", "x = 1"} {
		if _, err := ParseUDF(src); err == nil {
			t.Errorf("ParseUDF(%q) succeeded, want error", src)
		}
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	src := `def f(x):
    # leading comment
    y = x + 1  # trailing comment

    return y
`
	fn := mustParseUDF(t, src)
	if len(fn.Body) != 2 {
		t.Fatalf("len(body) = %d", len(fn.Body))
	}
}

func TestParseNestedIndexAndMatchGroups(t *testing.T) {
	fn := mustParseUDF(t, "lambda m: {'ip': m[1], 'code': int(m[8])}")
	d := fn.Body[0].(*Return).X.(*DictLit)
	if len(d.Keys) != 2 {
		t.Fatalf("dict = %s", Dump(d))
	}
}

func TestParseHexAndUnderscoreLiterals(t *testing.T) {
	e, err := ParseExprString("0xff + 1_000_000")
	if err != nil {
		t.Fatal(err)
	}
	bin := e.(*BinOp)
	if bin.Left.(*NumLit).I != 255 || bin.Right.(*NumLit).I != 1000000 {
		t.Fatalf("got %s", Dump(e))
	}
}

func TestParseScientificFloats(t *testing.T) {
	e, err := ParseExprString("2e7")
	if err != nil {
		t.Fatal(err)
	}
	if lit := e.(*NumLit); !lit.IsFloat || lit.F != 2e7 {
		t.Fatalf("got %+v", e)
	}
}

func TestNumLocals(t *testing.T) {
	src := `def f(x):
    a = 1
    b = 2
    for i in range(3):
        a += i
    c = [t for t in range(2)]
    return a + b + len(c)
`
	fn := mustParseUDF(t, src)
	// x, a, b, i, c, t
	if got := fn.NumLocals(); got != 6 {
		t.Fatalf("NumLocals = %d, want 6", got)
	}
}

func TestAnalyzeColumnsByName(t *testing.T) {
	src := `def f(x):
    v = x['price'] + x['tax']
    return v
`
	ca := AnalyzeColumns(mustParseUDF(t, src))
	if ca.WholeRow {
		t.Fatal("unexpected WholeRow")
	}
	if len(ca.ByName) != 2 || ca.ByName[0] != "price" || ca.ByName[1] != "tax" {
		t.Fatalf("ByName = %v", ca.ByName)
	}
}

func TestAnalyzeColumnsByIndex(t *testing.T) {
	ca := AnalyzeColumns(mustParseUDF(t, "lambda x: x[0].upper() + x[1]"))
	if ca.WholeRow || len(ca.ByIndex) != 2 {
		t.Fatalf("got %+v", ca)
	}
}

func TestAnalyzeColumnsWholeRowEscape(t *testing.T) {
	ca := AnalyzeColumns(mustParseUDF(t, "lambda x: len(x)"))
	if !ca.WholeRow {
		t.Fatal("expected WholeRow for len(x)")
	}
	ca = AnalyzeColumns(mustParseUDF(t, "lambda x: x[x['k']]"))
	if !ca.WholeRow {
		t.Fatal("expected WholeRow for dynamic subscript")
	}
}

func TestAnalyzeColumnsOutputColumns(t *testing.T) {
	src := `def f(x):
    if x['a'] > 0:
        return {'u': 1, 'v': 2}
    return {'u': 0, 'v': 3}
`
	ca := AnalyzeColumns(mustParseUDF(t, src))
	if len(ca.OutputColumns) != 2 || ca.OutputColumns[0] != "u" {
		t.Fatalf("OutputColumns = %v", ca.OutputColumns)
	}
}

func TestAnalyzeColumnsShadowedParam(t *testing.T) {
	src := `def f(x):
    x = x['a']
    return x
`
	ca := AnalyzeColumns(mustParseUDF(t, src))
	if !ca.WholeRow {
		t.Fatal("expected WholeRow when param is reassigned")
	}
}

func TestUsesUnsupported(t *testing.T) {
	if r := UsesUnsupported(mustParseUDF(t, "lambda x: x + 1")); r != "" {
		t.Fatalf("got %q", r)
	}
	fn := mustParseUDF(t, "lambda x: (lambda y: y)(x)")
	if r := UsesUnsupported(fn); r == "" {
		t.Fatal("nested lambda not flagged")
	}
}

func TestLexIndentationError(t *testing.T) {
	src := "def f(x):\n    y = 1\n  return y\n"
	if _, err := ParseModule(src); err == nil {
		t.Fatal("bad dedent accepted")
	}
}

func TestParseZillowExtractPrice(t *testing.T) {
	// The gnarliest UDF in the Zillow pipeline, verbatim from the paper.
	src := `def extractPrice(x):
    price = x['price']
    p = 0
    if x['offer'] == 'sold':
        val = x['facts and features']
        s = val[val.find('Price/sqft:') + len('Price/sqft:') + 1:]
        r = s[s.find('$')+1:s.find(', ') - 1]
        price_per_sqft = int(r)
        p = price_per_sqft * x['sqft']
    elif x['offer'] == 'rent':
        max_idx = price.rfind('/')
        p = int(price[1:max_idx].replace(',', ''))
    else:
        p = int(price[1:].replace(',', ''))
    return p
`
	fn := mustParseUDF(t, src)
	ca := AnalyzeColumns(fn)
	want := []string{"facts and features", "offer", "price", "sqft"}
	if !equalStrings(ca.ByName, want) {
		t.Fatalf("ByName = %v, want %v", ca.ByName, want)
	}
}
