package pyast

import (
	"strings"

	"github.com/gotuplex/tuplex/internal/types"
)

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() Pos
}

// Expr is an expression node. Every expression carries a type annotation
// slot that the inference pass fills in (§4.3: "typing the abstract syntax
// tree with the normal-case types").
type Expr interface {
	Node
	exprNode()
	// Type returns the inferred static type (zero Type before inference).
	Type() types.Type
	// SetType records the inferred static type.
	SetType(types.Type)
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

type exprBase struct {
	P  Pos
	Ty types.Type
}

func (b *exprBase) Pos() Pos             { return b.P }
func (b *exprBase) exprNode()            {}
func (b *exprBase) Type() types.Type     { return b.Ty }
func (b *exprBase) SetType(t types.Type) { b.Ty = t }

type stmtBase struct{ P Pos }

func (b *stmtBase) Pos() Pos  { return b.P }
func (b *stmtBase) stmtNode() {}

// ---- Expressions ----

// NumLit is an integer or float literal.
type NumLit struct {
	exprBase
	IsFloat bool
	I       int64
	F       float64
}

// StrLit is a string literal.
type StrLit struct {
	exprBase
	S string
}

// BoolLit is True or False.
type BoolLit struct {
	exprBase
	B bool
}

// NoneLit is None.
type NoneLit struct{ exprBase }

// Name is an identifier reference.
type Name struct {
	exprBase
	Ident string
	// Slot is the resolved frame slot, filled by the compiler; -1 until
	// resolution.
	Slot int
}

// BinOp is a binary arithmetic/bit operation (+ - * / // % ** & | ^ << >>).
type BinOp struct {
	exprBase
	Op          string
	Left, Right Expr
}

// UnaryOp is -x, +x, ~x or not x.
type UnaryOp struct {
	exprBase
	Op string
	X  Expr
}

// Compare is a chained comparison a < b <= c (ops: == != < <= > >= in
// "not in" is "is" "is not").
type Compare struct {
	exprBase
	First Expr
	Ops   []string
	Rest  []Expr
}

// BoolOp is "and"/"or" over two or more operands with short-circuiting.
type BoolOp struct {
	exprBase
	Op string // "and" or "or"
	Xs []Expr
}

// IfExpr is the ternary `a if cond else b`.
type IfExpr struct {
	exprBase
	Cond, Then, Else Expr
}

// Call is a function or method call.
type Call struct {
	exprBase
	Fn   Expr
	Args []Expr
	// Kwargs are keyword arguments (rare in UDFs, used e.g. by
	// round(x, ndigits=2) style calls).
	KwNames []string
	KwArgs  []Expr
}

// Attr is attribute access x.name (usually a method reference).
type Attr struct {
	exprBase
	X    Expr
	Name string
}

// Subscript is x[index].
type Subscript struct {
	exprBase
	X     Expr
	Index Expr
	// RowIdx is the resolved column position when X is a row and Index is
	// a constant; -1 otherwise. Filled by the inference pass.
	RowIdx int
}

// Slice is x[lo:hi:step]; nil fields mean omitted bounds.
type Slice struct {
	exprBase
	X            Expr
	Lo, Hi, Step Expr
}

// TupleLit is (a, b, ...).
type TupleLit struct {
	exprBase
	Elts []Expr
}

// ListLit is [a, b, ...].
type ListLit struct {
	exprBase
	Elts []Expr
}

// DictLit is {k: v, ...}.
type DictLit struct {
	exprBase
	Keys, Vals []Expr
}

// ListComp is [expr for var in iter if cond] (single generator, optional
// single condition — the shape the paper's prototype supports).
type ListComp struct {
	exprBase
	Elt  Expr
	Var  string
	Iter Expr
	Cond Expr // may be nil
	// VarSlot is the loop variable's frame slot, filled by the compiler.
	VarSlot int
}

// Lambda is an anonymous function.
type Lambda struct {
	exprBase
	Params []string
	Body   Expr
}

// ---- Statements ----

// ExprStmt is a bare expression statement.
type ExprStmt struct {
	stmtBase
	X Expr
}

// Assign is `target = value`; Target is a Name, Subscript or TupleLit of
// Names (for unpacking).
type Assign struct {
	stmtBase
	Target Expr
	Value  Expr
}

// AugAssign is `target op= value` (e.g. +=).
type AugAssign struct {
	stmtBase
	Target Expr
	Op     string // the arithmetic op without '='
	Value  Expr
}

// If is an if/elif/else chain; elifs are nested Ifs in Else.
type If struct {
	stmtBase
	Cond Expr
	Then []Stmt
	Else []Stmt // may be nil
	// ThenTaken/ElseTaken count sample-trace visits (§4.2 branch
	// statistics, used for pruning decisions). Updated atomically: one
	// parsed AST may run on several executor threads at once.
	ThenTaken, ElseTaken int64
}

// For is `for var in iter: body` (single target or tuple target).
type For struct {
	stmtBase
	Var  Expr // Name or TupleLit of Names
	Iter Expr
	Body []Stmt
}

// While is a while loop.
type While struct {
	stmtBase
	Cond Expr
	Body []Stmt
}

// Return is a return statement; X may be nil (returns None).
type Return struct {
	stmtBase
	X Expr
}

// Pass is a no-op.
type Pass struct{ stmtBase }

// Break breaks the innermost loop.
type Break struct{ stmtBase }

// Continue continues the innermost loop.
type Continue struct{ stmtBase }

// FuncDef is `def name(params): body`.
type FuncDef struct {
	stmtBase
	Name   string
	Params []string
	Body   []Stmt
}

// Function is the normalized form of a UDF: either a lambda (single
// expression body, wrapped in an implicit Return) or a def with a
// statement body. It is what the rest of the system consumes.
type Function struct {
	Name   string // "" for lambdas
	Params []string
	Body   []Stmt
	Source string
}

// NumLocals reports an upper bound on distinct local variables (params
// included), used to size frames. It walks the body collecting assigned
// names.
func (f *Function) NumLocals() int {
	names := map[string]bool{}
	for _, p := range f.Params {
		names[p] = true
	}
	collectTarget := func(t Expr) {
		switch t := t.(type) {
		case *Name:
			names[t.Ident] = true
		case *TupleLit:
			for _, e := range t.Elts {
				if n, ok := e.(*Name); ok {
					names[n.Ident] = true
				}
			}
		}
	}
	InspectStmts(f.Body, func(n Node) bool {
		switch n := n.(type) {
		case *Assign:
			collectTarget(n.Target)
		case *AugAssign:
			collectTarget(n.Target)
		case *For:
			collectTarget(n.Var)
		case *ListComp:
			names[n.Var] = true
		}
		return true
	})
	return len(names)
}

// Inspect walks the AST rooted at n in depth-first order, calling f for
// each node. If f returns false for a node, its children are skipped.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch n := n.(type) {
	case *BinOp:
		Inspect(n.Left, f)
		Inspect(n.Right, f)
	case *UnaryOp:
		Inspect(n.X, f)
	case *Compare:
		Inspect(n.First, f)
		for _, e := range n.Rest {
			Inspect(e, f)
		}
	case *BoolOp:
		for _, e := range n.Xs {
			Inspect(e, f)
		}
	case *IfExpr:
		Inspect(n.Cond, f)
		Inspect(n.Then, f)
		Inspect(n.Else, f)
	case *Call:
		Inspect(n.Fn, f)
		for _, a := range n.Args {
			Inspect(a, f)
		}
		for _, a := range n.KwArgs {
			Inspect(a, f)
		}
	case *Attr:
		Inspect(n.X, f)
	case *Subscript:
		Inspect(n.X, f)
		Inspect(n.Index, f)
	case *Slice:
		Inspect(n.X, f)
		if n.Lo != nil {
			Inspect(n.Lo, f)
		}
		if n.Hi != nil {
			Inspect(n.Hi, f)
		}
		if n.Step != nil {
			Inspect(n.Step, f)
		}
	case *TupleLit:
		for _, e := range n.Elts {
			Inspect(e, f)
		}
	case *ListLit:
		for _, e := range n.Elts {
			Inspect(e, f)
		}
	case *DictLit:
		for i := range n.Keys {
			Inspect(n.Keys[i], f)
			Inspect(n.Vals[i], f)
		}
	case *ListComp:
		Inspect(n.Iter, f)
		Inspect(n.Elt, f)
		if n.Cond != nil {
			Inspect(n.Cond, f)
		}
	case *Lambda:
		Inspect(n.Body, f)
	case *ExprStmt:
		Inspect(n.X, f)
	case *Assign:
		Inspect(n.Target, f)
		Inspect(n.Value, f)
	case *AugAssign:
		Inspect(n.Target, f)
		Inspect(n.Value, f)
	case *If:
		Inspect(n.Cond, f)
		for _, s := range n.Then {
			Inspect(s, f)
		}
		for _, s := range n.Else {
			Inspect(s, f)
		}
	case *For:
		Inspect(n.Var, f)
		Inspect(n.Iter, f)
		for _, s := range n.Body {
			Inspect(s, f)
		}
	case *While:
		Inspect(n.Cond, f)
		for _, s := range n.Body {
			Inspect(s, f)
		}
	case *Return:
		if n.X != nil {
			Inspect(n.X, f)
		}
	case *FuncDef:
		for _, s := range n.Body {
			Inspect(s, f)
		}
	}
}

// InspectStmts walks each statement in ss.
func InspectStmts(ss []Stmt, f func(Node) bool) {
	for _, s := range ss {
		Inspect(s, f)
	}
}

// Dump renders a compact s-expression form of the AST, for tests and
// debugging.
func Dump(n Node) string {
	var sb strings.Builder
	dump(&sb, n)
	return sb.String()
}

func dump(sb *strings.Builder, n Node) {
	switch n := n.(type) {
	case *NumLit:
		if n.IsFloat {
			sb.WriteString("float")
		} else {
			sb.WriteString("int")
		}
	case *StrLit:
		sb.WriteString("str")
	case *BoolLit:
		sb.WriteString("bool")
	case *NoneLit:
		sb.WriteString("None")
	case *Name:
		sb.WriteString(n.Ident)
	case *BinOp:
		sb.WriteString("(" + n.Op + " ")
		dump(sb, n.Left)
		sb.WriteString(" ")
		dump(sb, n.Right)
		sb.WriteString(")")
	case *UnaryOp:
		sb.WriteString("(" + n.Op + " ")
		dump(sb, n.X)
		sb.WriteString(")")
	case *Compare:
		sb.WriteString("(cmp ")
		dump(sb, n.First)
		for i, op := range n.Ops {
			sb.WriteString(" " + op + " ")
			dump(sb, n.Rest[i])
		}
		sb.WriteString(")")
	case *BoolOp:
		sb.WriteString("(" + n.Op)
		for _, x := range n.Xs {
			sb.WriteString(" ")
			dump(sb, x)
		}
		sb.WriteString(")")
	case *IfExpr:
		sb.WriteString("(ifexpr ")
		dump(sb, n.Cond)
		sb.WriteString(" ")
		dump(sb, n.Then)
		sb.WriteString(" ")
		dump(sb, n.Else)
		sb.WriteString(")")
	case *Call:
		sb.WriteString("(call ")
		dump(sb, n.Fn)
		for _, a := range n.Args {
			sb.WriteString(" ")
			dump(sb, a)
		}
		sb.WriteString(")")
	case *Attr:
		sb.WriteString("(attr ")
		dump(sb, n.X)
		sb.WriteString(" " + n.Name + ")")
	case *Subscript:
		sb.WriteString("(sub ")
		dump(sb, n.X)
		sb.WriteString(" ")
		dump(sb, n.Index)
		sb.WriteString(")")
	case *Slice:
		sb.WriteString("(slice ")
		dump(sb, n.X)
		sb.WriteString(")")
	case *TupleLit:
		sb.WriteString("(tuple")
		for _, e := range n.Elts {
			sb.WriteString(" ")
			dump(sb, e)
		}
		sb.WriteString(")")
	case *ListLit:
		sb.WriteString("(list")
		for _, e := range n.Elts {
			sb.WriteString(" ")
			dump(sb, e)
		}
		sb.WriteString(")")
	case *DictLit:
		sb.WriteString("(dict)")
	case *ListComp:
		sb.WriteString("(listcomp " + n.Var + " ")
		dump(sb, n.Iter)
		sb.WriteString(" ")
		dump(sb, n.Elt)
		sb.WriteString(")")
	case *Lambda:
		sb.WriteString("(lambda (" + strings.Join(n.Params, " ") + ") ")
		dump(sb, n.Body)
		sb.WriteString(")")
	case *ExprStmt:
		dump(sb, n.X)
	case *Assign:
		sb.WriteString("(= ")
		dump(sb, n.Target)
		sb.WriteString(" ")
		dump(sb, n.Value)
		sb.WriteString(")")
	case *AugAssign:
		sb.WriteString("(" + n.Op + "= ")
		dump(sb, n.Target)
		sb.WriteString(" ")
		dump(sb, n.Value)
		sb.WriteString(")")
	case *If:
		sb.WriteString("(if ")
		dump(sb, n.Cond)
		sb.WriteString(" (then")
		for _, s := range n.Then {
			sb.WriteString(" ")
			dump(sb, s)
		}
		sb.WriteString(")")
		if len(n.Else) > 0 {
			sb.WriteString(" (else")
			for _, s := range n.Else {
				sb.WriteString(" ")
				dump(sb, s)
			}
			sb.WriteString(")")
		}
		sb.WriteString(")")
	case *For:
		sb.WriteString("(for ")
		dump(sb, n.Var)
		sb.WriteString(" ")
		dump(sb, n.Iter)
		for _, s := range n.Body {
			sb.WriteString(" ")
			dump(sb, s)
		}
		sb.WriteString(")")
	case *While:
		sb.WriteString("(while ")
		dump(sb, n.Cond)
		for _, s := range n.Body {
			sb.WriteString(" ")
			dump(sb, s)
		}
		sb.WriteString(")")
	case *Return:
		sb.WriteString("(return")
		if n.X != nil {
			sb.WriteString(" ")
			dump(sb, n.X)
		}
		sb.WriteString(")")
	case *Pass:
		sb.WriteString("(pass)")
	case *Break:
		sb.WriteString("(break)")
	case *Continue:
		sb.WriteString("(continue)")
	case *FuncDef:
		sb.WriteString("(def " + n.Name + " (" + strings.Join(n.Params, " ") + ")")
		for _, s := range n.Body {
			sb.WriteString(" ")
			dump(sb, s)
		}
		sb.WriteString(")")
	default:
		sb.WriteString("?")
	}
}
