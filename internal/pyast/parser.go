package pyast

import (
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Tok
	pos  int
}

// ParseUDF parses UDF source code: either a single lambda expression or
// one or more def statements (helper functions followed by the UDF; the
// last def is the entry point, matching how the paper's pipelines pass a
// named function). It returns the entry function in normalized form.
func ParseUDF(src string) (*Function, error) {
	stmts, err := ParseModule(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return nil, errf(Pos{1, 1}, "empty UDF source")
	}
	// A single expression statement that is a lambda.
	if es, ok := stmts[len(stmts)-1].(*ExprStmt); ok && len(stmts) == 1 {
		if lam, ok := es.X.(*Lambda); ok {
			return &Function{
				Params: lam.Params,
				Body:   []Stmt{&Return{stmtBase: stmtBase{P: lam.Pos()}, X: lam.Body}},
				Source: src,
			}, nil
		}
		return nil, errf(es.Pos(), "UDF must be a lambda or def, got a bare expression")
	}
	fd, ok := stmts[len(stmts)-1].(*FuncDef)
	if !ok {
		return nil, errf(stmts[len(stmts)-1].Pos(), "UDF must be a lambda or end with a def")
	}
	if len(stmts) > 1 {
		return nil, errf(stmts[0].Pos(), "UDF source must contain exactly one top-level definition")
	}
	return &Function{Name: fd.Name, Params: fd.Params, Body: fd.Body, Source: src}, nil
}

// ParseModule parses a sequence of top-level statements.
func ParseModule(src string) ([]Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Stmt
	for !p.at(TokEOF) {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

// ParseExprString parses a single expression (used by tests and the
// inference tracer).
func ParseExprString(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExprOrTuple()
	if err != nil {
		return nil, err
	}
	p.accept(TokNewline, "")
	if !p.at(TokEOF) {
		return nil, errf(p.cur().Pos, "trailing tokens after expression: %s", p.cur())
	}
	return e, nil
}

func (p *parser) cur() Tok  { return p.toks[p.pos] }
func (p *parser) next() Tok { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokKind) bool { return p.cur().Kind == kind }

func (p *parser) atText(kind TokKind, text string) bool {
	return p.cur().Kind == kind && p.cur().Text == text
}

func (p *parser) atOp(text string) bool { return p.atText(TokOp, text) }
func (p *parser) atKw(text string) bool { return p.atText(TokKeyword, text) }

// accept consumes the current token if it matches; text=="" matches any
// text of the kind.
func (p *parser) accept(kind TokKind, text string) bool {
	if p.cur().Kind == kind && (text == "" || p.cur().Text == text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(text string) error {
	if !p.accept(TokOp, text) {
		return errf(p.cur().Pos, "expected %q, got %s", text, p.cur())
	}
	return nil
}

func (p *parser) expectKw(text string) error {
	if !p.accept(TokKeyword, text) {
		return errf(p.cur().Pos, "expected %q, got %s", text, p.cur())
	}
	return nil
}

func (p *parser) skipNewlines() {
	for p.accept(TokNewline, "") {
	}
}

// ---- statements ----

func (p *parser) parseStmt() (Stmt, error) {
	p.skipNewlines()
	t := p.cur()
	switch {
	case t.Kind == TokKeyword:
		switch t.Text {
		case "def":
			return p.parseDef()
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		case "return":
			p.next()
			r := &Return{stmtBase: stmtBase{P: t.Pos}}
			if !p.at(TokNewline) && !p.at(TokEOF) && !p.at(TokDedent) {
				x, err := p.parseExprOrTuple()
				if err != nil {
					return nil, err
				}
				r.X = x
			}
			p.accept(TokNewline, "")
			return r, nil
		case "pass":
			p.next()
			p.accept(TokNewline, "")
			return &Pass{stmtBase{P: t.Pos}}, nil
		case "break":
			p.next()
			p.accept(TokNewline, "")
			return &Break{stmtBase{P: t.Pos}}, nil
		case "continue":
			p.next()
			p.accept(TokNewline, "")
			return &Continue{stmtBase{P: t.Pos}}, nil
		}
	}
	return p.parseSimpleStmt()
}

func (p *parser) parseSimpleStmt() (Stmt, error) {
	pos := p.cur().Pos
	lhs, err := p.parseExprOrTuple()
	if err != nil {
		return nil, err
	}
	// Augmented assignment.
	for _, op := range []string{"+", "-", "*", "/", "//", "%", "**"} {
		if p.accept(TokOp, op+"=") {
			rhs, err := p.parseExprOrTuple()
			if err != nil {
				return nil, err
			}
			if err := checkAssignable(lhs); err != nil {
				return nil, err
			}
			p.accept(TokNewline, "")
			return &AugAssign{stmtBase: stmtBase{P: pos}, Target: lhs, Op: op, Value: rhs}, nil
		}
	}
	if p.accept(TokOp, "=") {
		rhs, err := p.parseExprOrTuple()
		if err != nil {
			return nil, err
		}
		// Chained assignment a = b = expr is not in the subset.
		if p.atOp("=") {
			return nil, errf(p.cur().Pos, "chained assignment is not supported")
		}
		if err := checkAssignable(lhs); err != nil {
			return nil, err
		}
		p.accept(TokNewline, "")
		return &Assign{stmtBase: stmtBase{P: pos}, Target: lhs, Value: rhs}, nil
	}
	p.accept(TokNewline, "")
	return &ExprStmt{stmtBase: stmtBase{P: pos}, X: lhs}, nil
}

func checkAssignable(e Expr) error {
	switch e := e.(type) {
	case *Name, *Subscript:
		return nil
	case *TupleLit:
		for _, el := range e.Elts {
			if _, ok := el.(*Name); !ok {
				return errf(el.Pos(), "cannot assign to this expression")
			}
		}
		return nil
	default:
		return errf(e.Pos(), "cannot assign to this expression")
	}
}

func (p *parser) parseDef() (Stmt, error) {
	pos := p.cur().Pos
	if err := p.expectKw("def"); err != nil {
		return nil, err
	}
	if !p.at(TokName) {
		return nil, errf(p.cur().Pos, "expected function name, got %s", p.cur())
	}
	name := p.next().Text
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.atOp(")") {
		if !p.at(TokName) {
			return nil, errf(p.cur().Pos, "expected parameter name, got %s", p.cur())
		}
		params = append(params, p.next().Text)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDef{stmtBase: stmtBase{P: pos}, Name: name, Params: params, Body: body}, nil
}

// parseBlock parses `: NEWLINE INDENT stmts DEDENT` or `: simple_stmt`.
func (p *parser) parseBlock() ([]Stmt, error) {
	if err := p.expectOp(":"); err != nil {
		return nil, err
	}
	if !p.accept(TokNewline, "") {
		// Inline suite: a single simple statement on the same line.
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return []Stmt{s}, nil
	}
	if !p.accept(TokIndent, "") {
		return nil, errf(p.cur().Pos, "expected an indented block, got %s", p.cur())
	}
	var stmts []Stmt
	for {
		p.skipNewlines()
		if p.accept(TokDedent, "") || p.at(TokEOF) {
			break
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if len(stmts) == 0 {
		return nil, errf(p.cur().Pos, "empty block")
	}
	return stmts, nil
}

func (p *parser) parseIf() (Stmt, error) {
	pos := p.cur().Pos
	p.next() // if or elif
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node := &If{stmtBase: stmtBase{P: pos}, Cond: cond, Then: then}
	p.skipNewlines()
	if p.atKw("elif") {
		sub, err := p.parseIf()
		if err != nil {
			return nil, err
		}
		node.Else = []Stmt{sub}
	} else if p.atKw("else") {
		p.next()
		els, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	return node, nil
}

func (p *parser) parseFor() (Stmt, error) {
	pos := p.cur().Pos
	p.next()
	target, err := p.parseForTarget()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("in"); err != nil {
		return nil, err
	}
	iter, err := p.parseExprOrTuple()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &For{stmtBase: stmtBase{P: pos}, Var: target, Iter: iter, Body: body}, nil
}

// parseForTarget parses `name` or `name, name, ...` loop targets.
func (p *parser) parseForTarget() (Expr, error) {
	pos := p.cur().Pos
	if !p.at(TokName) {
		return nil, errf(pos, "expected loop variable, got %s", p.cur())
	}
	first := &Name{exprBase: exprBase{P: pos}, Ident: p.next().Text, Slot: -1}
	if !p.atOp(",") {
		return first, nil
	}
	elts := []Expr{first}
	for p.accept(TokOp, ",") {
		if !p.at(TokName) {
			return nil, errf(p.cur().Pos, "expected loop variable, got %s", p.cur())
		}
		elts = append(elts, &Name{exprBase: exprBase{P: p.cur().Pos}, Ident: p.next().Text, Slot: -1})
	}
	return &TupleLit{exprBase: exprBase{P: pos}, Elts: elts}, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	pos := p.cur().Pos
	p.next()
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &While{stmtBase: stmtBase{P: pos}, Cond: cond, Body: body}, nil
}

// ---- expressions ----

// parseExprOrTuple parses expr (',' expr)* — a possibly parenthesis-free
// tuple, as in `return a, b`.
func (p *parser) parseExprOrTuple() (Expr, error) {
	pos := p.cur().Pos
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atOp(",") {
		return first, nil
	}
	elts := []Expr{first}
	for p.accept(TokOp, ",") {
		if p.at(TokNewline) || p.at(TokEOF) || p.atOp(")") || p.atOp("]") || p.atOp("}") || p.atOp("=") {
			break
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		elts = append(elts, e)
	}
	return &TupleLit{exprBase: exprBase{P: pos}, Elts: elts}, nil
}

// parseExpr parses a single expression (ternary level).
func (p *parser) parseExpr() (Expr, error) {
	if p.atKw("lambda") {
		return p.parseLambda()
	}
	then, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.atKw("if") {
		pos := p.cur().Pos
		p.next()
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("else"); err != nil {
			return nil, err
		}
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &IfExpr{exprBase: exprBase{P: pos}, Cond: cond, Then: then, Else: els}, nil
	}
	return then, nil
}

func (p *parser) parseLambda() (Expr, error) {
	pos := p.cur().Pos
	p.next()
	var params []string
	for p.at(TokName) {
		params = append(params, p.next().Text)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if err := p.expectOp(":"); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Lambda{exprBase: exprBase{P: pos}, Params: params, Body: body}, nil
}

func (p *parser) parseOr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	if !p.atKw("or") {
		return x, nil
	}
	xs := []Expr{x}
	pos := p.cur().Pos
	for p.accept(TokKeyword, "or") {
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		xs = append(xs, y)
	}
	return &BoolOp{exprBase: exprBase{P: pos}, Op: "or", Xs: xs}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	x, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	if !p.atKw("and") {
		return x, nil
	}
	xs := []Expr{x}
	pos := p.cur().Pos
	for p.accept(TokKeyword, "and") {
		y, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		xs = append(xs, y)
	}
	return &BoolOp{exprBase: exprBase{P: pos}, Op: "and", Xs: xs}, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKw("not") {
		pos := p.cur().Pos
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{exprBase: exprBase{P: pos}, Op: "not", X: x}, nil
	}
	return p.parseComparison()
}

var compareOps = map[string]bool{
	"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true,
}

func (p *parser) parseComparison() (Expr, error) {
	first, err := p.parseBitOr()
	if err != nil {
		return nil, err
	}
	var ops []string
	var rest []Expr
	pos := p.cur().Pos
	for {
		var op string
		switch {
		case p.cur().Kind == TokOp && compareOps[p.cur().Text]:
			op = p.next().Text
		case p.atKw("in"):
			p.next()
			op = "in"
		case p.atKw("not"):
			// "not in"
			p.next()
			if err := p.expectKw("in"); err != nil {
				return nil, err
			}
			op = "not in"
		case p.atKw("is"):
			p.next()
			if p.accept(TokKeyword, "not") {
				op = "is not"
			} else {
				op = "is"
			}
		default:
			if len(ops) == 0 {
				return first, nil
			}
			return &Compare{exprBase: exprBase{P: pos}, First: first, Ops: ops, Rest: rest}, nil
		}
		y, err := p.parseBitOr()
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
		rest = append(rest, y)
	}
}

func (p *parser) parseBitOr() (Expr, error) {
	return p.parseBinOpLevel([]string{"|"}, func() (Expr, error) {
		return p.parseBinOpLevel([]string{"^"}, func() (Expr, error) {
			return p.parseBinOpLevel([]string{"&"}, func() (Expr, error) {
				return p.parseBinOpLevel([]string{"<<", ">>"}, p.parseArith)
			})
		})
	})
}

func (p *parser) parseArith() (Expr, error) {
	return p.parseBinOpLevel([]string{"+", "-"}, func() (Expr, error) {
		return p.parseBinOpLevel([]string{"*", "/", "//", "%"}, p.parseUnary)
	})
}

func (p *parser) parseBinOpLevel(ops []string, sub func() (Expr, error)) (Expr, error) {
	x, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range ops {
			if p.atOp(op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return x, nil
		}
		pos := p.cur().Pos
		p.next()
		y, err := sub()
		if err != nil {
			return nil, err
		}
		x = &BinOp{exprBase: exprBase{P: pos}, Op: matched, Left: x, Right: y}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.atOp("-") || p.atOp("+") || p.atOp("~") {
		pos := p.cur().Pos
		op := p.next().Text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{exprBase: exprBase{P: pos}, Op: op, X: x}, nil
	}
	return p.parsePower()
}

func (p *parser) parsePower() (Expr, error) {
	x, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	if p.atOp("**") {
		pos := p.cur().Pos
		p.next()
		// ** is right-associative and binds tighter than unary on the
		// right: 2**-1 is valid.
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinOp{exprBase: exprBase{P: pos}, Op: "**", Left: x, Right: y}, nil
	}
	return x, nil
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atOp("."):
			pos := p.cur().Pos
			p.next()
			if !p.at(TokName) {
				return nil, errf(p.cur().Pos, "expected attribute name, got %s", p.cur())
			}
			x = &Attr{exprBase: exprBase{P: pos}, X: x, Name: p.next().Text}
		case p.atOp("("):
			pos := p.cur().Pos
			p.next()
			call := &Call{exprBase: exprBase{P: pos}, Fn: x}
			for !p.atOp(")") {
				// Keyword argument?
				if p.at(TokName) && p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "=" {
					kw := p.next().Text
					p.next() // '='
					v, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.KwNames = append(call.KwNames, kw)
					call.KwArgs = append(call.KwArgs, v)
				} else {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
				}
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			x = call
		case p.atOp("["):
			pos := p.cur().Pos
			p.next()
			sub, err := p.parseSubscriptInner(x, pos)
			if err != nil {
				return nil, err
			}
			x = sub
		default:
			return x, nil
		}
	}
}

// parseSubscriptInner parses the inside of x[...]: a plain index or a
// slice lo:hi(:step) with any part omitted.
func (p *parser) parseSubscriptInner(x Expr, pos Pos) (Expr, error) {
	var lo, hi, step Expr
	var err error
	if !p.atOp(":") {
		lo, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.atOp("]") {
			p.next()
			return &Subscript{exprBase: exprBase{P: pos}, X: x, Index: lo, RowIdx: -1}, nil
		}
	}
	if err := p.expectOp(":"); err != nil {
		return nil, err
	}
	if !p.atOp("]") && !p.atOp(":") {
		hi, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(TokOp, ":") {
		if !p.atOp("]") {
			step, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectOp("]"); err != nil {
		return nil, err
	}
	return &Slice{exprBase: exprBase{P: pos}, X: x, Lo: lo, Hi: hi, Step: step}, nil
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		text := strings.ReplaceAll(t.Text, "_", "")
		var v int64
		var err error
		if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
			v, err = strconv.ParseInt(text[2:], 16, 64)
		} else {
			v, err = strconv.ParseInt(text, 10, 64)
		}
		if err != nil {
			return nil, errf(t.Pos, "bad integer literal %q", t.Text)
		}
		return &NumLit{exprBase: exprBase{P: t.Pos}, I: v}, nil
	case TokFloat:
		p.next()
		v, err := strconv.ParseFloat(strings.ReplaceAll(t.Text, "_", ""), 64)
		if err != nil {
			return nil, errf(t.Pos, "bad float literal %q", t.Text)
		}
		return &NumLit{exprBase: exprBase{P: t.Pos}, IsFloat: true, F: v}, nil
	case TokString:
		p.next()
		s := t.Str
		// Adjacent string literal concatenation: 'a' 'b' == 'ab'.
		for p.at(TokString) {
			s += p.next().Str
		}
		return &StrLit{exprBase: exprBase{P: t.Pos}, S: s}, nil
	case TokName:
		p.next()
		return &Name{exprBase: exprBase{P: t.Pos}, Ident: t.Text, Slot: -1}, nil
	case TokKeyword:
		switch t.Text {
		case "None":
			p.next()
			return &NoneLit{exprBase{P: t.Pos}}, nil
		case "True":
			p.next()
			return &BoolLit{exprBase: exprBase{P: t.Pos}, B: true}, nil
		case "False":
			p.next()
			return &BoolLit{exprBase: exprBase{P: t.Pos}, B: false}, nil
		case "lambda":
			return p.parseLambda()
		}
	case TokOp:
		switch t.Text {
		case "(":
			p.next()
			if p.accept(TokOp, ")") {
				return &TupleLit{exprBase: exprBase{P: t.Pos}}, nil
			}
			e, err := p.parseExprOrTuple()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "[":
			return p.parseListOrComp()
		case "{":
			return p.parseDict()
		}
	}
	return nil, errf(t.Pos, "unexpected token %s", t)
}

func (p *parser) parseListOrComp() (Expr, error) {
	pos := p.cur().Pos
	p.next() // '['
	if p.accept(TokOp, "]") {
		return &ListLit{exprBase: exprBase{P: pos}}, nil
	}
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.atKw("for") {
		p.next()
		if !p.at(TokName) {
			return nil, errf(p.cur().Pos, "expected comprehension variable, got %s", p.cur())
		}
		v := p.next().Text
		if err := p.expectKw("in"); err != nil {
			return nil, err
		}
		// Python's grammar uses or_test here (no bare ternary), so the
		// comprehension's own `if` is not swallowed as a conditional
		// expression.
		iter, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		var cond Expr
		if p.accept(TokKeyword, "if") {
			cond, err = p.parseOr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectOp("]"); err != nil {
			return nil, err
		}
		return &ListComp{exprBase: exprBase{P: pos}, Elt: first, Var: v, Iter: iter, Cond: cond, VarSlot: -1}, nil
	}
	elts := []Expr{first}
	for p.accept(TokOp, ",") {
		if p.atOp("]") {
			break
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		elts = append(elts, e)
	}
	if err := p.expectOp("]"); err != nil {
		return nil, err
	}
	return &ListLit{exprBase: exprBase{P: pos}, Elts: elts}, nil
}

func (p *parser) parseDict() (Expr, error) {
	pos := p.cur().Pos
	p.next() // '{'
	d := &DictLit{exprBase: exprBase{P: pos}}
	for !p.atOp("}") {
		k, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(":"); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Keys = append(d.Keys, k)
		d.Vals = append(d.Vals, v)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if err := p.expectOp("}"); err != nil {
		return nil, err
	}
	return d, nil
}
