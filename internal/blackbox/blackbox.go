// Package blackbox implements the comparison engines of §6.1 that treat
// Python UDFs as opaque functions: PySpark (RDD and SparkSQL flavors),
// Dask, and plain single-threaded CPython/Pandas-style execution. All
// rows are boxed pyvalue objects and UDFs run in internal/interp — the
// cost structure the paper attributes to these systems:
//
//   - black-box UDFs: no end-to-end optimization, no projection pushdown
//     through UDFs, per-operator row materialization;
//   - PySpark mode: every UDF call crosses a serialization boundary
//     (JVM↔Python worker), modeled by really encoding/decoding rows with
//     a pickle-like binary codec;
//   - PySparkSQL mode: relational operators and string functions run
//     natively ("JVM codegen"), but UDF calls still pay serde+interp;
//   - Dask mode: everything interpreted in one process per worker — no
//     serde, but also nothing native;
//   - UDFs optionally run under the transpiled (Cython/Nuitka) or traced
//     (PyPy) interp modes for the §6.2.1 comparisons.
package blackbox

import (
	"fmt"
	"sync"

	"github.com/gotuplex/tuplex/internal/csvio"
	"github.com/gotuplex/tuplex/internal/interp"
	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
)

// Mode selects the simulated system.
type Mode int

const (
	// ModePython is single-threaded interpreted execution (the CPython
	// baseline of Fig. 3a).
	ModePython Mode = iota
	// ModePySpark is parallel execution with a serde boundary around
	// every UDF call (RDD-style).
	ModePySpark
	// ModePySparkSQL adds native relational/string operators; UDFs still
	// pay serde.
	ModePySparkSQL
	// ModeDask is parallel interpreted execution without serde.
	ModeDask
)

func (m Mode) String() string {
	switch m {
	case ModePython:
		return "python"
	case ModePySpark:
		return "pyspark"
	case ModePySparkSQL:
		return "pysparksql"
	default:
		return "dask"
	}
}

// UDFEngine selects how UDFs execute (the §6.2.1 compiler comparisons).
type UDFEngine int

const (
	// EngineInterp is tree-walking interpretation (CPython).
	EngineInterp UDFEngine = iota
	// EngineTranspiled is one-time closure compilation over boxed values
	// (Cython/Nuitka analog).
	EngineTranspiled
	// EngineTraced is warm-up tracing with guards and deopt (PyPy
	// analog).
	EngineTraced
)

// RowFormat selects how whole-row UDFs receive rows (Fig. 3's dict vs
// tuple pipelines).
type RowFormat int

const (
	// RowsAsDicts passes rows as Python dicts keyed by column name.
	RowsAsDicts RowFormat = iota
	// RowsAsTuples passes rows as Python tuples.
	RowsAsTuples
)

// Config parameterizes an Engine.
type Config struct {
	Mode      Mode
	Executors int
	UDFEngine UDFEngine
	RowFormat RowFormat
	// CExtCost simulates PyPy's cpyext conversion overhead when
	// combined with Pandas/Dask-style extension boundaries (copies per
	// boundary crossing); 0 disables.
	CExtCost int
	Seed     uint64
}

// Engine executes black-box pipelines.
type Engine struct {
	cfg Config
}

// New returns an engine.
func New(cfg Config) *Engine {
	if cfg.Executors <= 0 {
		cfg.Executors = 1
	}
	return &Engine{cfg: cfg}
}

// Frame is a materialized boxed table: the unit every operator consumes
// and produces (the per-operator materialization barrier of black-box
// engines).
type Frame struct {
	Columns []string
	Rows    [][]pyvalue.Value
}

// colIndex finds a column.
func (f *Frame) colIndex(name string) (int, error) {
	for i, c := range f.Columns {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("blackbox: no column %q (have %v)", name, f.Columns)
}

// udf is one prepared black-box UDF.
type udf struct {
	fn      *pyast.Function
	globals map[string]pyvalue.Value
	access  *pyast.ColumnAccess
}

// prepare parses UDF source once (like pickling a function to workers).
func (e *Engine) prepare(src string, globals map[string]pyvalue.Value) (*udf, error) {
	fn, err := pyast.ParseUDF(src)
	if err != nil {
		return nil, err
	}
	return &udf{fn: fn, globals: globals, access: pyast.AnalyzeColumns(fn)}, nil
}

// worker is per-executor state.
type worker struct {
	eng      *Engine
	ip       *interp.Interp
	compiled map[*udf]*interp.Compiled
	traced   map[*udf]*interp.Traced
}

func (e *Engine) newWorker(seed uint64) *worker {
	return &worker{
		eng:      e,
		ip:       interp.New(nil),
		compiled: map[*udf]*interp.Compiled{},
		traced:   map[*udf]*interp.Traced{},
	}
}

// call invokes a UDF under the configured engine, paying the serde
// boundary in PySpark modes.
func (w *worker) call(u *udf, args []pyvalue.Value) (pyvalue.Value, error) {
	if w.eng.cfg.Mode == ModePySpark || w.eng.cfg.Mode == ModePySparkSQL {
		// JVM -> Python worker: encode and decode the arguments.
		for i, a := range args {
			args[i] = roundTrip(a)
		}
	}
	w.ip.Globals = u.globals
	var v pyvalue.Value
	var err error
	switch w.eng.cfg.UDFEngine {
	case EngineTranspiled:
		c := w.compiled[u]
		if c == nil {
			c, err = w.ip.Compile(u.fn)
			if err != nil {
				return nil, err
			}
			w.compiled[u] = c
		}
		v, err = c.Call(w.ip, args)
	case EngineTraced:
		t := w.traced[u]
		if t == nil {
			t = interp.NewTraced(w.ip, u.fn, 0)
			t.CExtBoundaryCost = w.eng.cfg.CExtCost
			w.traced[u] = t
		}
		v, err = t.Call(args)
	default:
		v, err = w.ip.Call(u.fn, args)
	}
	if err != nil {
		return nil, err
	}
	if w.eng.cfg.Mode == ModePySpark || w.eng.cfg.Mode == ModePySparkSQL {
		// Python worker -> JVM: encode and decode the result.
		v = roundTrip(v)
	}
	return v, nil
}

// rowArg builds the UDF argument for a whole row. Single-column rows
// pass the bare value unless the UDF indexes the row by column name.
func (w *worker) rowArg(u *udf, f *Frame, row []pyvalue.Value) pyvalue.Value {
	if len(f.Columns) == 1 && len(row) == 1 {
		byName := u != nil && len(u.access.ByName) > 0 && u.access.ByName[0] == f.Columns[0]
		if !byName {
			return row[0]
		}
	}
	if w.eng.cfg.RowFormat == RowsAsTuples {
		return &pyvalue.Tuple{Items: row}
	}
	// SparkSQL projects a UDF's input columns before shipping rows to the
	// Python worker — one reason it beats RDD-mode PySpark and Dask on
	// wide tables (§6.1.2's "compiled query plan").
	if w.eng.cfg.Mode == ModePySparkSQL && u != nil && !u.access.WholeRow && len(u.access.ByName) > 0 {
		d := pyvalue.NewDict()
		for _, name := range u.access.ByName {
			for i, c := range f.Columns {
				if c == name && i < len(row) {
					d.Set(c, row[i])
					break
				}
			}
		}
		return d
	}
	d := pyvalue.NewDict()
	for i, c := range f.Columns {
		if i < len(row) {
			d.Set(c, row[i])
		}
	}
	return d
}

// parallelMap fans row transformation across executors, materializing a
// full output frame (the per-op barrier).
func (e *Engine) parallelMap(f *Frame, apply func(w *worker, row []pyvalue.Value) ([][]pyvalue.Value, error)) (*Frame, [][]pyvalue.Value, error) {
	n := len(f.Rows)
	workers := e.cfg.Executors
	if workers > n {
		workers = max(1, n)
	}
	chunk := (n + workers - 1) / max(1, workers)
	outs := make([][][]pyvalue.Value, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wi := range workers {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := e.newWorker(uint64(wi))
			lo := wi * chunk
			hi := min(n, lo+chunk)
			var out [][]pyvalue.Value
			for _, row := range f.Rows[lo:hi] {
				produced, err := apply(w, row)
				if err != nil {
					errs[wi] = err
					return
				}
				out = append(out, produced...)
			}
			outs[wi] = out
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	var rows [][]pyvalue.Value
	for _, o := range outs {
		rows = append(rows, o...)
	}
	return f, rows, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CSV loads a CSV frame (general per-cell sniffing, like schema
// inference in these systems).
func (e *Engine) CSV(data []byte, header bool, delim byte, columns []string, nullValues []string) (*Frame, error) {
	if delim == 0 {
		delim = ','
	}
	if nullValues == nil {
		nullValues = csvio.DefaultNullValues
	}
	records := csvio.SplitRecords(data)
	if len(records) == 0 {
		return nil, fmt.Errorf("blackbox: empty CSV")
	}
	names := columns
	if header {
		hdr := csvio.SplitCells(records[0], delim, nil)
		records = records[1:]
		if names == nil {
			names = hdr
		}
	}
	f := &Frame{Columns: names, Rows: make([][]pyvalue.Value, 0, len(records))}
	for _, rec := range records {
		f.Rows = append(f.Rows, csvio.GeneralParse(rec, delim, nullValues))
	}
	if names == nil && len(f.Rows) > 0 {
		names = make([]string, len(f.Rows[0]))
		for i := range names {
			names[i] = fmt.Sprintf("_%d", i)
		}
		f.Columns = names
	}
	return f, nil
}

// Text loads newline-delimited text as a single-column frame.
func (e *Engine) Text(data []byte, column string) *Frame {
	if column == "" {
		column = "value"
	}
	f := &Frame{Columns: []string{column}}
	start := 0
	for i := 0; i <= len(data); i++ {
		if i == len(data) || data[i] == '\n' {
			if i > start {
				end := i
				if data[end-1] == '\r' {
					end--
				}
				f.Rows = append(f.Rows, []pyvalue.Value{pyvalue.Str(string(data[start:end]))})
			}
			start = i + 1
		}
	}
	return f
}
