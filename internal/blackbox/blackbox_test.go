package blackbox

import (
	"fmt"
	"math"
	"testing"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/handopt"
	"github.com/gotuplex/tuplex/internal/pipelines"
	"github.com/gotuplex/tuplex/internal/pyvalue"
)

func TestSerdeRoundTrip(t *testing.T) {
	d := pyvalue.NewDict()
	d.Set("k", &pyvalue.List{Items: []pyvalue.Value{pyvalue.Int(-7), pyvalue.Str("x")}})
	vals := []pyvalue.Value{
		pyvalue.None{}, pyvalue.Bool(true), pyvalue.Int(42), pyvalue.Int(-1),
		pyvalue.Float(1.609), pyvalue.Str("hello, world"),
		&pyvalue.Tuple{Items: []pyvalue.Value{pyvalue.Int(1), pyvalue.None{}}},
		d,
	}
	for _, v := range vals {
		got := roundTrip(v)
		if !pyvalue.Equal(v, got) {
			t.Errorf("roundTrip(%s) = %s", pyvalue.Repr(v), pyvalue.Repr(got))
		}
	}
}

// TestZillowAllModesMatchNative: every black-box configuration must
// produce the same rows the hand-optimized implementation produces (the
// generated data is clean enough that no rows raise).
func TestZillowAllModesMatchNative(t *testing.T) {
	raw := data.Zillow(data.ZillowConfig{Rows: 800, Seed: 5, DirtyFraction: 0})
	want := handopt.Zillow(raw)
	if len(want) == 0 {
		t.Fatal("empty oracle output")
	}
	cfgs := map[string]Config{
		"python-dict":   {Mode: ModePython, RowFormat: RowsAsDicts},
		"python-tuple":  {Mode: ModePython, RowFormat: RowsAsTuples},
		"pyspark-dict":  {Mode: ModePySpark, Executors: 4, RowFormat: RowsAsDicts},
		"pyspark-tuple": {Mode: ModePySpark, Executors: 4, RowFormat: RowsAsTuples},
		"dask":          {Mode: ModeDask, Executors: 4, RowFormat: RowsAsDicts},
		"cython-analog": {Mode: ModePython, UDFEngine: EngineTranspiled},
		"pypy-analog":   {Mode: ModePython, UDFEngine: EngineTraced},
	}
	for name, cfg := range cfgs {
		e := New(cfg)
		f, err := e.RunZillow(raw)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(f.Rows) != len(want) {
			t.Fatalf("%s: %d rows, want %d", name, len(f.Rows), len(want))
		}
		for i, w := range want {
			got := f.Rows[i]
			if string(got[0].(pyvalue.Str)) != w.URL ||
				string(got[1].(pyvalue.Str)) != w.Zipcode ||
				int64(got[10].(pyvalue.Int)) != w.Price {
				t.Fatalf("%s: row %d = %v, want %+v", name, i, got, w)
			}
		}
	}
}

func TestQ6MatchesNative(t *testing.T) {
	raw := data.TPCHLineitem(data.TPCHConfig{Rows: 5000, Seed: 13})
	want := handopt.Q6(raw, data.Q6DateLo, data.Q6DateHi)
	for _, cfg := range []Config{
		{Mode: ModePython},
		{Mode: ModeDask, Executors: 4},
	} {
		e := New(cfg)
		got, err := e.RunQ6(raw)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("%v: %.4f want %.4f", cfg.Mode, got, want)
		}
	}
}

func Test311MatchesNative(t *testing.T) {
	raw := data.ThreeOneOne(data.ThreeOneOneConfig{Rows: 2000, Seed: 9})
	want := handopt.ThreeOneOne(raw)
	e := New(Config{Mode: ModePython})
	f, err := e.Run311(raw)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, r := range f.Rows {
		got[string(r[0].(pyvalue.Str))] = true
	}
	if len(got) != len(want) {
		t.Fatalf("%d unique zips, want %d", len(got), len(want))
	}
}

func TestWeblogsVariantsRun(t *testing.T) {
	logs, bad := data.Weblogs(data.WeblogConfig{Rows: 800, Seed: 3})
	want := handopt.Weblogs(logs, bad, 1)
	for _, variant := range []pipelines.WeblogVariant{
		pipelines.WeblogStrip, pipelines.WeblogSplit, pipelines.WeblogRegex,
	} {
		for _, mode := range []Mode{ModePython, ModePySparkSQL} {
			e := New(Config{Mode: mode, Executors: 2})
			f, err := e.RunWeblogs(logs, bad, variant)
			if err != nil {
				t.Fatalf("%v/%v: %v", mode, variant, err)
			}
			if len(f.Rows) != len(want) {
				t.Fatalf("%v/%v: %d rows, want %d", mode, variant, len(f.Rows), len(want))
			}
		}
	}
}

func TestFlightsRuns(t *testing.T) {
	perf := data.Flights(data.FlightsConfig{Rows: 600, Seed: 2})
	e := New(Config{Mode: ModeDask, Executors: 2})
	f, err := e.RunFlights(perf, data.Carriers(), data.Airports())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) == 0 || len(f.Columns) != len(pipelines.FlightsOutputColumns) {
		t.Fatalf("rows=%d cols=%v", len(f.Rows), f.Columns)
	}
}

// TestFlightsMatchesTuplex cross-checks the two engines on the flights
// pipeline (black-box boxed execution vs dual-mode compiled execution).
func TestFlightsMatchesTuplexRowCount(t *testing.T) {
	perf := data.Flights(data.FlightsConfig{Rows: 800, Seed: 4})
	e := New(Config{Mode: ModePython})
	bf, err := e.RunFlights(perf, data.Carriers(), data.Airports())
	if err != nil {
		t.Fatal(err)
	}
	tctx := newTuplexFlights(t, perf)
	if len(bf.Rows) != len(tctx) {
		t.Fatalf("blackbox %d rows, tuplex %d rows", len(bf.Rows), len(tctx))
	}
	for i := range tctx {
		if fmt.Sprint(unboxRow(bf.Rows[i])) != fmt.Sprint(tctx[i]) {
			t.Fatalf("row %d: blackbox %v vs tuplex %v", i, unboxRow(bf.Rows[i]), tctx[i])
		}
	}
}

func unboxRow(r []pyvalue.Value) []string {
	out := make([]string, len(r))
	for i, v := range r {
		out[i] = pyvalue.Repr(v)
	}
	return out
}

func reprAny(v any) string {
	switch v := v.(type) {
	case nil:
		return "None"
	case bool:
		if v {
			return "True"
		}
		return "False"
	case float64:
		return pyvalue.FloatRepr(v)
	case string:
		return pyvalue.Repr(pyvalue.Str(v))
	default:
		return fmt.Sprint(v)
	}
}

func newTuplexFlights(t *testing.T, perf []byte) [][]string {
	t.Helper()
	tpx := pipelines.FlightsSources(tuplex.NewContext(), perf, data.Carriers(), data.Airports())
	res, err := pipelines.Flights(tpx).Collect()
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		row := make([]string, len(r))
		for j, v := range r {
			row[j] = reprAny(v)
		}
		out[i] = row
	}
	return out
}
