package blackbox

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"github.com/gotuplex/tuplex/internal/csvio"
	"github.com/gotuplex/tuplex/internal/pyvalue"
)

// MapUDF replaces each row with the UDF result (dicts become columns).
func (e *Engine) MapUDF(f *Frame, src string, globals map[string]pyvalue.Value) (*Frame, error) {
	u, err := e.prepare(src, globals)
	if err != nil {
		return nil, err
	}
	var outCols []string
	var mu chan struct{} // first-result column discovery
	mu = make(chan struct{}, 1)
	mu <- struct{}{}
	_, rows, err := e.parallelMap(f, func(w *worker, row []pyvalue.Value) ([][]pyvalue.Value, error) {
		arg := w.rowArg(u, f, row)
		v, err := w.call(u, []pyvalue.Value{arg})
		if err != nil {
			return nil, err
		}
		switch v := v.(type) {
		case *pyvalue.Dict:
			<-mu
			if outCols == nil {
				outCols = append([]string(nil), v.Keys()...)
			}
			cols := outCols
			mu <- struct{}{}
			out := make([]pyvalue.Value, len(cols))
			for i, k := range cols {
				val, ok := v.Get(k)
				if !ok {
					return nil, fmt.Errorf("blackbox: map result missing key %q", k)
				}
				out[i] = val
			}
			return [][]pyvalue.Value{out}, nil
		case *pyvalue.Tuple:
			return [][]pyvalue.Value{v.Items}, nil
		default:
			return [][]pyvalue.Value{{v}}, nil
		}
	})
	if err != nil {
		return nil, err
	}
	if outCols == nil {
		outCols = []string{"value"}
		if len(rows) > 0 {
			outCols = make([]string, len(rows[0]))
			for i := range outCols {
				outCols[i] = fmt.Sprintf("_%d", i)
			}
			if len(outCols) == 1 {
				outCols[0] = "value"
			}
		}
	}
	return &Frame{Columns: outCols, Rows: rows}, nil
}

// FilterUDF keeps truthy rows.
func (e *Engine) FilterUDF(f *Frame, src string, globals map[string]pyvalue.Value) (*Frame, error) {
	u, err := e.prepare(src, globals)
	if err != nil {
		return nil, err
	}
	_, rows, err := e.parallelMap(f, func(w *worker, row []pyvalue.Value) ([][]pyvalue.Value, error) {
		v, err := w.call(u, []pyvalue.Value{w.rowArg(u, f, row)})
		if err != nil {
			return nil, err
		}
		if pyvalue.Truth(v) {
			return [][]pyvalue.Value{row}, nil
		}
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	return &Frame{Columns: f.Columns, Rows: rows}, nil
}

// WithColumnUDF appends/replaces a column from a whole-row UDF.
func (e *Engine) WithColumnUDF(f *Frame, col, src string, globals map[string]pyvalue.Value) (*Frame, error) {
	u, err := e.prepare(src, globals)
	if err != nil {
		return nil, err
	}
	replace := -1
	for i, c := range f.Columns {
		if c == col {
			replace = i
		}
	}
	_, rows, err := e.parallelMap(f, func(w *worker, row []pyvalue.Value) ([][]pyvalue.Value, error) {
		v, err := w.call(u, []pyvalue.Value{w.rowArg(u, f, row)})
		if err != nil {
			return nil, err
		}
		if replace >= 0 {
			out := append([]pyvalue.Value{}, row...)
			out[replace] = v
			return [][]pyvalue.Value{out}, nil
		}
		out := append(append([]pyvalue.Value{}, row...), v)
		return [][]pyvalue.Value{out}, nil
	})
	if err != nil {
		return nil, err
	}
	cols := f.Columns
	if replace < 0 {
		cols = append(append([]string{}, f.Columns...), col)
	}
	return &Frame{Columns: cols, Rows: rows}, nil
}

// MapColumnUDF rewrites one column with a scalar UDF.
func (e *Engine) MapColumnUDF(f *Frame, col, src string, globals map[string]pyvalue.Value) (*Frame, error) {
	u, err := e.prepare(src, globals)
	if err != nil {
		return nil, err
	}
	idx, err := f.colIndex(col)
	if err != nil {
		return nil, err
	}
	_, rows, err := e.parallelMap(f, func(w *worker, row []pyvalue.Value) ([][]pyvalue.Value, error) {
		v, err := w.call(u, []pyvalue.Value{row[idx]})
		if err != nil {
			return nil, err
		}
		out := append([]pyvalue.Value{}, row...)
		out[idx] = v
		return [][]pyvalue.Value{out}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Frame{Columns: f.Columns, Rows: rows}, nil
}

// Rename renames a column.
func (e *Engine) Rename(f *Frame, old, new string) (*Frame, error) {
	idx, err := f.colIndex(old)
	if err != nil {
		return nil, err
	}
	cols := append([]string{}, f.Columns...)
	cols[idx] = new
	return &Frame{Columns: cols, Rows: f.Rows}, nil
}

// Select projects columns.
func (e *Engine) Select(f *Frame, cols ...string) (*Frame, error) {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		idx, err := f.colIndex(c)
		if err != nil {
			return nil, err
		}
		idxs[i] = idx
	}
	out := &Frame{Columns: cols, Rows: make([][]pyvalue.Value, len(f.Rows))}
	for r, row := range f.Rows {
		nr := make([]pyvalue.Value, len(idxs))
		for i, idx := range idxs {
			nr[i] = row[idx]
		}
		out.Rows[r] = nr
	}
	return out, nil
}

// Join hash-joins with build (inner or left), prefixing build columns.
func (e *Engine) Join(f, build *Frame, leftKey, rightKey string, left bool, rightPrefix string) (*Frame, error) {
	li, err := f.colIndex(leftKey)
	if err != nil {
		return nil, err
	}
	ri, err := build.colIndex(rightKey)
	if err != nil {
		return nil, err
	}
	table := map[string][][]pyvalue.Value{}
	for _, row := range build.Rows {
		k := boxKey(row[ri])
		if k == "" {
			continue
		}
		proj := make([]pyvalue.Value, 0, len(row)-1)
		for i, v := range row {
			if i != ri {
				proj = append(proj, v)
			}
		}
		table[k] = append(table[k], proj)
	}
	pad := len(build.Columns) - 1
	_, rows, err := e.parallelMap(f, func(w *worker, row []pyvalue.Value) ([][]pyvalue.Value, error) {
		matches := table[boxKey(row[li])]
		if len(matches) == 0 {
			if !left {
				return nil, nil
			}
			out := append([]pyvalue.Value{}, row...)
			for range pad {
				out = append(out, pyvalue.None{})
			}
			return [][]pyvalue.Value{out}, nil
		}
		var outs [][]pyvalue.Value
		for _, m := range matches {
			out := append(append([]pyvalue.Value{}, row...), m...)
			outs = append(outs, out)
		}
		return outs, nil
	})
	if err != nil {
		return nil, err
	}
	cols := append([]string{}, f.Columns...)
	for i, c := range build.Columns {
		if i != ri {
			cols = append(cols, rightPrefix+c)
		}
	}
	return &Frame{Columns: cols, Rows: rows}, nil
}

// Unique deduplicates rows.
func (e *Engine) Unique(f *Frame) *Frame {
	seen := map[string]bool{}
	out := &Frame{Columns: f.Columns}
	for _, row := range f.Rows {
		k := rowKey(row)
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Aggregate folds rows (acc, row) -> acc per worker, merging partials
// with comb.
func (e *Engine) Aggregate(f *Frame, aggSrc, combSrc string, initial pyvalue.Value) (pyvalue.Value, error) {
	u, err := e.prepare(aggSrc, nil)
	if err != nil {
		return nil, err
	}
	comb, err := e.prepare(combSrc, nil)
	if err != nil {
		return nil, err
	}
	n := len(f.Rows)
	workers := max(1, min(e.cfg.Executors, n))
	chunk := (n + workers - 1) / workers
	partials := make([]pyvalue.Value, workers)
	errs := make([]error, workers)
	var wg chan struct{}
	wg = make(chan struct{}, workers)
	for wi := range workers {
		go func(wi int) {
			defer func() { wg <- struct{}{} }()
			w := e.newWorker(uint64(wi))
			acc := initial
			lo := wi * chunk
			hi := min(n, lo+chunk)
			for _, row := range f.Rows[lo:hi] {
				v, err := w.call(u, []pyvalue.Value{acc, w.rowArg(u, f, row)})
				if err != nil {
					errs[wi] = err
					return
				}
				acc = v
			}
			partials[wi] = acc
		}(wi)
	}
	for range workers {
		<-wg
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	w := e.newWorker(0xc0b)
	acc := partials[0]
	for _, p := range partials[1:] {
		v, err := w.call(comb, []pyvalue.Value{acc, p})
		if err != nil {
			return nil, err
		}
		acc = v
	}
	return acc, nil
}

// ToCSV renders the frame.
func (e *Engine) ToCSV(f *Frame) []byte {
	w := csvio.NewWriter(',')
	w.WriteHeader(f.Columns)
	for _, row := range f.Rows {
		w.WriteValues(row)
	}
	return w.Bytes()
}

// ---- Native ("JVM code-generated") operators for PySparkSQL mode ----

// NativeSplitColumns splits a single-column text frame on spaces into n
// named columns (SparkSQL's split + getItem, executed natively).
func (e *Engine) NativeSplitColumns(f *Frame, names []string) (*Frame, error) {
	srcIdx := 0
	out := &Frame{Columns: names, Rows: make([][]pyvalue.Value, 0, len(f.Rows))}
	for _, row := range f.Rows {
		s, ok := row[srcIdx].(pyvalue.Str)
		if !ok {
			continue
		}
		parts := strings.Split(string(s), " ")
		nr := make([]pyvalue.Value, len(names))
		for i := range names {
			if i < len(parts) {
				nr[i] = pyvalue.Str(parts[i])
			} else {
				// SparkSQL getItem out of range yields NULL silently.
				nr[i] = pyvalue.None{}
			}
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// NativeRegexExtract adds a column extracted by a per-column regex using
// Go's stdlib RE2 (the java.util.regex analog: correct, but slower than
// the compiled engine Tuplex uses). A non-match yields ” like SparkSQL's
// regexp_extract — the §7 silent-semantics difference.
func (e *Engine) NativeRegexExtract(f *Frame, srcCol, dstCol, pattern string, group int) (*Frame, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	srcIdx, err := f.colIndex(srcCol)
	if err != nil {
		return nil, err
	}
	cols := append(append([]string{}, f.Columns...), dstCol)
	out := &Frame{Columns: cols, Rows: make([][]pyvalue.Value, len(f.Rows))}
	for r, row := range f.Rows {
		val := ""
		if s, ok := row[srcIdx].(pyvalue.Str); ok {
			if m := re.FindStringSubmatch(string(s)); m != nil && group < len(m) {
				val = m[group]
			}
		}
		out.Rows[r] = append(append([]pyvalue.Value{}, row...), pyvalue.Str(val))
	}
	return out, nil
}

// NativeCastInt converts a string column to ints natively (SparkSQL
// cast); failures become NULL.
func (e *Engine) NativeCastInt(f *Frame, col string) (*Frame, error) {
	idx, err := f.colIndex(col)
	if err != nil {
		return nil, err
	}
	out := &Frame{Columns: f.Columns, Rows: make([][]pyvalue.Value, len(f.Rows))}
	for r, row := range f.Rows {
		nr := append([]pyvalue.Value{}, row...)
		switch v := row[idx].(type) {
		case pyvalue.Str:
			if n, err := strconv.ParseInt(strings.TrimSpace(string(v)), 10, 64); err == nil {
				nr[idx] = pyvalue.Int(n)
			} else {
				nr[idx] = pyvalue.None{}
			}
		case pyvalue.Int:
		default:
			nr[idx] = pyvalue.None{}
		}
		out.Rows[r] = nr
	}
	return out, nil
}

func boxKey(v pyvalue.Value) string {
	switch v := v.(type) {
	case pyvalue.Str:
		return "s:" + string(v)
	case pyvalue.Int:
		return "i:" + strconv.FormatInt(int64(v), 10)
	case pyvalue.Float:
		if f := float64(v); f == float64(int64(f)) {
			return "i:" + strconv.FormatInt(int64(f), 10)
		}
		return "f:" + strconv.FormatFloat(float64(v), 'g', -1, 64)
	case pyvalue.Bool:
		if v {
			return "i:1"
		}
		return "i:0"
	default:
		return ""
	}
}

func rowKey(row []pyvalue.Value) string {
	var sb strings.Builder
	for i, v := range row {
		if i > 0 {
			sb.WriteByte(0)
		}
		sb.WriteString(pyvalue.Repr(v))
	}
	return sb.String()
}
