package blackbox

import (
	"encoding/binary"
	"math"

	"github.com/gotuplex/tuplex/internal/pyvalue"
)

// serde implements a compact pickle-like binary codec for boxed values.
// PySpark modes round-trip every UDF argument and result through it,
// doing the real work (byte encoding, allocation, decoding) that the
// JVM↔Python-worker boundary costs in the systems the paper compares
// against (§2: "passing data between the Python interpreter and the
// JVM").

const (
	serNone byte = iota
	serFalse
	serTrue
	serInt
	serFloat
	serStr
	serList
	serTuple
	serDict
)

// encode appends v's encoding to buf.
func encode(buf []byte, v pyvalue.Value) []byte {
	switch v := v.(type) {
	case pyvalue.None:
		return append(buf, serNone)
	case pyvalue.Bool:
		if v {
			return append(buf, serTrue)
		}
		return append(buf, serFalse)
	case pyvalue.Int:
		buf = append(buf, serInt)
		return binary.AppendVarint(buf, int64(v))
	case pyvalue.Float:
		buf = append(buf, serFloat)
		return binary.BigEndian.AppendUint64(buf, math.Float64bits(float64(v)))
	case pyvalue.Str:
		buf = append(buf, serStr)
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		return append(buf, v...)
	case *pyvalue.List:
		buf = append(buf, serList)
		buf = binary.AppendUvarint(buf, uint64(len(v.Items)))
		for _, it := range v.Items {
			buf = encode(buf, it)
		}
		return buf
	case *pyvalue.Tuple:
		buf = append(buf, serTuple)
		buf = binary.AppendUvarint(buf, uint64(len(v.Items)))
		for _, it := range v.Items {
			buf = encode(buf, it)
		}
		return buf
	case *pyvalue.Dict:
		buf = append(buf, serDict)
		keys := v.Keys()
		buf = binary.AppendUvarint(buf, uint64(len(keys)))
		for _, k := range keys {
			buf = binary.AppendUvarint(buf, uint64(len(k)))
			buf = append(buf, k...)
			val, _ := v.Get(k)
			buf = encode(buf, val)
		}
		return buf
	default:
		// Opaque values (match objects) degrade to their repr.
		s := pyvalue.Repr(v)
		buf = append(buf, serStr)
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...)
	}
}

// decode reads one value, returning it and the remaining bytes.
func decode(buf []byte) (pyvalue.Value, []byte) {
	tag := buf[0]
	buf = buf[1:]
	switch tag {
	case serNone:
		return pyvalue.None{}, buf
	case serFalse:
		return pyvalue.Bool(false), buf
	case serTrue:
		return pyvalue.Bool(true), buf
	case serInt:
		v, n := binary.Varint(buf)
		return pyvalue.Int(v), buf[n:]
	case serFloat:
		bits := binary.BigEndian.Uint64(buf)
		return pyvalue.Float(math.Float64frombits(bits)), buf[8:]
	case serStr:
		l, n := binary.Uvarint(buf)
		buf = buf[n:]
		return pyvalue.Str(string(buf[:l])), buf[l:]
	case serList, serTuple:
		l, n := binary.Uvarint(buf)
		buf = buf[n:]
		items := make([]pyvalue.Value, l)
		for i := range items {
			items[i], buf = decode(buf)
		}
		if tag == serList {
			return &pyvalue.List{Items: items}, buf
		}
		return &pyvalue.Tuple{Items: items}, buf
	case serDict:
		l, n := binary.Uvarint(buf)
		buf = buf[n:]
		d := pyvalue.NewDict()
		for range l {
			kl, kn := binary.Uvarint(buf)
			buf = buf[kn:]
			k := string(buf[:kl])
			buf = buf[kl:]
			var v pyvalue.Value
			v, buf = decode(buf)
			d.Set(k, v)
		}
		return d, buf
	default:
		return pyvalue.None{}, buf
	}
}

// roundTrip encodes and decodes v — one boundary crossing.
func roundTrip(v pyvalue.Value) pyvalue.Value {
	buf := encode(make([]byte, 0, 64), v)
	out, _ := decode(buf)
	return out
}
