package blackbox

import (
	"fmt"

	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/pipelines"
	"github.com/gotuplex/tuplex/internal/pyvalue"
)

// This file runs the paper's evaluation pipelines on the black-box
// engine, reusing the exact UDF sources from internal/pipelines. It is
// what "the same pipeline in PySpark/Dask" means in the §6.1 figures.

// RunZillow executes the Zillow pipeline; returns the output frame.
func (e *Engine) RunZillow(raw []byte) (*Frame, error) {
	f, err := e.CSV(raw, true, ',', nil, nil)
	if err != nil {
		return nil, err
	}
	steps := []func(*Frame) (*Frame, error){
		func(f *Frame) (*Frame, error) { return e.WithColumnUDF(f, "bedrooms", pipelines.ZillowExtractBd, nil) },
		func(f *Frame) (*Frame, error) { return e.FilterUDF(f, "lambda x: x['bedrooms'] < 10", nil) },
		func(f *Frame) (*Frame, error) { return e.WithColumnUDF(f, "type", pipelines.ZillowExtractType, nil) },
		func(f *Frame) (*Frame, error) { return e.FilterUDF(f, "lambda x: x['type'] == 'house'", nil) },
		func(f *Frame) (*Frame, error) {
			return e.WithColumnUDF(f, "zipcode", "lambda x: '%05d' % int(x['postal_code'])", nil)
		},
		func(f *Frame) (*Frame, error) {
			return e.MapColumnUDF(f, "city", "lambda x: x[0].upper() + x[1:].lower()", nil)
		},
		func(f *Frame) (*Frame, error) { return e.WithColumnUDF(f, "bathrooms", pipelines.ZillowExtractBa, nil) },
		func(f *Frame) (*Frame, error) { return e.WithColumnUDF(f, "sqft", pipelines.ZillowExtractSqft, nil) },
		func(f *Frame) (*Frame, error) { return e.WithColumnUDF(f, "offer", pipelines.ZillowExtractOffer, nil) },
		func(f *Frame) (*Frame, error) { return e.WithColumnUDF(f, "price", pipelines.ZillowExtractPrice, nil) },
		func(f *Frame) (*Frame, error) { return e.FilterUDF(f, "lambda x: 100000 < x['price'] < 2e7", nil) },
		func(f *Frame) (*Frame, error) { return e.Select(f, pipelines.ZillowOutputColumns...) },
	}
	if e.cfg.RowFormat == RowsAsTuples {
		// The tuple pipelines index columns by position (the Fig. 3
		// "tuple" variant's painstaking numerical indexing).
		steps = zillowTupleSteps(e)
	}
	for _, step := range steps {
		f, err = step(f)
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// zillowTupleSteps is the tuple-indexed variant. Input columns:
// 0 title, 1 address, 2 city, 3 state, 4 postal_code, 5 price,
// 6 facts and features, 7 provider, 8 url, 9 sales_date; appended:
// 10 bedrooms, 11 type, 12 zipcode, 13 bathrooms, 14 sqft, 15 offer,
// 16 price2.
func zillowTupleSteps(e *Engine) []func(*Frame) (*Frame, error) {
	extract := func(marker string, plus int, find string) string {
		_ = find
		return `def extract(x):
    val = x[6]
    max_idx = val.find('` + marker + `')
    if max_idx < 0:
        max_idx = len(val)
    s = val[:max_idx]
    split_idx = s.rfind(',')
    if split_idx < 0:
        split_idx = 0
    else:
        split_idx += 2
    r = s[split_idx:]
    return int(r)
`
	}
	return []func(*Frame) (*Frame, error){
		func(f *Frame) (*Frame, error) {
			return e.WithColumnUDF(f, "bedrooms", extract(" bd", 2, ""), nil)
		},
		func(f *Frame) (*Frame, error) { return e.FilterUDF(f, "lambda x: x[10] < 10", nil) },
		func(f *Frame) (*Frame, error) {
			return e.WithColumnUDF(f, "type", `def extractType(x):
    t = x[0].lower()
    type = 'unknown'
    if 'condo' in t or 'apartment' in t:
        type = 'condo'
    if 'house' in t:
        type = 'house'
    return type
`, nil)
		},
		func(f *Frame) (*Frame, error) { return e.FilterUDF(f, "lambda x: x[11] == 'house'", nil) },
		func(f *Frame) (*Frame, error) {
			return e.WithColumnUDF(f, "zipcode", "lambda x: '%05d' % int(x[4])", nil)
		},
		func(f *Frame) (*Frame, error) {
			return e.MapColumnUDF(f, "city", "lambda x: x[0].upper() + x[1:].lower()", nil)
		},
		func(f *Frame) (*Frame, error) {
			return e.WithColumnUDF(f, "bathrooms", extract(" ba", 2, ""), nil)
		},
		func(f *Frame) (*Frame, error) {
			return e.WithColumnUDF(f, "sqft", `def extractSqft(x):
    val = x[6]
    max_idx = val.find(' sqft')
    if max_idx < 0:
        max_idx = len(val)
    s = val[:max_idx]
    split_idx = s.rfind('ba ,')
    if split_idx < 0:
        split_idx = 0
    else:
        split_idx += 5
    r = s[split_idx:]
    r = r.replace(',', '')
    return int(r)
`, nil)
		},
		func(f *Frame) (*Frame, error) {
			return e.WithColumnUDF(f, "offer", `def extractOffer(x):
    offer = x[0].lower()
    if 'sale' in offer:
        return 'sale'
    if 'rent' in offer:
        return 'rent'
    if 'sold' in offer:
        return 'sold'
    if 'foreclose' in offer.lower():
        return 'foreclosed'
    return offer
`, nil)
		},
		func(f *Frame) (*Frame, error) {
			return e.WithColumnUDF(f, "price2", `def extractPrice(x):
    price = x[5]
    p = 0
    if x[15] == 'sold':
        val = x[6]
        s = val[val.find('Price/sqft:') + len('Price/sqft:') + 1:]
        r = s[s.find('$')+1:s.find(', ') - 1]
        price_per_sqft = int(r)
        p = price_per_sqft * x[14]
    elif x[15] == 'rent':
        max_idx = price.rfind('/')
        p = int(price[1:max_idx].replace(',', ''))
    else:
        p = int(price[1:].replace(',', ''))
    return p
`, nil)
		},
		func(f *Frame) (*Frame, error) { return e.FilterUDF(f, "lambda x: 100000 < x[16] < 2e7", nil) },
		func(f *Frame) (*Frame, error) {
			f2, err := e.Select(f, "url", "zipcode", "address", "city", "state",
				"bedrooms", "bathrooms", "sqft", "offer", "type", "price2")
			if err != nil {
				return nil, err
			}
			f2.Columns[len(f2.Columns)-1] = "price"
			return f2, nil
		},
	}
}

// RunFlights executes the flights pipeline on the black-box engine.
func (e *Engine) RunFlights(perf, carriers, airports []byte) (*Frame, error) {
	f, err := e.CSV(perf, true, ',', nil, nil)
	if err != nil {
		return nil, err
	}
	for _, c := range data.FlightPerfColumns() {
		if f, err = e.Rename(f, c, pipelines.RenameBTSColumn(c)); err != nil {
			return nil, err
		}
	}
	type step func(*Frame) (*Frame, error)
	apply := func(steps ...step) error {
		for _, s := range steps {
			if f, err = s(f); err != nil {
				return err
			}
		}
		return nil
	}
	wc := func(col, src string) step {
		return func(f *Frame) (*Frame, error) { return e.WithColumnUDF(f, col, src, nil) }
	}
	mc := func(col, src string) step {
		return func(f *Frame) (*Frame, error) { return e.MapColumnUDF(f, col, src, nil) }
	}
	if err := apply(
		wc("OriginCity", "lambda x: x['OriginCityName'][:x['OriginCityName'].rfind(',')].strip()"),
		wc("OriginState", "lambda x: x['OriginCityName'][x['OriginCityName'].rfind(',')+1:].strip()"),
		wc("DestCity", "lambda x: x['DestCityName'][:x['DestCityName'].rfind(',')].strip()"),
		wc("DestState", "lambda x: x['DestCityName'][x['DestCityName'].rfind(',')+1:].strip()"),
		mc("CrsArrTime", "lambda x: '{:02}:{:02}'.format(int(x / 100), x % 100) if x else None"),
		mc("CrsDepTime", "lambda x: '{:02}:{:02}'.format(int(x / 100), x % 100) if x else None"),
		wc("CancellationCode", pipelines.FlightsCleanCode),
		mc("Diverted", "lambda x: True if x > 0 else False"),
		mc("Cancelled", "lambda x: True if x > 0 else False"),
		wc("CancellationReason", pipelines.FlightsDiverted),
		wc("ActualElapsedTime", pipelines.FlightsFillInTimes),
	); err != nil {
		return nil, err
	}

	cf, err := e.CSV(carriers, true, ',', nil, nil)
	if err != nil {
		return nil, err
	}
	if cf, err = e.WithColumnUDF(cf, "AirlineName", "lambda x: x['Description'][:x['Description'].rfind('(')].strip()", nil); err != nil {
		return nil, err
	}
	if cf, err = e.WithColumnUDF(cf, "AirlineYearFounded", "lambda x: int(x['Description'][x['Description'].rfind('(') + 1:x['Description'].rfind('-')])", nil); err != nil {
		return nil, err
	}
	if cf, err = e.WithColumnUDF(cf, "AirlineYearDefunct", pipelines.FlightsExtractDefunctYear, nil); err != nil {
		return nil, err
	}

	af, err := e.CSV(airports, false, ':', data.AirportColumns, []string{"", "N/a", "N/A"})
	if err != nil {
		return nil, err
	}
	if af, err = e.MapColumnUDF(af, "AirportName", "lambda x: string.capwords(x) if x else None", nil); err != nil {
		return nil, err
	}
	if af, err = e.MapColumnUDF(af, "AirportCity", "lambda x: string.capwords(x) if x else None", nil); err != nil {
		return nil, err
	}

	if f, err = e.Join(f, cf, "OpUniqueCarrier", "Code", false, ""); err != nil {
		return nil, err
	}
	if f, err = e.Join(f, af, "Origin", "IATACode", true, "Origin"); err != nil {
		return nil, err
	}
	if f, err = e.Join(f, af, "Dest", "IATACode", true, "Dest"); err != nil {
		return nil, err
	}
	if err := apply(
		mc("Distance", "lambda x: x / 0.00062137119224"),
		mc("AirlineName", "lambda s: s.replace('Inc.', '').replace('LLC', '').replace('Co.', '').strip()"),
	); err != nil {
		return nil, err
	}
	for _, rn := range [][2]string{
		{"OriginLatitudeDecimal", "OriginLatitude"}, {"OriginLongitudeDecimal", "OriginLongitude"},
		{"DestLatitudeDecimal", "DestLatitude"}, {"DestLongitudeDecimal", "DestLongitude"},
		{"OpUniqueCarrier", "CarrierCode"}, {"OpCarrierFlNum", "FlightNumber"},
		{"DayOfMonth", "Day"}, {"AirlineName", "CarrierName"},
		{"Origin", "OriginAirportIATACode"}, {"Dest", "DestAirportIATACode"},
	} {
		if f, err = e.Rename(f, rn[0], rn[1]); err != nil {
			return nil, err
		}
	}
	if f, err = e.FilterUDF(f, pipelines.FlightsFilterDefunct, nil); err != nil {
		return nil, err
	}
	for _, c := range pipelines.FlightsNumericCols {
		if f, err = e.MapColumnUDF(f, c, "lambda x: int(x) if x else 0", nil); err != nil {
			return nil, err
		}
	}
	return e.Select(f, pipelines.FlightsOutputColumns...)
}

// RunWeblogs executes the weblog pipeline under the given variant. For
// the PySparkSQL modes, line splitting / per-column regex run natively.
func (e *Engine) RunWeblogs(logs, badIPs []byte, variant pipelines.WeblogVariant) (*Frame, error) {
	f := e.Text(logs, "logline")
	bf, err := e.CSV(badIPs, true, ',', nil, nil)
	if err != nil {
		return nil, err
	}
	globals := map[string]pyvalue.Value{"LETTERS": pyvalue.Str(pipelines.WeblogLetters)}
	switch variant {
	case pipelines.WeblogStrip:
		if f, err = e.MapUDF(f, pipelines.WeblogParseStrip, nil); err != nil {
			return nil, err
		}
	case pipelines.WeblogSplit:
		if e.cfg.Mode == ModePySparkSQL {
			// Native split + cast ("PySparkSQL (split)" in Fig. 5).
			if f, err = e.NativeSplitColumns(f, []string{
				"ip", "client_id", "user_id", "date1", "date2", "method",
				"endpoint", "protocol", "response_code", "content_size"}); err != nil {
				return nil, err
			}
			if f, err = e.WithColumnUDF(f, "date", "lambda x: (x['date1'] + ' ' + x['date2'])[1:-1] if x['date1'] and x['date2'] else ''", nil); err != nil {
				return nil, err
			}
			if f, err = e.MapColumnUDF(f, "method", "lambda x: x[1:] if x else ''", nil); err != nil {
				return nil, err
			}
			if f, err = e.MapColumnUDF(f, "protocol", "lambda x: x[:-1] if x else ''", nil); err != nil {
				return nil, err
			}
			if f, err = e.NativeCastInt(f, "response_code"); err != nil {
				return nil, err
			}
			if f, err = e.MapColumnUDF(f, "content_size", "lambda x: 0 if x == '-' or not x else int(x)", nil); err != nil {
				return nil, err
			}
			if f, err = e.FilterUDF(f, "lambda x: x['endpoint'] is not None and len(x['endpoint']) > 0", nil); err != nil {
				return nil, err
			}
		} else {
			steps := [][2]string{
				{"cols", "lambda x: x['logline'].split(' ')"},
				{"ip", "lambda x: x['cols'][0].strip()"},
				{"client_id", "lambda x: x['cols'][1].strip()"},
				{"user_id", "lambda x: x['cols'][2].strip()"},
				{"date", "lambda x: x['cols'][3] + \" \" + x['cols'][4]"},
			}
			for _, s := range steps {
				if f, err = e.WithColumnUDF(f, s[0], s[1], nil); err != nil {
					return nil, err
				}
			}
			if f, err = e.MapColumnUDF(f, "date", "lambda x: x.strip()", nil); err != nil {
				return nil, err
			}
			if f, err = e.MapColumnUDF(f, "date", "lambda x: x[1:-1]", nil); err != nil {
				return nil, err
			}
			more := [][2]string{
				{"method", "lambda x: x['cols'][5].strip()"},
				{"endpoint", "lambda x: x['cols'][6].strip()"},
				{"protocol", "lambda x: x['cols'][7].strip()"},
				{"response_code", "lambda x: int(x['cols'][8].strip())"},
				{"content_size", "lambda x: x['cols'][9].strip()"},
			}
			for _, s := range more {
				if f, err = e.WithColumnUDF(f, s[0], s[1], nil); err != nil {
					return nil, err
				}
			}
			if f, err = e.MapColumnUDF(f, "method", "lambda x: x[1:]", nil); err != nil {
				return nil, err
			}
			if f, err = e.MapColumnUDF(f, "protocol", "lambda x: x[:-1]", nil); err != nil {
				return nil, err
			}
			if f, err = e.MapColumnUDF(f, "content_size", "lambda x: 0 if x == '-' else int(x)", nil); err != nil {
				return nil, err
			}
			if f, err = e.FilterUDF(f, "lambda x: len(x['endpoint']) > 0", nil); err != nil {
				return nil, err
			}
		}
	default: // single regex, or per-column regex in SQL mode
		if e.cfg.Mode == ModePySparkSQL {
			// Per-column regexp_extract, natively.
			fields := [][3]string{
				{"ip", `^(\S+)`, "1"},
				{"date", `\[([\w:/]+\s[+\-]\d{4})\]`, "1"},
				{"method", `"(\S+) \S+\s*\S*\s*"`, "1"},
				{"endpoint", `"\S+ (\S+)\s*\S*\s*"`, "1"},
				{"protocol", `"\S+ \S+\s*(\S*)\s*"`, "1"},
				{"response_code", `\s(\d{3})\s`, "1"},
				{"content_size", `\s(\S+)$`, "1"},
			}
			for _, fd := range fields {
				if f, err = e.NativeRegexExtract(f, "logline", fd[0], fd[1], 1); err != nil {
					return nil, err
				}
			}
			// SparkSQL casts silently null out garbage; mirror that (the
			// §7 silent-semantics hazard) with a digit guard.
			if f, err = e.NativeCastInt(f, "response_code"); err != nil {
				return nil, err
			}
			if f, err = e.MapColumnUDF(f, "content_size", "lambda x: int(x) if x and x.isdigit() else 0", nil); err != nil {
				return nil, err
			}
			if f, err = e.FilterUDF(f, "lambda x: len(x['ip']) > 0", nil); err != nil {
				return nil, err
			}
		} else {
			if f, err = e.MapUDF(f, pipelines.WeblogParseRegex, nil); err != nil {
				return nil, err
			}
		}
	}
	if f, err = e.MapColumnUDF(f, "endpoint", pipelines.WeblogRandomize, globals); err != nil {
		return nil, err
	}
	if f, err = e.Join(f, bf, "ip", "BadIPs", false, ""); err != nil {
		return nil, err
	}
	return e.Select(f, pipelines.WeblogOutputColumns...)
}

// Run311 executes the 311 cleaning query.
func (e *Engine) Run311(raw []byte) (*Frame, error) {
	f, err := e.CSV(raw, true, ',', nil, nil)
	if err != nil {
		return nil, err
	}
	if f, err = e.Select(f, "Incident Zip"); err != nil {
		return nil, err
	}
	if f, err = e.MapColumnUDF(f, "Incident Zip", pipelines.ThreeOneOneFixZip, nil); err != nil {
		return nil, err
	}
	if f, err = e.FilterUDF(f, "lambda x: x is not None", nil); err != nil {
		return nil, err
	}
	return e.Unique(f), nil
}

// RunQ6 executes TPC-H Q6.
func (e *Engine) RunQ6(raw []byte) (float64, error) {
	f, err := e.CSV(raw, true, ',', nil, nil)
	if err != nil {
		return 0, err
	}
	agg := "lambda acc, r: acc + r['l_extendedprice'] * r['l_discount'] if (r['l_shipdate'] >= 731 and r['l_shipdate'] < 1096 and 0.05 <= r['l_discount'] <= 0.07 and r['l_quantity'] < 24) else acc"
	v, err := e.Aggregate(f, agg, "lambda a, b: a + b", pyvalue.Float(0))
	if err != nil {
		return 0, err
	}
	fv, ok := v.(pyvalue.Float)
	if !ok {
		return 0, fmt.Errorf("blackbox: Q6 result %T", v)
	}
	return float64(fv), nil
}
