package spec

import (
	"github.com/gotuplex/tuplex/internal/core"
	"github.com/gotuplex/tuplex/internal/rows"
)

// ResultRows converts an engine result's output rows to plain JSON-
// encodable values ([]any cells: nil, bool, int64, float64, string,
// []any, map[string]any). limit caps the rows converted (-1 = all);
// callers that cap should compare len(result) against ResultLen to
// detect truncation. Collect sinks return unboxed slot rows which box
// through the slab boxer; aggregate results arrive already boxed.
func ResultRows(res *core.Result, limit int) [][]any {
	switch {
	case res.SlotRows != nil:
		n := len(res.SlotRows)
		if limit >= 0 && limit < n {
			n = limit
		}
		var b rows.Boxer
		ncells := 0
		for _, r := range res.SlotRows[:n] {
			ncells += len(r)
		}
		b.Grow(1, ncells)
		out := make([][]any, n)
		for i, r := range res.SlotRows[:n] {
			out[i] = b.BoxRow(r)
		}
		return out
	case res.Rows != nil:
		n := len(res.Rows)
		if limit >= 0 && limit < n {
			n = limit
		}
		out := make([][]any, n)
		for i, r := range res.Rows[:n] {
			row := make([]any, len(r))
			for j, v := range r {
				row[j] = unboxAny(v)
			}
			out[i] = row
		}
		return out
	}
	return nil
}

// ResultLen reports the result's total output row count before any
// ResultRows limit.
func ResultLen(res *core.Result) int {
	if res.SlotRows != nil {
		return len(res.SlotRows)
	}
	return len(res.Rows)
}
