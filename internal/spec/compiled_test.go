package spec

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"github.com/gotuplex/tuplex/internal/core"
)

// dirtyPipeline exercises the full dual-mode machinery (normal path,
// resolvers, exception rows) so the warm/cold comparison covers more
// than the happy path.
func dirtyPipeline() *Pipeline {
	p := &Pipeline{
		V: Version,
		Source: Source{
			Kind: "csv",
			Data: "a,b\n1,2\n3,4\nbad,6\n5,oops\n7,8\n",
		},
		Ops: []Op{
			{Kind: "withColumn", Col: "s", UDF: &UDF{Code: "lambda x: int(x['a']) + int(x['b'])"}},
			{Kind: "resolve", Exc: "ValueError", UDF: &UDF{Code: "lambda x: -1"}},
			{Kind: "filter", UDF: &UDF{Code: "lambda x: x['s'] != 0"}},
		},
		Options: &Options{Executors: 2},
	}
	return p
}

func rowsJSON(t *testing.T, res *core.Result) string {
	t.Helper()
	b, err := json.Marshal(ResultRows(res, -1))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCompiledPlanWarmMatchesCold is the warm-path differential: a
// CompiledPlan re-execution must produce exactly what the compiling run
// produced and what a from-scratch execution produces — including the
// failed-row accounting — and stay correct across repeated and
// concurrent warm runs (template state must be per-run).
func TestCompiledPlanWarmMatchesCold(t *testing.T) {
	b, err := dirtyPipeline().Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cold, cp, err := core.CompileAndExecute(ctx, b.Node, b.Kind, b.CSVPath, b.Opts)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.ExecuteContext(ctx, b.Node, b.Kind, b.CSVPath, b.Opts)
	if err != nil {
		t.Fatal(err)
	}
	want := rowsJSON(t, fresh)
	if got := rowsJSON(t, cold); got != want {
		t.Fatalf("cold run diverged from fresh:\n%s\nvs\n%s", got, want)
	}
	for i := 0; i < 3; i++ {
		warm, err := cp.Execute(ctx, "")
		if err != nil {
			t.Fatalf("warm %d: %v", i, err)
		}
		if got := rowsJSON(t, warm); got != want {
			t.Fatalf("warm %d diverged:\n%s\nvs\n%s", i, got, want)
		}
		if got, want := len(warm.Failed), len(fresh.Failed); got != want {
			t.Fatalf("warm %d failed rows: %d vs %d", i, got, want)
		}
	}
	// Concurrent warm executions of one shared template (run under
	// -race in CI: clones must not share mutable state).
	var wg sync.WaitGroup
	errs := make([]error, 4)
	outs := make([]string, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			warm, err := cp.Execute(ctx, "")
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = rowsJSON(t, warm)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent warm %d: %v", i, errs[i])
		}
		if outs[i] != want {
			t.Fatalf("concurrent warm %d diverged", i)
		}
	}
}

// TestCompiledPlanAggregateWarm covers the boxed-interpreter cloning
// path (aggregate folds are interpreted, and interpreters are not
// shareable across runs).
func TestCompiledPlanAggregateWarm(t *testing.T) {
	p := &Pipeline{
		V:      Version,
		Source: Source{Kind: "parallelize", Columns: []string{"a"}, Rows: [][]any{{int64(1)}, {int64(2)}, {int64(3)}, {int64(4)}}},
		Sink: Sink{
			Kind:    "aggregate",
			Agg:     &UDF{Code: "lambda acc, row: acc + row"},
			Comb:    &UDF{Code: "lambda a, b: a + b"},
			Initial: int64(0),
		},
		Options: &Options{Executors: 2},
	}
	b, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cold, cp, err := core.CompileAndExecute(ctx, b.Node, b.Kind, b.CSVPath, b.Opts)
	if err != nil {
		t.Fatal(err)
	}
	want := rowsJSON(t, cold)
	for i := 0; i < 3; i++ {
		warm, err := cp.Execute(ctx, "")
		if err != nil {
			t.Fatalf("warm %d: %v", i, err)
		}
		if got := rowsJSON(t, warm); got != want {
			t.Fatalf("warm aggregate %d: %s vs %s", i, got, want)
		}
	}
}

// TestCompiledPlanCancellation: warm executions observe context
// cancellation like cold ones.
func TestCompiledPlanCancellation(t *testing.T) {
	b, err := dirtyPipeline().Build()
	if err != nil {
		t.Fatal(err)
	}
	_, cp, err := core.CompileAndExecute(context.Background(), b.Node, b.Kind, b.CSVPath, b.Opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cp.Execute(ctx, ""); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}
