// Package spec defines the versioned, serializable pipeline
// specification shared by the public tuplex.Plan codec and the
// tuplex-serve job API. A Pipeline is the wire form of one DataSet
// chain: source, operator list (with UDF sources and resolver
// attachments), sink and engine options. The JSON layout is stable and
// versioned ("v":1); unknown versions, fields and operator kinds are
// rejected with actionable errors rather than ignored.
//
// The package deliberately sits below both the public API and
// internal/service so neither needs to import the other: the root
// package wraps *spec.Pipeline as tuplex.Plan, the service decodes
// submissions straight into the same struct.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Version is the pipeline spec version this build reads and writes.
const Version = 1

// Pipeline is the versioned wire form of one pipeline.
type Pipeline struct {
	// V is the spec version (Version). Required at the top level;
	// nested join-build pipelines inherit the outer version and omit it.
	V int `json:"v,omitempty"`
	// Source is the input (csv / text / parallelize).
	Source Source `json:"source"`
	// Ops is the operator chain, in execution order.
	Ops []Op `json:"ops,omitempty"`
	// Sink is the terminal action. Empty kind means collect (and is how
	// join build sides spell "no sink").
	Sink Sink `json:"sink,omitempty"`
	// Options overrides engine defaults; nil keeps every default.
	Options *Options `json:"options,omitempty"`
}

// Source describes a pipeline input.
type Source struct {
	// Kind is "csv", "text" or "parallelize".
	Kind string `json:"kind"`
	// Path is the input path ("," joins multiple files), exclusive with
	// Data/Rows.
	Path string `json:"path,omitempty"`
	// Data inlines the file content (tests, small jobs).
	Data string `json:"data,omitempty"`
	// Delim is the CSV delimiter as a one-character string (default ",").
	Delim string `json:"delim,omitempty"`
	// Header reports whether the first record is a header row (CSV;
	// default true).
	Header *bool `json:"header,omitempty"`
	// Columns names the columns (CSV without header, parallelize).
	Columns []string `json:"columns,omitempty"`
	// NullValues are the cell spellings treated as NULL (CSV).
	NullValues []string `json:"null_values,omitempty"`
	// Rows are inline rows (parallelize).
	Rows [][]any `json:"rows,omitempty"`
	// Column names the single text column (text; default "value").
	Column string `json:"column,omitempty"`
}

// UDF is a Python UDF: source code plus optional global bindings.
type UDF struct {
	Code    string         `json:"code"`
	Globals map[string]any `json:"globals,omitempty"`
}

// Op is one operator of the chain. Kind selects which fields apply.
type Op struct {
	// Kind is one of map, filter, withColumn, mapColumn, renameColumn,
	// selectColumns, resolve, ignore, join, aggregate, unique, cache.
	Kind string `json:"kind"`
	// UDF applies to map/filter/withColumn/mapColumn/resolve.
	UDF *UDF `json:"udf,omitempty"`
	// Col applies to withColumn/mapColumn.
	Col string `json:"col,omitempty"`
	// Old/New apply to renameColumn.
	Old string `json:"old,omitempty"`
	New string `json:"new,omitempty"`
	// Cols applies to selectColumns.
	Cols []string `json:"cols,omitempty"`
	// Exc names the exception class for resolve/ignore ("TypeError", ...).
	Exc string `json:"exc,omitempty"`
	// Build is the join's build-side pipeline (no sink).
	Build *Pipeline `json:"build,omitempty"`
	// LeftKey/RightKey/Left/LeftPrefix/RightPrefix apply to join.
	LeftKey     string `json:"left_key,omitempty"`
	RightKey    string `json:"right_key,omitempty"`
	Left        bool   `json:"left,omitempty"`
	LeftPrefix  string `json:"left_prefix,omitempty"`
	RightPrefix string `json:"right_prefix,omitempty"`
	// Agg/Comb/Initial apply to aggregate.
	Agg     *UDF `json:"agg,omitempty"`
	Comb    *UDF `json:"comb,omitempty"`
	Initial any  `json:"initial,omitempty"`
}

// Sink is the pipeline's terminal action.
type Sink struct {
	// Kind is "collect", "take", "csv" or "aggregate" ("" means collect).
	Kind string `json:"kind,omitempty"`
	// N caps returned rows (take).
	N int `json:"n,omitempty"`
	// Path writes rendered CSV to a file (csv; "" keeps bytes inline).
	Path string `json:"path,omitempty"`
	// Agg/Comb/Initial define the fold (aggregate).
	Agg     *UDF `json:"agg,omitempty"`
	Comb    *UDF `json:"comb,omitempty"`
	Initial any  `json:"initial,omitempty"`
}

// Options mirrors the engine's run options in wire form. Boolean
// toggles are pointers so "absent" keeps the engine default (most
// default to on).
type Options struct {
	Executors             int      `json:"executors,omitempty"`
	PartitionRows         int      `json:"partition_rows,omitempty"`
	SampleSize            int      `json:"sample_size,omitempty"`
	NullThreshold         float64  `json:"null_threshold,omitempty"`
	NullOptimization      *bool    `json:"null_optimization,omitempty"`
	ProjectionPushdown    *bool    `json:"projection_pushdown,omitempty"`
	FilterPushdown        *bool    `json:"filter_pushdown,omitempty"`
	JoinReorder           *bool    `json:"join_reorder,omitempty"`
	StageFusion           *bool    `json:"stage_fusion,omitempty"`
	CompilerOptimizations *bool    `json:"compiler_optimizations,omitempty"`
	Seed                  uint64   `json:"seed,omitempty"`
	Streaming             *bool    `json:"streaming,omitempty"`
	Columnar              *bool    `json:"columnar,omitempty"`
	ChunkSize             int      `json:"chunk_size,omitempty"`
}

// knownOpKinds lists every operator kind Build accepts, for error
// messages.
var knownOpKinds = []string{
	"aggregate", "cache", "filter", "ignore", "join", "map", "mapColumn",
	"renameColumn", "resolve", "selectColumns", "unique", "withColumn",
}

// knownSourceKinds lists every source kind Build accepts.
var knownSourceKinds = []string{"csv", "parallelize", "text"}

// knownSinkKinds lists every sink kind Build accepts.
var knownSinkKinds = []string{"aggregate", "collect", "csv", "take"}

// DecodeError reports every structural problem a strict decode found —
// all unknown fields across the whole document (join build sides and
// nested UDF objects included) plus a version mismatch — so one round
// trip surfaces the complete list instead of only the first offender.
type DecodeError struct {
	// Problems are the individual findings, each prefixed with its
	// location ("ops[2]", "ops[1].build.source", ...).
	Problems []string
}

func (e *DecodeError) Error() string {
	if len(e.Problems) == 1 {
		return "spec: " + e.Problems[0]
	}
	return fmt.Sprintf("spec: %d problems: %s", len(e.Problems), strings.Join(e.Problems, "; "))
}

// Decode parses a versioned pipeline spec strictly: unknown fields,
// unknown spec versions and malformed JSON all error with context.
// Structural problems accumulate into a *DecodeError listing every
// unknown field in the document, not just the first. Numbers decode as
// json.Number so integer globals stay integers.
func Decode(data []byte) (*Pipeline, error) {
	var raw any
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("spec: invalid pipeline JSON: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after pipeline JSON")
	}
	if problems := scanPipeline(raw, ""); len(problems) > 0 {
		return nil, &DecodeError{Problems: problems}
	}
	dec = json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	dec.DisallowUnknownFields()
	var p Pipeline
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("spec: invalid pipeline JSON: %w", err)
	}
	normalizeNumbers(&p)
	return &p, nil
}

// Known field sets per wire struct, for the accumulating structural
// scan. These must track the json tags above.
var (
	pipelineFields = map[string]bool{"v": true, "source": true, "ops": true, "sink": true, "options": true}
	sourceFields   = map[string]bool{"kind": true, "path": true, "data": true, "delim": true, "header": true,
		"columns": true, "null_values": true, "rows": true, "column": true}
	opFields = map[string]bool{"kind": true, "udf": true, "col": true, "old": true, "new": true, "cols": true,
		"exc": true, "build": true, "left_key": true, "right_key": true, "left": true,
		"left_prefix": true, "right_prefix": true, "agg": true, "comb": true, "initial": true}
	udfFields  = map[string]bool{"code": true, "globals": true}
	sinkFields = map[string]bool{"kind": true, "n": true, "path": true, "agg": true, "comb": true, "initial": true}
	optFields  = map[string]bool{"executors": true, "partition_rows": true, "sample_size": true,
		"null_threshold": true, "null_optimization": true, "projection_pushdown": true,
		"filter_pushdown": true, "join_reorder": true, "stage_fusion": true,
		"compiler_optimizations": true, "seed": true, "streaming": true, "columnar": true,
		"chunk_size": true}
)

// scanPipeline walks the generic JSON form of one pipeline (path "" for
// the top level, "ops[i].build" for join build sides) and returns every
// structural problem. Unknown operator/source/sink kinds are not decode
// problems — Build and the static verifier report those with the full
// known-kind list — so a spec with only a bad kind still decodes.
func scanPipeline(v any, path string) []string {
	m, ok := v.(map[string]any)
	if !ok {
		return []string{locate(path, "pipeline") + " must be a JSON object"}
	}
	ps := unknownFieldProblems(m, pipelineFields, path)
	if path == "" {
		ver := 0
		if n, ok := m["v"].(json.Number); ok {
			if i, err := n.Int64(); err == nil {
				ver = int(i)
			}
		}
		if ver != Version {
			ps = append(ps, fmt.Sprintf("unsupported spec version %d (this build reads \"v\": %d)", ver, Version))
		}
	}
	if s, ok := m["source"]; ok {
		ps = append(ps, scanFlatObject(s, sourceFields, childPath(path, "source"))...)
	}
	if ops, ok := m["ops"].([]any); ok {
		for i, o := range ops {
			ps = append(ps, scanOp(o, fmt.Sprintf("%s[%d]", childPath(path, "ops"), i))...)
		}
	}
	if s, ok := m["sink"]; ok {
		sp := childPath(path, "sink")
		ps = append(ps, scanFlatObject(s, sinkFields, sp)...)
		if sm, ok := s.(map[string]any); ok {
			for _, f := range []string{"agg", "comb"} {
				if u, ok := sm[f]; ok {
					ps = append(ps, scanFlatObject(u, udfFields, sp+"."+f)...)
				}
			}
		}
	}
	if o, ok := m["options"]; ok {
		ps = append(ps, scanFlatObject(o, optFields, childPath(path, "options"))...)
	}
	return ps
}

func scanOp(v any, path string) []string {
	m, ok := v.(map[string]any)
	if !ok {
		return []string{path + ": op must be a JSON object"}
	}
	ps := unknownFieldProblems(m, opFields, path)
	for _, f := range []string{"udf", "agg", "comb"} {
		if u, ok := m[f]; ok {
			ps = append(ps, scanFlatObject(u, udfFields, path+"."+f)...)
		}
	}
	if b, ok := m["build"]; ok {
		ps = append(ps, scanPipeline(b, path+".build")...)
	}
	return ps
}

// scanFlatObject checks one leaf object's field names.
func scanFlatObject(v any, known map[string]bool, path string) []string {
	m, ok := v.(map[string]any)
	if !ok {
		return []string{path + " must be a JSON object"}
	}
	return unknownFieldProblems(m, known, path)
}

// unknownFieldProblems lists the map's unknown keys, sorted so the
// report is deterministic.
func unknownFieldProblems(m map[string]any, known map[string]bool, path string) []string {
	var bad []string
	for k := range m {
		if !known[k] {
			bad = append(bad, k)
		}
	}
	sort.Strings(bad)
	var ps []string
	for _, k := range bad {
		ps = append(ps, fmt.Sprintf("%s: unknown field %q", locate(path, "pipeline"), k))
	}
	return ps
}

func locate(path, topName string) string {
	if path == "" {
		return topName
	}
	return path
}

func childPath(path, field string) string {
	if path == "" {
		return field
	}
	return path + "." + field
}

// Encode renders the pipeline as stable, versioned JSON. Field order is
// fixed by the struct layout and map keys (globals) sort, so encoding
// the same pipeline always yields the same bytes — the property the
// cache key and the golden-file tests rely on.
func (p *Pipeline) Encode() ([]byte, error) {
	cp := *p
	cp.V = Version
	out, err := json.Marshal(&cp)
	if err != nil {
		return nil, fmt.Errorf("spec: encoding pipeline: %w", err)
	}
	return out, nil
}

// EncodeIndent is Encode with human-friendly indentation (used by the
// golden files and tuplex-run's plan dump).
func (p *Pipeline) EncodeIndent() ([]byte, error) {
	compact, err := p.Encode()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, compact, "", "  "); err != nil {
		return nil, err
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// normalizeNumbers rewrites json.Number leaves into int64/float64
// throughout the pipeline's value positions (globals, inline rows,
// aggregate initial), so downstream boxing sees concrete Go numbers and
// re-encoding round-trips "1" as 1, not 1.0.
func normalizeNumbers(p *Pipeline) {
	if p == nil {
		return
	}
	for i := range p.Source.Rows {
		for j, v := range p.Source.Rows[i] {
			p.Source.Rows[i][j] = normalizeValue(v)
		}
	}
	for i := range p.Ops {
		op := &p.Ops[i]
		normalizeUDF(op.UDF)
		normalizeUDF(op.Agg)
		normalizeUDF(op.Comb)
		op.Initial = normalizeValue(op.Initial)
		normalizeNumbers(op.Build)
	}
	normalizeUDF(p.Sink.Agg)
	normalizeUDF(p.Sink.Comb)
	p.Sink.Initial = normalizeValue(p.Sink.Initial)
}

func normalizeUDF(u *UDF) {
	if u == nil {
		return
	}
	for k, v := range u.Globals {
		u.Globals[k] = normalizeValue(v)
	}
}

// normalizeValue converts json.Number (and nested containers holding
// them) to int64 where exact, float64 otherwise.
func normalizeValue(v any) any {
	switch v := v.(type) {
	case json.Number:
		if !strings.ContainsAny(v.String(), ".eE") {
			if n, err := v.Int64(); err == nil {
				return n
			}
		}
		f, _ := v.Float64()
		return f
	case []any:
		for i, it := range v {
			v[i] = normalizeValue(it)
		}
		return v
	case map[string]any:
		for k, it := range v {
			v[k] = normalizeValue(it)
		}
		return v
	default:
		return v
	}
}

// unknownKindError builds the "got X, want one of ..." error text shared
// by source/op/sink validation.
func unknownKindError(what, got string, known []string) error {
	sorted := append([]string(nil), known...)
	sort.Strings(sorted)
	return fmt.Errorf("spec: unknown %s kind %q (known kinds: %s)", what, got, strings.Join(sorted, ", "))
}
