package spec

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/gotuplex/tuplex/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// complexPipeline exercises every operator kind, WithGlobal bindings,
// resolvers, a join build side and explicit options.
func complexPipeline() *Pipeline {
	hdr := true
	on, off := true, false
	return &Pipeline{
		V: Version,
		Source: Source{
			Kind:       "csv",
			Path:       "zillow.csv",
			Header:     &hdr,
			NullValues: []string{"", "NULL"},
		},
		Ops: []Op{
			{Kind: "withColumn", Col: "bedrooms", UDF: &UDF{Code: "lambda x: int(x['facts and features'].split(' ')[0])"}},
			{Kind: "resolve", Exc: "ValueError", UDF: &UDF{Code: "lambda x: 0"}},
			{Kind: "ignore", Exc: "TypeError"},
			{Kind: "filter", UDF: &UDF{Code: "lambda x: x['bedrooms'] < 10"}},
			{Kind: "mapColumn", Col: "zipcode", UDF: &UDF{Code: "lambda z: '%05d' % int(z)"}},
			{Kind: "renameColumn", Old: "zipcode", New: "zip"},
			{Kind: "map", UDF: &UDF{
				Code:    "lambda x: {'zip': x['zip'], 'tag': prefix + x['zip']}",
				Globals: map[string]any{"prefix": "z-", "limit": int64(99999)},
			}},
			{Kind: "join", LeftKey: "zip", RightKey: "zip",
				Build: &Pipeline{
					Source: Source{Kind: "parallelize",
						Columns: []string{"zip", "region"},
						Rows:    [][]any{{"02139", "cambridge"}, {"10001", "nyc"}},
					},
				},
				Left: true, RightPrefix: "r_",
			},
			{Kind: "selectColumns", Cols: []string{"zip", "tag", "r_region"}},
			{Kind: "unique"},
			{Kind: "cache"},
		},
		Sink: Sink{Kind: "csv", Path: ""},
		Options: &Options{
			Executors:          4,
			SampleSize:         256,
			ProjectionPushdown: &on,
			FilterPushdown:     &on,
			JoinReorder:        &off,
			Streaming:          &off,
			Seed:               7,
		},
	}
}

func aggregatePipeline() *Pipeline {
	return &Pipeline{
		V: Version,
		Source: Source{Kind: "parallelize",
			Columns: []string{"a", "b"},
			Rows:    [][]any{{int64(1), 2.5}, {int64(3), 4.5}, {int64(5), 6.5}},
		},
		Ops: []Op{
			{Kind: "filter", UDF: &UDF{Code: "lambda x: x['a'] > 1"}},
		},
		Sink: Sink{
			Kind:    "aggregate",
			Agg:     &UDF{Code: "lambda acc, row: acc + row['a']"},
			Comb:    &UDF{Code: "lambda a, b: a + b"},
			Initial: int64(0),
		},
	}
}

func textPipeline() *Pipeline {
	return &Pipeline{
		V:      Version,
		Source: Source{Kind: "text", Data: "alpha\nbeta\ngamma\n", Column: "line"},
		Ops: []Op{
			{Kind: "map", UDF: &UDF{Code: "lambda line: len(line)"}},
		},
		Sink: Sink{Kind: "take", N: 2},
	}
}

func goldenCases() map[string]*Pipeline {
	return map[string]*Pipeline{
		"complex.json":   complexPipeline(),
		"aggregate.json": aggregatePipeline(),
		"text.json":      textPipeline(),
	}
}

// TestGoldenFiles pins the wire encoding: each golden file must decode
// and re-encode byte-identically, and the in-memory constructions above
// must still produce exactly the committed bytes.
func TestGoldenFiles(t *testing.T) {
	for name, p := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", name)
			got, err := p.EncodeIndent()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if *update {
				os.MkdirAll("testdata", 0o755)
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("encoding drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
			}
			// Round trip: decode the golden, re-encode, byte-identical.
			dec, err := Decode(want)
			if err != nil {
				t.Fatalf("decode golden: %v", err)
			}
			again, err := dec.EncodeIndent()
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(again, want) {
				t.Errorf("round trip drifted for %s:\n--- got ---\n%s", name, again)
			}
		})
	}
}

func TestDecodeRejectsUnknownVersion(t *testing.T) {
	_, err := Decode([]byte(`{"v": 2, "source": {"kind": "csv", "path": "x.csv"}}`))
	if err == nil || !strings.Contains(err.Error(), "unsupported spec version 2") {
		t.Fatalf("want version error, got %v", err)
	}
	_, err = Decode([]byte(`{"source": {"kind": "csv", "path": "x.csv"}}`))
	if err == nil || !strings.Contains(err.Error(), "unsupported spec version 0") {
		t.Fatalf("want version error for missing v, got %v", err)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := Decode([]byte(`{"v": 1, "source": {"kind": "csv", "path": "x.csv"}, "bogus": 1}`))
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("want unknown-field error, got %v", err)
	}
}

func TestDecodeAccumulatesAllProblems(t *testing.T) {
	_, err := Decode([]byte(`{"v": 2,
		"source": {"kind": "csv", "path": "x.csv", "sep": ","},
		"ops": [
			{"kind": "map", "udf": {"code": "lambda x: x", "global": {}}, "cool": 1},
			{"kind": "join", "left_key": "a", "right_key": "a",
			 "build": {"source": {"kind": "csv", "path": "y.csv", "seperator": ";"}}}
		],
		"bogus": 1, "also_bogus": 2}`))
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("want *DecodeError, got %T: %v", err, err)
	}
	want := []string{
		`pipeline: unknown field "also_bogus"`,
		`pipeline: unknown field "bogus"`,
		`unsupported spec version 2 (this build reads "v": 1)`,
		`source: unknown field "sep"`,
		`ops[0]: unknown field "cool"`,
		`ops[0].udf: unknown field "global"`,
		`ops[1].build.source: unknown field "seperator"`,
	}
	if len(de.Problems) != len(want) {
		t.Fatalf("got %d problems %q, want %d", len(de.Problems), de.Problems, len(want))
	}
	for i, w := range want {
		if de.Problems[i] != w {
			t.Errorf("problem[%d] = %q, want %q", i, de.Problems[i], w)
		}
	}
	if !strings.Contains(err.Error(), "7 problems") {
		t.Errorf("Error() should count problems, got %q", err.Error())
	}
}

func TestBuildRejectsUnknownOp(t *testing.T) {
	p, err := Decode([]byte(`{"v": 1,
		"source": {"kind": "parallelize", "columns": ["a"], "rows": [[1]]},
		"ops": [{"kind": "explode"}]}`))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	_, err = p.Build()
	if err == nil || !strings.Contains(err.Error(), `unknown op kind "explode"`) ||
		!strings.Contains(err.Error(), "known kinds:") {
		t.Fatalf("want actionable unknown-op error, got %v", err)
	}
}

func TestBuildRejectsUnknownSourceAndSink(t *testing.T) {
	p := &Pipeline{Source: Source{Kind: "avro", Path: "x"}}
	if _, err := p.Build(); err == nil || !strings.Contains(err.Error(), `unknown source kind "avro"`) {
		t.Fatalf("want source-kind error, got %v", err)
	}
	p = &Pipeline{
		Source: Source{Kind: "parallelize", Columns: []string{"a"}, Rows: [][]any{{int64(1)}}},
		Sink:   Sink{Kind: "parquet"},
	}
	if _, err := p.Build(); err == nil || !strings.Contains(err.Error(), `unknown sink kind "parquet"`) {
		t.Fatalf("want sink-kind error, got %v", err)
	}
}

func TestBuildRejectsUnknownException(t *testing.T) {
	p := &Pipeline{
		Source: Source{Kind: "parallelize", Columns: []string{"a"}, Rows: [][]any{{int64(1)}}},
		Ops:    []Op{{Kind: "ignore", Exc: "SegfaultError"}},
	}
	if _, err := p.Build(); err == nil || !strings.Contains(err.Error(), "SegfaultError") {
		t.Fatalf("want exception-kind error, got %v", err)
	}
}

// TestBuildAndExecute lowers a decoded spec and runs it end to end.
func TestBuildAndExecute(t *testing.T) {
	data := `{"v": 1,
		"source": {"kind": "parallelize", "columns": ["a", "b"],
			"rows": [[1, "x"], [2, "y"], [3, "z"]]},
		"ops": [
			{"kind": "filter", "udf": {"code": "lambda x: x['a'] >= 2"}},
			{"kind": "withColumn", "col": "c", "udf": {"code": "lambda x: x['a'] * k", "globals": {"k": 10}}}
		],
		"options": {"executors": 1}}`
	p, err := Decode([]byte(data))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	b, err := p.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := core.Execute(b.Node, b.Kind, "", b.Opts)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if got := len(res.SlotRows); got != 2 {
		t.Fatalf("want 2 rows, got %d", got)
	}
}

// TestAggregateSinkBuilds checks the fold is appended to the chain.
func TestAggregateSinkBuilds(t *testing.T) {
	b, err := aggregatePipeline().Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if !b.IsAgg {
		t.Fatalf("want IsAgg")
	}
	res, err := core.Execute(b.Node, b.Kind, "", b.Opts)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("aggregate shape: %v", res.Rows)
	}
	if got := unboxAny(res.Rows[0][0]); got != int64(8) {
		t.Fatalf("want 8, got %v", got)
	}
}

// TestNumbersStayIntegral pins the json.Number normalization: integer
// globals and rows survive a decode/encode cycle as integers.
func TestNumbersStayIntegral(t *testing.T) {
	in := []byte(`{"v": 1,
		"source": {"kind": "parallelize", "columns": ["a"], "rows": [[1], [2.5]]},
		"ops": [{"kind": "map", "udf": {"code": "lambda a: a + k", "globals": {"k": 3}}}]}`)
	p, err := Decode(in)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got, ok := p.Source.Rows[0][0].(int64); !ok || got != 1 {
		t.Fatalf("row int: got %T %v", p.Source.Rows[0][0], p.Source.Rows[0][0])
	}
	if got, ok := p.Source.Rows[1][0].(float64); !ok || got != 2.5 {
		t.Fatalf("row float: got %T %v", p.Source.Rows[1][0], p.Source.Rows[1][0])
	}
	if got, ok := p.Ops[0].UDF.Globals["k"].(int64); !ok || got != 3 {
		t.Fatalf("global int: got %T", p.Ops[0].UDF.Globals["k"])
	}
	out, err := p.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !strings.Contains(string(out), `"rows":[[1],[2.5]]`) {
		t.Fatalf("integers drifted in encode: %s", out)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(file, []byte("a,b\n1,2\n3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	mk := func(code string) *Pipeline {
		return &Pipeline{
			V:      Version,
			Source: Source{Kind: "csv", Path: file},
			Ops:    []Op{{Kind: "map", UDF: &UDF{Code: code}}},
		}
	}
	fp := func(p *Pipeline) string {
		s, err := p.Fingerprint()
		if err != nil {
			t.Fatalf("fingerprint: %v", err)
		}
		return s
	}
	base := fp(mk("lambda x: x['a']"))
	if again := fp(mk("lambda x: x['a']")); again != base {
		t.Fatalf("identical specs must fingerprint identically")
	}
	if changed := fp(mk("lambda x: x['b']")); changed == base {
		t.Fatalf("UDF edit must change the fingerprint")
	}
	// Input prefix drift (schema drift included) changes the key.
	if err := os.WriteFile(file, []byte("a,b,c\n1,2,x\n3,4,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if drifted := fp(mk("lambda x: x['a']")); drifted == base {
		t.Fatalf("input drift must change the fingerprint")
	}
	// Missing files fingerprint (to their error) rather than failing.
	os.Remove(file)
	if missing := fp(mk("lambda x: x['a']")); missing == base {
		t.Fatalf("missing input must not collide with the original")
	}
}

// TestOptionsRoundTrip pins fromOptions/resolve as inverses over the
// engine defaults and a modified set.
func TestOptionsRoundTrip(t *testing.T) {
	cases := []core.Options{core.DefaultOptions()}
	mod := core.DefaultOptions()
	mod.Executors = 8
	mod.Streaming = false
	mod.Columnar = false
	mod.Fusion = false
	mod.Sample.Size = 123
	mod.Seed = 42
	cases = append(cases, mod)
	for i, want := range cases {
		got := fromOptions(want).resolve()
		// Trace/telemetry are process-level and not part of the wire form.
		got.Trace = want.Trace
		got.Telemetry = want.Telemetry
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d: options drifted:\n got %+v\nwant %+v", i, got, want)
		}
	}
}
