package spec

import (
	"fmt"

	"github.com/gotuplex/tuplex/internal/codegen"
	"github.com/gotuplex/tuplex/internal/core"
	"github.com/gotuplex/tuplex/internal/logical"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
)

// Built is the executable form of a decoded pipeline: the logical plan,
// the resolved engine options, and the sink disposition.
type Built struct {
	// Node is the sink-rooted logical plan (the aggregate fold, when the
	// sink aggregates, is already appended).
	Node *logical.Node
	// Opts are the resolved engine options (spec overrides over
	// defaults).
	Opts core.Options
	// Kind is the engine sink form.
	Kind core.SinkKind
	// Take caps returned rows (-1 = no cap).
	Take int
	// CSVPath is the csv sink's output path ("" keeps bytes inline).
	CSVPath string
	// IsAgg marks an aggregate sink (result is the single accumulator).
	IsAgg bool
}

// Build validates the pipeline and lowers it to a logical plan plus
// engine options. Errors name the offending op index and kind.
func (p *Pipeline) Build() (*Built, error) {
	node, err := buildChain(p)
	if err != nil {
		return nil, err
	}
	b := &Built{Node: node, Opts: p.Options.resolve(), Kind: core.SinkCollect, Take: -1}
	switch p.Sink.Kind {
	case "", "collect":
	case "take":
		if p.Sink.N < 0 {
			return nil, fmt.Errorf("spec: take sink needs n >= 0, got %d", p.Sink.N)
		}
		b.Take = p.Sink.N
	case "csv":
		b.Kind = core.SinkCSV
		b.CSVPath = p.Sink.Path
	case "aggregate":
		if p.Sink.Agg == nil || p.Sink.Comb == nil {
			return nil, fmt.Errorf("spec: aggregate sink needs both agg and comb UDFs")
		}
		agg, err := parseUDF(p.Sink.Agg, "sink aggregate")
		if err != nil {
			return nil, err
		}
		comb, err := parseUDF(p.Sink.Comb, "sink aggregate combiner")
		if err != nil {
			return nil, err
		}
		b.Node = &logical.Node{
			Op:    &logical.AggregateOp{Agg: agg, Comb: comb, Initial: boxAny(p.Sink.Initial)},
			Input: b.Node,
		}
		b.IsAgg = true
	default:
		return nil, unknownKindError("sink", p.Sink.Kind, knownSinkKinds)
	}
	return b, nil
}

// buildChain lowers source + ops to a logical node chain (shared with
// join build sides, which arrive as nested Pipelines without sinks).
func buildChain(p *Pipeline) (*logical.Node, error) {
	node, err := buildSource(&p.Source)
	if err != nil {
		return nil, err
	}
	for i := range p.Ops {
		op, err := buildOp(&p.Ops[i], i)
		if err != nil {
			return nil, err
		}
		node = &logical.Node{Op: op, Input: node}
	}
	return node, nil
}

func buildSource(s *Source) (*logical.Node, error) {
	switch s.Kind {
	case "csv":
		src := &logical.CSVSource{
			Path:       s.Path,
			Header:     true,
			Delim:      ',',
			Columns:    s.Columns,
			NullValues: s.NullValues,
		}
		if s.Data != "" {
			src.Data = []byte(s.Data)
		}
		if s.Delim != "" {
			if len(s.Delim) != 1 {
				return nil, fmt.Errorf("spec: csv delim must be one character, got %q", s.Delim)
			}
			src.Delim = s.Delim[0]
		}
		if s.Header != nil {
			src.Header = *s.Header
		}
		if src.Path == "" && src.Data == nil {
			return nil, fmt.Errorf("spec: csv source needs path or data")
		}
		return &logical.Node{Op: src}, nil
	case "text":
		src := &logical.TextSource{Path: s.Path, Column: s.Column}
		if s.Data != "" {
			src.Data = []byte(s.Data)
		}
		if src.Path == "" && src.Data == nil {
			return nil, fmt.Errorf("spec: text source needs path or data")
		}
		return &logical.Node{Op: src}, nil
	case "parallelize":
		if len(s.Rows) == 0 {
			return nil, fmt.Errorf("spec: parallelize source needs rows")
		}
		ncells := 0
		for _, r := range s.Rows {
			ncells += len(r)
		}
		slab := make([]rows.Slot, 0, ncells)
		slotRows := make([]rows.Row, len(s.Rows))
		for i, r := range s.Rows {
			start := len(slab)
			for _, v := range r {
				slab = append(slab, rows.FromValue(boxAny(v)))
			}
			slotRows[i] = slab[start:len(slab):len(slab)]
		}
		return &logical.Node{Op: &logical.ParallelizeSource{SlotRows: slotRows, Names: s.Columns}}, nil
	default:
		return nil, unknownKindError("source", s.Kind, knownSourceKinds)
	}
}

func buildOp(op *Op, idx int) (logical.Op, error) {
	where := fmt.Sprintf("op %d (%s)", idx, op.Kind)
	needUDF := func() (*logical.UDFSpec, error) {
		if op.UDF == nil {
			return nil, fmt.Errorf("spec: %s needs a udf", where)
		}
		return parseUDF(op.UDF, where)
	}
	switch op.Kind {
	case "map":
		u, err := needUDF()
		if err != nil {
			return nil, err
		}
		return &logical.MapOp{UDF: u}, nil
	case "filter":
		u, err := needUDF()
		if err != nil {
			return nil, err
		}
		return &logical.FilterOp{UDF: u}, nil
	case "withColumn":
		u, err := needUDF()
		if err != nil {
			return nil, err
		}
		if op.Col == "" {
			return nil, fmt.Errorf("spec: %s needs col", where)
		}
		return &logical.WithColumnOp{Col: op.Col, UDF: u}, nil
	case "mapColumn":
		u, err := needUDF()
		if err != nil {
			return nil, err
		}
		if op.Col == "" {
			return nil, fmt.Errorf("spec: %s needs col", where)
		}
		return &logical.MapColumnOp{Col: op.Col, UDF: u}, nil
	case "renameColumn":
		if op.Old == "" || op.New == "" {
			return nil, fmt.Errorf("spec: %s needs old and new", where)
		}
		return &logical.RenameOp{Old: op.Old, New: op.New}, nil
	case "selectColumns":
		if len(op.Cols) == 0 {
			return nil, fmt.Errorf("spec: %s needs cols", where)
		}
		return &logical.SelectOp{Cols: op.Cols}, nil
	case "resolve":
		u, err := needUDF()
		if err != nil {
			return nil, err
		}
		exc, err := parseExc(op.Exc, where)
		if err != nil {
			return nil, err
		}
		return &logical.ResolveOp{Exc: exc, UDF: u}, nil
	case "ignore":
		exc, err := parseExc(op.Exc, where)
		if err != nil {
			return nil, err
		}
		return &logical.IgnoreOp{Exc: exc}, nil
	case "join":
		if op.Build == nil {
			return nil, fmt.Errorf("spec: %s needs a build pipeline", where)
		}
		if op.LeftKey == "" || op.RightKey == "" {
			return nil, fmt.Errorf("spec: %s needs left_key and right_key", where)
		}
		build, err := buildChain(op.Build)
		if err != nil {
			return nil, fmt.Errorf("spec: %s build side: %w", where, err)
		}
		return &logical.JoinOp{
			Build:       build,
			LeftKey:     op.LeftKey,
			RightKey:    op.RightKey,
			Left:        op.Left,
			LeftPrefix:  op.LeftPrefix,
			RightPrefix: op.RightPrefix,
		}, nil
	case "aggregate":
		if op.Agg == nil || op.Comb == nil {
			return nil, fmt.Errorf("spec: %s needs agg and comb UDFs", where)
		}
		agg, err := parseUDF(op.Agg, where)
		if err != nil {
			return nil, err
		}
		comb, err := parseUDF(op.Comb, where)
		if err != nil {
			return nil, err
		}
		return &logical.AggregateOp{Agg: agg, Comb: comb, Initial: boxAny(op.Initial)}, nil
	case "unique":
		return &logical.UniqueOp{}, nil
	case "cache":
		return &logical.CacheOp{}, nil
	default:
		return nil, unknownKindError("op", op.Kind, knownOpKinds)
	}
}

func parseUDF(u *UDF, where string) (*logical.UDFSpec, error) {
	var globals map[string]pyvalue.Value
	if len(u.Globals) > 0 {
		globals = make(map[string]pyvalue.Value, len(u.Globals))
		for k, v := range u.Globals {
			globals[k] = boxAny(v)
		}
	}
	s, err := logical.ParseUDF(u.Code, globals)
	if err != nil {
		return nil, fmt.Errorf("spec: %s: %w", where, err)
	}
	return s, nil
}

// excNames maps wire names to exception kinds (user-facing classes
// only; internal codes are not addressable from specs).
var excNames = map[string]pyvalue.ExcKind{
	"TypeError":         pyvalue.ExcTypeError,
	"ValueError":        pyvalue.ExcValueError,
	"ZeroDivisionError": pyvalue.ExcZeroDivisionError,
	"IndexError":        pyvalue.ExcIndexError,
	"KeyError":          pyvalue.ExcKeyError,
	"AttributeError":    pyvalue.ExcAttributeError,
	"OverflowError":     pyvalue.ExcOverflowError,
	"NameError":         pyvalue.ExcNameError,
}

func parseExc(name, where string) (pyvalue.ExcKind, error) {
	if k, ok := excNames[name]; ok {
		return k, nil
	}
	known := make([]string, 0, len(excNames))
	for n := range excNames {
		known = append(known, n)
	}
	return 0, unknownKindError(where+" exception", name, known)
}

// resolve applies the wire options over engine defaults.
func (o *Options) resolve() core.Options {
	opts := core.DefaultOptions()
	if o == nil {
		return opts
	}
	if o.Executors > 0 {
		opts.Executors = o.Executors
	}
	if o.PartitionRows > 0 {
		opts.PartitionRows = o.PartitionRows
	}
	if o.SampleSize > 0 {
		opts.Sample.Size = o.SampleSize
	}
	if o.NullThreshold > 0 {
		opts.Sample.Delta = o.NullThreshold
	}
	if o.NullOptimization != nil {
		opts.Sample.DisableNullOpt = !*o.NullOptimization
	}
	if o.ProjectionPushdown != nil {
		opts.Logical.ProjectionPushdown = *o.ProjectionPushdown
	}
	if o.FilterPushdown != nil {
		opts.Logical.FilterPushdown = *o.FilterPushdown
	}
	if o.JoinReorder != nil {
		opts.Logical.JoinReorder = *o.JoinReorder
	}
	if o.StageFusion != nil {
		opts.Fusion = *o.StageFusion
	}
	if o.CompilerOptimizations != nil {
		opts.Codegen = codegen.Options{Specialize: *o.CompilerOptimizations}
	}
	if o.Seed != 0 {
		opts.Seed = o.Seed
	}
	if o.Streaming != nil {
		opts.Streaming = *o.Streaming
	}
	if o.Columnar != nil {
		opts.Columnar = *o.Columnar
	}
	if o.ChunkSize > 0 {
		opts.ChunkSize = o.ChunkSize
	}
	return opts
}

// BoxValue converts a decoded JSON wire value to a boxed Python value —
// the same conversion Build applies to UDF globals and aggregate
// initial values, exported for static verifiers that reason about spec
// literals without building a plan.
func BoxValue(v any) pyvalue.Value { return boxAny(v) }

// ExcKindFor resolves a wire exception-class name (e.g. "TypeError") to
// its exception kind. ok is false for names specs cannot address.
func ExcKindFor(name string) (pyvalue.ExcKind, bool) {
	k, ok := excNames[name]
	return k, ok
}

// boxAny converts a decoded JSON value to a boxed Python value.
func boxAny(v any) pyvalue.Value {
	switch v := v.(type) {
	case nil:
		return pyvalue.None{}
	case bool:
		return pyvalue.Bool(v)
	case int64:
		return pyvalue.Int(v)
	case int:
		return pyvalue.Int(int64(v))
	case float64:
		return pyvalue.Float(v)
	case string:
		return pyvalue.Str(v)
	case []any:
		items := make([]pyvalue.Value, len(v))
		for i, it := range v {
			items[i] = boxAny(it)
		}
		return &pyvalue.List{Items: items}
	case map[string]any:
		d := pyvalue.NewDict()
		for k, it := range v {
			d.Set(k, boxAny(it))
		}
		return d
	case pyvalue.Value:
		return v
	default:
		return pyvalue.Str(fmt.Sprint(v))
	}
}

// unboxAny converts a boxed Python value back to the wire's Go form
// (tuples flatten to lists — documented lossy; specs rarely carry them).
func unboxAny(v pyvalue.Value) any {
	switch v := v.(type) {
	case nil:
		return nil
	case pyvalue.None:
		return nil
	case pyvalue.Bool:
		return bool(v)
	case pyvalue.Int:
		return int64(v)
	case pyvalue.Float:
		return float64(v)
	case pyvalue.Str:
		return string(v)
	case *pyvalue.List:
		out := make([]any, len(v.Items))
		for i, it := range v.Items {
			out[i] = unboxAny(it)
		}
		return out
	case *pyvalue.Tuple:
		out := make([]any, len(v.Items))
		for i, it := range v.Items {
			out[i] = unboxAny(it)
		}
		return out
	case *pyvalue.Dict:
		out := map[string]any{}
		for _, k := range v.Keys() {
			val, _ := v.Get(k)
			out[k] = unboxAny(val)
		}
		return out
	default:
		return pyvalue.ToStr(v)
	}
}
