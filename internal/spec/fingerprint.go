package spec

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strings"
)

// sampleBytes is how much of each input file the fingerprint reads.
// The engine's normal case is decided by sampling the input prefix, so
// the prefix (plus the file size) is exactly what determines whether a
// cached compilation's specialization still matches. Fingerprints are a
// performance signal only — a collision or drifted tail can never
// produce wrong results, because non-conforming rows are classifier
// rejects that flow through the general path.
const sampleBytes = 64 << 10

// Fingerprint derives the compiled-pipeline cache key: a hash over the
// canonical spec encoding (UDF sources, globals, op chain, options,
// sink) plus, for every file-backed source in the pipeline (join build
// sides included), each file's size and first 64 KiB. Byte-identical
// resubmissions of the same spec over unchanged inputs map to the same
// key; editing a UDF, an option or the input prefix changes it.
//
// Unreadable files hash their error string instead of failing: the
// submission will surface the real error when the job runs, and a
// missing file must not collide with an empty one.
func (p *Pipeline) Fingerprint() (string, error) {
	canonical, err := p.Encode()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(canonical)
	fingerprintSources(h, p)
	return hex.EncodeToString(h.Sum(nil)), nil
}

func fingerprintSources(h io.Writer, p *Pipeline) {
	if p == nil {
		return
	}
	if p.Source.Path != "" && p.Source.Data == "" && len(p.Source.Rows) == 0 {
		for _, path := range strings.Split(p.Source.Path, ",") {
			fingerprintFile(h, strings.TrimSpace(path))
		}
	}
	for i := range p.Ops {
		fingerprintSources(h, p.Ops[i].Build)
	}
}

func fingerprintFile(h io.Writer, path string) {
	io.WriteString(h, "\x00file:")
	io.WriteString(h, path)
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(h, "\x00err:%v", err)
		return
	}
	defer f.Close()
	var size int64 = -1
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	var szBuf [8]byte
	binary.LittleEndian.PutUint64(szBuf[:], uint64(size))
	h.Write(szBuf[:])
	io.CopyN(h, f, sampleBytes)
}
