package spec

import (
	"fmt"

	"github.com/gotuplex/tuplex/internal/core"
	"github.com/gotuplex/tuplex/internal/logical"
	"github.com/gotuplex/tuplex/internal/rows"
)

// FromNode lifts a logical plan chain back into wire form. Every
// DataSet-constructible operator round-trips; the sink is left for the
// caller to fill (it is not part of the node chain, except aggregate
// folds which encode as ops). Optimizer-internal state (pushed
// projections) is deliberately not encoded: plans re-optimize on every
// cold build, so the wire form stays a pure description of user intent.
func FromNode(node *logical.Node, opts core.Options) (*Pipeline, error) {
	p, err := fromChain(node)
	if err != nil {
		return nil, err
	}
	p.V = Version
	p.Options = fromOptions(opts)
	return p, nil
}

func fromChain(node *logical.Node) (*Pipeline, error) {
	chain := node.Chain()
	if len(chain) == 0 {
		return nil, fmt.Errorf("spec: empty plan")
	}
	p := &Pipeline{}
	src, err := fromSourceOp(chain[0].Op)
	if err != nil {
		return nil, err
	}
	p.Source = *src
	for _, nd := range chain[1:] {
		op, err := fromOp(nd.Op)
		if err != nil {
			return nil, err
		}
		p.Ops = append(p.Ops, *op)
	}
	return p, nil
}

func fromSourceOp(op logical.Op) (*Source, error) {
	switch src := op.(type) {
	case *logical.CSVSource:
		s := &Source{
			Kind:       "csv",
			Path:       src.Path,
			Data:       string(src.Data),
			Columns:    src.Columns,
			NullValues: src.NullValues,
		}
		if src.Delim != 0 && src.Delim != ',' {
			s.Delim = string(src.Delim)
		}
		hdr := src.Header
		s.Header = &hdr
		return s, nil
	case *logical.TextSource:
		return &Source{Kind: "text", Path: src.Path, Data: string(src.Data), Column: src.Column}, nil
	case *logical.ParallelizeSource:
		s := &Source{Kind: "parallelize", Columns: src.Names}
		if src.SlotRows != nil {
			s.Rows = make([][]any, len(src.SlotRows))
			for i, r := range src.SlotRows {
				vals := rows.RowToValues(r)
				row := make([]any, len(vals))
				for j, v := range vals {
					row[j] = unboxAny(v)
				}
				s.Rows[i] = row
			}
		} else {
			s.Rows = make([][]any, len(src.Rows))
			for i, r := range src.Rows {
				row := make([]any, len(r))
				for j, v := range r {
					row[j] = unboxAny(v)
				}
				s.Rows[i] = row
			}
		}
		return s, nil
	default:
		return nil, fmt.Errorf("spec: plan does not start at a source (got %s)", op.Name())
	}
}

func fromOp(lop logical.Op) (*Op, error) {
	switch lop := lop.(type) {
	case *logical.MapOp:
		return &Op{Kind: "map", UDF: fromUDF(lop.UDF)}, nil
	case *logical.FilterOp:
		return &Op{Kind: "filter", UDF: fromUDF(lop.UDF)}, nil
	case *logical.WithColumnOp:
		return &Op{Kind: "withColumn", Col: lop.Col, UDF: fromUDF(lop.UDF)}, nil
	case *logical.MapColumnOp:
		return &Op{Kind: "mapColumn", Col: lop.Col, UDF: fromUDF(lop.UDF)}, nil
	case *logical.RenameOp:
		return &Op{Kind: "renameColumn", Old: lop.Old, New: lop.New}, nil
	case *logical.SelectOp:
		return &Op{Kind: "selectColumns", Cols: lop.Cols}, nil
	case *logical.ResolveOp:
		return &Op{Kind: "resolve", Exc: lop.Exc.String(), UDF: fromUDF(lop.UDF)}, nil
	case *logical.IgnoreOp:
		return &Op{Kind: "ignore", Exc: lop.Exc.String()}, nil
	case *logical.JoinOp:
		build, err := fromChain(lop.Build)
		if err != nil {
			return nil, fmt.Errorf("spec: join build side: %w", err)
		}
		return &Op{
			Kind:        "join",
			Build:       build,
			LeftKey:     lop.LeftKey,
			RightKey:    lop.RightKey,
			Left:        lop.Left,
			LeftPrefix:  lop.LeftPrefix,
			RightPrefix: lop.RightPrefix,
		}, nil
	case *logical.AggregateOp:
		return &Op{
			Kind:    "aggregate",
			Agg:     fromUDF(lop.Agg),
			Comb:    fromUDF(lop.Comb),
			Initial: unboxAny(lop.Initial),
		}, nil
	case *logical.UniqueOp:
		return &Op{Kind: "unique"}, nil
	case *logical.CacheOp:
		return &Op{Kind: "cache"}, nil
	default:
		return nil, fmt.Errorf("spec: operator %s has no wire form", lop.Name())
	}
}

func fromUDF(u *logical.UDFSpec) *UDF {
	out := &UDF{Code: u.Source}
	if len(u.Globals) > 0 {
		out.Globals = make(map[string]any, len(u.Globals))
		for k, v := range u.Globals {
			out.Globals[k] = unboxAny(v)
		}
	}
	return out
}

// fromOptions encodes the resolved engine options in full: every field
// is explicit so a decoded plan runs with exactly the options it was
// built with, independent of the reading build's defaults. (Trace and
// telemetry configuration are process concerns, not plan content, and
// are not encoded.)
func fromOptions(o core.Options) *Options {
	b := func(v bool) *bool { return &v }
	return &Options{
		Executors:             o.Executors,
		PartitionRows:         o.PartitionRows,
		SampleSize:            o.Sample.Size,
		NullThreshold:         o.Sample.Delta,
		NullOptimization:      b(!o.Sample.DisableNullOpt),
		ProjectionPushdown:    b(o.Logical.ProjectionPushdown),
		FilterPushdown:        b(o.Logical.FilterPushdown),
		JoinReorder:           b(o.Logical.JoinReorder),
		StageFusion:           b(o.Fusion),
		CompilerOptimizations: b(o.Codegen.Specialize),
		Seed:                  o.Seed,
		Streaming:             b(o.Streaming),
		Columnar:              b(o.Columnar),
		ChunkSize:             o.ChunkSize,
	}
}
