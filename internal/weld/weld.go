// Package weld is the Weld-analog baseline of §6.2.2: fused, vectorized
// kernels over columnar arrays. Compute is as fast as tight Go loops over
// []float64/[]int64 get — but data must first be materialized into the
// columnar layout (via the Pandas-analog loader), which is exactly the
// end-to-end trade-off Figs. 9 and 10 measure against Tuplex's
// parser-inlined aggregation.
package weld

import (
	"fmt"
	"strings"

	"github.com/gotuplex/tuplex/internal/csvio"
	"github.com/gotuplex/tuplex/internal/pandaframe"
	"github.com/gotuplex/tuplex/internal/pyvalue"
)

// Q6Columns is the columnar lineitem layout.
type Q6Columns struct {
	Quantity      []int64
	ExtendedPrice []float64
	Discount      []float64
	ShipDate      []int64
}

// LoadQ6 materializes the lineitem CSV into columns (the "preload the Q6
// data into its columnar in-memory format" step of §6.2.2).
func LoadQ6(raw []byte) (*Q6Columns, error) {
	records := csvio.SplitRecords(raw)
	if len(records) < 2 {
		return nil, fmt.Errorf("weld: empty lineitem input")
	}
	records = records[1:]
	c := &Q6Columns{
		Quantity:      make([]int64, 0, len(records)),
		ExtendedPrice: make([]float64, 0, len(records)),
		Discount:      make([]float64, 0, len(records)),
		ShipDate:      make([]int64, 0, len(records)),
	}
	var cells []string
	for _, rec := range records {
		cells = csvio.SplitCells(rec, ',', cells)
		if len(cells) != 4 {
			continue
		}
		q, ok1 := csvio.ParseI64(cells[0])
		p, ok2 := csvio.ParseF64(cells[1])
		d, ok3 := csvio.ParseF64(cells[2])
		s, ok4 := csvio.ParseI64(cells[3])
		if !ok1 || !ok2 || !ok3 || !ok4 {
			continue
		}
		c.Quantity = append(c.Quantity, q)
		c.ExtendedPrice = append(c.ExtendedPrice, p)
		c.Discount = append(c.Discount, d)
		c.ShipDate = append(c.ShipDate, s)
	}
	return c, nil
}

// Q6 is the fused vectorized kernel: one pass, no branches beyond the
// predicate, no allocation.
func Q6(c *Q6Columns, dateLo, dateHi int64) float64 {
	revenue := 0.0
	qty, price, disc, ship := c.Quantity, c.ExtendedPrice, c.Discount, c.ShipDate
	n := len(qty)
	if len(price) < n || len(disc) < n || len(ship) < n {
		return 0
	}
	for i := 0; i < n; i++ {
		if ship[i] >= dateLo && ship[i] < dateHi &&
			disc[i] >= 0.05 && disc[i] <= 0.07 && qty[i] < 24 {
			revenue += price[i] * disc[i]
		}
	}
	return revenue
}

// Clean311 is the fused cleaning kernel over a boxed zip column (as
// loaded by the Pandas analog): normalize, validate, build the unique
// set in one pass.
func Clean311(zips []pyvalue.Value) []string {
	seen := make(map[string]struct{}, 64)
	var out []string
	for _, v := range zips {
		var s string
		switch v := v.(type) {
		case pyvalue.Str:
			s = string(v)
		case pyvalue.Int:
			s = fmt.Sprintf("%d", int64(v))
		case pyvalue.Float:
			s = fmt.Sprintf("%d", int64(v))
		default:
			continue
		}
		if i := strings.IndexByte(s, '.'); i >= 0 {
			s = s[:i]
		}
		if i := strings.IndexByte(s, '-'); i >= 0 {
			s = s[:i]
		}
		if len(s) != 5 || s == "00000" {
			continue
		}
		ok := true
		for i := 0; i < 5; i++ {
			if s[i] < '0' || s[i] > '9' {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if _, dup := seen[s]; !dup {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	return out
}

// Run311EndToEnd is the full Weld-style run: Pandas-analog load, then
// the fused kernel.
func Run311EndToEnd(raw []byte) ([]string, error) {
	zips, err := pandaframe.Run311Load(raw)
	if err != nil {
		return nil, err
	}
	return Clean311(zips), nil
}
