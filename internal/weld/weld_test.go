package weld

import (
	"math"
	"testing"

	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/handopt"
)

func TestQ6KernelMatchesNative(t *testing.T) {
	raw := data.TPCHLineitem(data.TPCHConfig{Rows: 8000, Seed: 3})
	cols, err := LoadQ6(raw)
	if err != nil {
		t.Fatal(err)
	}
	got := Q6(cols, data.Q6DateLo, data.Q6DateHi)
	want := handopt.Q6(raw, data.Q6DateLo, data.Q6DateHi)
	if math.Abs(got-want) > 1e-6*math.Max(1, want) {
		t.Fatalf("got %.4f want %.4f", got, want)
	}
}

func TestClean311MatchesNative(t *testing.T) {
	raw := data.ThreeOneOne(data.ThreeOneOneConfig{Rows: 3000, Seed: 8})
	got, err := Run311EndToEnd(raw)
	if err != nil {
		t.Fatal(err)
	}
	want := handopt.ThreeOneOne(raw)
	gotSet := map[string]bool{}
	for _, z := range got {
		gotSet[z] = true
	}
	if len(gotSet) != len(want) {
		t.Fatalf("got %d zips (%v), want %d (%v)", len(gotSet), got, len(want), want)
	}
	for _, z := range want {
		if !gotSet[z] {
			t.Fatalf("missing %s", z)
		}
	}
}
