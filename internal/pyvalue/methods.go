package pyvalue

import (
	"strings"
)

// CallMethod dispatches obj.name(args). It implements the string, list,
// dict and match-object methods used by data-wrangling UDFs.
func CallMethod(obj Value, name string, args []Value) (Value, error) {
	switch o := obj.(type) {
	case Str:
		return strMethod(o, name, args)
	case *List:
		return listMethod(o, name, args)
	case *Dict:
		return dictMethod(o, name, args)
	case *Match:
		return matchMethod(o, name, args)
	case None:
		return nil, Raise(ExcAttributeError, "'NoneType' object has no attribute %q", name)
	default:
		return nil, Raise(ExcAttributeError, "%q object has no attribute %q", TypeName(obj), name)
	}
}

func wantStrArg(name string, args []Value, i int) (string, error) {
	if i >= len(args) {
		return "", Raise(ExcTypeError, "%s() missing argument %d", name, i+1)
	}
	s, ok := args[i].(Str)
	if !ok {
		return "", Raise(ExcTypeError, "%s() argument must be str, not %q", name, TypeName(args[i]))
	}
	return string(s), nil
}

func strMethod(s Str, name string, args []Value) (Value, error) {
	str := string(s)
	switch name {
	case "find", "rfind", "index", "rindex":
		sub, err := wantStrArg(name, args, 0)
		if err != nil {
			return nil, err
		}
		lo, hi := int64(0), int64(len(str))
		if len(args) >= 2 {
			if v, ok := asInt(args[1]); ok {
				lo = v
			}
		}
		if len(args) >= 3 {
			if v, ok := asInt(args[2]); ok {
				hi = v
			}
		}
		start, stop := SliceBounds(&lo, &hi, 1, int64(len(str)))
		region := ""
		if start < stop {
			region = str[start:stop]
		}
		var idx int
		if name == "find" || name == "index" {
			idx = strings.Index(region, sub)
		} else {
			idx = strings.LastIndex(region, sub)
		}
		if idx < 0 {
			if name == "index" || name == "rindex" {
				return nil, Raise(ExcValueError, "substring not found")
			}
			return Int(-1), nil
		}
		return Int(int64(idx) + start), nil
	case "lower":
		return Str(strings.ToLower(str)), nil
	case "upper":
		return Str(strings.ToUpper(str)), nil
	case "strip", "lstrip", "rstrip":
		cutset := " \t\n\r\v\f"
		if len(args) >= 1 {
			if _, isNone := args[0].(None); !isNone {
				c, err := wantStrArg(name, args, 0)
				if err != nil {
					return nil, err
				}
				cutset = c
			}
		}
		switch name {
		case "strip":
			return Str(strings.Trim(str, cutset)), nil
		case "lstrip":
			return Str(strings.TrimLeft(str, cutset)), nil
		default:
			return Str(strings.TrimRight(str, cutset)), nil
		}
	case "replace":
		old, err := wantStrArg(name, args, 0)
		if err != nil {
			return nil, err
		}
		new, err := wantStrArg(name, args, 1)
		if err != nil {
			return nil, err
		}
		count := -1
		if len(args) >= 3 {
			if v, ok := asInt(args[2]); ok {
				count = int(v)
			}
		}
		return Str(strings.Replace(str, old, new, count)), nil
	case "split":
		if len(args) == 0 || args[0].Kind() == KNone {
			return splitWhitespace(str), nil
		}
		sep, err := wantStrArg(name, args, 0)
		if err != nil {
			return nil, err
		}
		if sep == "" {
			return nil, Raise(ExcValueError, "empty separator")
		}
		n := -1
		if len(args) >= 2 {
			if v, ok := asInt(args[1]); ok && v >= 0 {
				n = int(v) + 1
			}
		}
		parts := strings.SplitN(str, sep, n)
		items := make([]Value, len(parts))
		for i, p := range parts {
			items[i] = Str(p)
		}
		return &List{Items: items}, nil
	case "join":
		if len(args) != 1 {
			return nil, Raise(ExcTypeError, "join() takes exactly one argument (%d given)", len(args))
		}
		var items []Value
		switch a := args[0].(type) {
		case *List:
			items = a.Items
		case *Tuple:
			items = a.Items
		default:
			return nil, Raise(ExcTypeError, "can only join an iterable")
		}
		parts := make([]string, len(items))
		for i, it := range items {
			is, ok := it.(Str)
			if !ok {
				return nil, Raise(ExcTypeError, "sequence item %d: expected str instance, %s found", i, TypeName(it))
			}
			parts[i] = string(is)
		}
		return Str(strings.Join(parts, str)), nil
	case "startswith":
		p, err := wantStrArg(name, args, 0)
		if err != nil {
			return nil, err
		}
		return Bool(strings.HasPrefix(str, p)), nil
	case "endswith":
		p, err := wantStrArg(name, args, 0)
		if err != nil {
			return nil, err
		}
		return Bool(strings.HasSuffix(str, p)), nil
	case "capitalize":
		return Str(Capitalize(str)), nil
	case "title":
		return Str(TitleCase(str)), nil
	case "format":
		return StrFormat(str, args)
	case "zfill":
		if len(args) != 1 {
			return nil, Raise(ExcTypeError, "zfill() takes exactly 1 argument")
		}
		w, ok := asInt(args[0])
		if !ok {
			return nil, Raise(ExcTypeError, "zfill() argument must be int")
		}
		return Str(zfill(str, int(w))), nil
	case "count":
		sub, err := wantStrArg(name, args, 0)
		if err != nil {
			return nil, err
		}
		if sub == "" {
			return Int(int64(len(str) + 1)), nil
		}
		return Int(int64(strings.Count(str, sub))), nil
	case "isdigit":
		return Bool(len(str) > 0 && strings.IndexFunc(str, func(r rune) bool { return r < '0' || r > '9' }) < 0), nil
	case "isalpha":
		return Bool(len(str) > 0 && strings.IndexFunc(str, func(r rune) bool {
			return !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z')
		}) < 0), nil
	case "isalnum":
		return Bool(len(str) > 0 && strings.IndexFunc(str, func(r rune) bool {
			return !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
		}) < 0), nil
	case "isspace":
		return Bool(len(str) > 0 && strings.TrimSpace(str) == ""), nil
	case "islower":
		return Bool(strings.ToLower(str) == str && strings.ToUpper(str) != str), nil
	case "isupper":
		return Bool(strings.ToUpper(str) == str && strings.ToLower(str) != str), nil
	case "ljust":
		return just(str, args, false)
	case "rjust":
		return just(str, args, true)
	case "swapcase":
		return Str(strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z':
				return r - 32
			case r >= 'A' && r <= 'Z':
				return r + 32
			default:
				return r
			}
		}, str)), nil
	default:
		return nil, Raise(ExcAttributeError, "'str' object has no attribute %q", name)
	}
}

func just(str string, args []Value, right bool) (Value, error) {
	if len(args) < 1 {
		return nil, Raise(ExcTypeError, "just() takes at least 1 argument")
	}
	w, ok := asInt(args[0])
	if !ok {
		return nil, Raise(ExcTypeError, "just() width must be int")
	}
	fill := " "
	if len(args) >= 2 {
		f, err := wantStrArg("just", args, 1)
		if err != nil {
			return nil, err
		}
		if len(f) != 1 {
			return nil, Raise(ExcTypeError, "the fill character must be exactly one character long")
		}
		fill = f
	}
	pad := int(w) - len(str)
	if pad <= 0 {
		return Str(str), nil
	}
	if right {
		return Str(strings.Repeat(fill, pad) + str), nil
	}
	return Str(str + strings.Repeat(fill, pad)), nil
}

func zfill(s string, width int) string {
	if len(s) >= width {
		return s
	}
	sign := ""
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		sign, s = s[:1], s[1:]
	}
	return sign + strings.Repeat("0", width-len(sign)-len(s)) + s
}

// splitWhitespace matches Python's str.split() with no separator: runs of
// whitespace separate fields and leading/trailing whitespace is dropped.
func splitWhitespace(s string) *List {
	fields := strings.Fields(s)
	items := make([]Value, len(fields))
	for i, f := range fields {
		items[i] = Str(f)
	}
	return &List{Items: items}
}

// Capitalize implements str.capitalize: first character upper, rest
// lower.
func Capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + strings.ToLower(s[1:])
}

// TitleCase implements str.title (ASCII).
func TitleCase(s string) string {
	var sb strings.Builder
	prevAlpha := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		isAlpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
		switch {
		case isAlpha && !prevAlpha:
			sb.WriteString(strings.ToUpper(string(c)))
		case isAlpha:
			sb.WriteString(strings.ToLower(string(c)))
		default:
			sb.WriteByte(c)
		}
		prevAlpha = isAlpha
	}
	return sb.String()
}

// Capwords implements string.capwords(s): split on whitespace, capitalize
// each word, join with single spaces.
func Capwords(s string) string {
	fields := strings.Fields(s)
	for i, f := range fields {
		fields[i] = Capitalize(f)
	}
	return strings.Join(fields, " ")
}

func listMethod(l *List, name string, args []Value) (Value, error) {
	switch name {
	case "append":
		if len(args) != 1 {
			return nil, Raise(ExcTypeError, "append() takes exactly one argument (%d given)", len(args))
		}
		l.Items = append(l.Items, args[0])
		return None{}, nil
	case "extend":
		if len(args) != 1 {
			return nil, Raise(ExcTypeError, "extend() takes exactly one argument")
		}
		switch a := args[0].(type) {
		case *List:
			l.Items = append(l.Items, a.Items...)
		case *Tuple:
			l.Items = append(l.Items, a.Items...)
		default:
			return nil, Raise(ExcTypeError, "%q object is not iterable", TypeName(args[0]))
		}
		return None{}, nil
	case "pop":
		if len(l.Items) == 0 {
			return nil, Raise(ExcIndexError, "pop from empty list")
		}
		i := int64(len(l.Items) - 1)
		if len(args) >= 1 {
			v, ok := asInt(args[0])
			if !ok {
				return nil, Raise(ExcTypeError, "pop() argument must be int")
			}
			i = v
			if i < 0 {
				i += int64(len(l.Items))
			}
			if i < 0 || i >= int64(len(l.Items)) {
				return nil, Raise(ExcIndexError, "pop index out of range")
			}
		}
		v := l.Items[i]
		l.Items = append(l.Items[:i], l.Items[i+1:]...)
		return v, nil
	case "count":
		if len(args) != 1 {
			return nil, Raise(ExcTypeError, "count() takes exactly one argument")
		}
		n := int64(0)
		for _, it := range l.Items {
			if Equal(it, args[0]) {
				n++
			}
		}
		return Int(n), nil
	case "index":
		if len(args) < 1 {
			return nil, Raise(ExcTypeError, "index() takes at least 1 argument")
		}
		for i, it := range l.Items {
			if Equal(it, args[0]) {
				return Int(int64(i)), nil
			}
		}
		return nil, Raise(ExcValueError, "%s is not in list", Repr(args[0]))
	case "reverse":
		for i, j := 0, len(l.Items)-1; i < j; i, j = i+1, j-1 {
			l.Items[i], l.Items[j] = l.Items[j], l.Items[i]
		}
		return None{}, nil
	default:
		return nil, Raise(ExcAttributeError, "'list' object has no attribute %q", name)
	}
}

func dictMethod(d *Dict, name string, args []Value) (Value, error) {
	switch name {
	case "get":
		if len(args) < 1 {
			return nil, Raise(ExcTypeError, "get expected at least 1 argument, got 0")
		}
		k, ok := args[0].(Str)
		if !ok {
			if len(args) >= 2 {
				return args[1], nil
			}
			return None{}, nil
		}
		if v, found := d.Get(string(k)); found {
			return v, nil
		}
		if len(args) >= 2 {
			return args[1], nil
		}
		return None{}, nil
	case "keys":
		items := make([]Value, 0, d.Len())
		for _, k := range d.Keys() {
			items = append(items, Str(k))
		}
		return &List{Items: items}, nil
	case "values":
		items := make([]Value, 0, d.Len())
		for _, k := range d.Keys() {
			v, _ := d.Get(k)
			items = append(items, v)
		}
		return &List{Items: items}, nil
	case "items":
		items := make([]Value, 0, d.Len())
		for _, k := range d.Keys() {
			v, _ := d.Get(k)
			items = append(items, &Tuple{Items: []Value{Str(k), v}})
		}
		return &List{Items: items}, nil
	default:
		return nil, Raise(ExcAttributeError, "'dict' object has no attribute %q", name)
	}
}

func matchMethod(m *Match, name string, args []Value) (Value, error) {
	switch name {
	case "group":
		i := int64(0)
		if len(args) >= 1 {
			v, ok := asInt(args[0])
			if !ok {
				return nil, Raise(ExcIndexError, "no such group")
			}
			i = v
		}
		if i < 0 || int(i) >= len(m.Groups) {
			return nil, Raise(ExcIndexError, "no such group")
		}
		if !m.Present[i] {
			return None{}, nil
		}
		return Str(m.Groups[i]), nil
	case "groups":
		items := make([]Value, 0, len(m.Groups)-1)
		for i := 1; i < len(m.Groups); i++ {
			if m.Present[i] {
				items = append(items, Str(m.Groups[i]))
			} else {
				items = append(items, None{})
			}
		}
		return &Tuple{Items: items}, nil
	default:
		return nil, Raise(ExcAttributeError, "'re.Match' object has no attribute %q", name)
	}
}
