package pyvalue

import (
	"math"
	"testing"
	"testing/quick"
)

func wantVal(t *testing.T, got Value, err error, want Value) {
	t.Helper()
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if !Equal(got, want) || got.Kind() != want.Kind() {
		t.Fatalf("got %s (%s), want %s (%s)", Repr(got), TypeName(got), Repr(want), TypeName(want))
	}
}

func wantExc(t *testing.T, err error, kind ExcKind) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected %v, got nil error", kind)
	}
	if KindOf(err) != kind {
		t.Fatalf("expected %v, got %v", kind, err)
	}
}

func TestArithmeticTypes(t *testing.T) {
	v, err := Add(Int(2), Int(3))
	wantVal(t, v, err, Int(5))
	v, err = Add(Int(2), Float(0.5))
	wantVal(t, v, err, Float(2.5))
	v, err = Add(Bool(true), Int(1)) // bool is an int in Python
	wantVal(t, v, err, Int(2))
	v, err = Add(Str("ab"), Str("cd"))
	wantVal(t, v, err, Str("abcd"))
	_, err = Add(Str("ab"), Int(1))
	wantExc(t, err, ExcTypeError)
	_, err = Add(None{}, Float(1.609))
	wantExc(t, err, ExcTypeError)
}

func TestTrueDivAlwaysFloat(t *testing.T) {
	v, err := TrueDiv(Int(7), Int(2))
	wantVal(t, v, err, Float(3.5))
	v, err = TrueDiv(Int(6), Int(3))
	wantVal(t, v, err, Float(2.0))
	_, err = TrueDiv(Int(1), Int(0))
	wantExc(t, err, ExcZeroDivisionError)
}

func TestFloorDivAndMod(t *testing.T) {
	// Python: -7 // 2 == -4, -7 % 2 == 1 (divisor's sign).
	v, err := FloorDiv(Int(-7), Int(2))
	wantVal(t, v, err, Int(-4))
	v, err = Mod(Int(-7), Int(2))
	wantVal(t, v, err, Int(1))
	v, err = Mod(Int(7), Int(-2))
	wantVal(t, v, err, Int(-1))
	v, err = FloorDiv(Float(7.5), Int(2))
	wantVal(t, v, err, Float(3.0))
	_, err = Mod(Int(1), Int(0))
	wantExc(t, err, ExcZeroDivisionError)
}

func TestFloorDivModInvariant(t *testing.T) {
	// (x // y) * y + (x % y) == x for all non-zero y.
	f := func(x, y int64) bool {
		if y == 0 {
			return true
		}
		return FloorDivInt(x, y)*y+FloorModInt(x, y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowSemantics(t *testing.T) {
	v, err := Pow(Int(2), Int(10))
	wantVal(t, v, err, Int(1024))
	v, err = Pow(Int(2), Int(-1)) // negative exponent -> float
	wantVal(t, v, err, Float(0.5))
	v, err = Pow(Float(2), Int(2))
	wantVal(t, v, err, Float(4.0))
}

func TestStringRepeat(t *testing.T) {
	v, err := Mul(Str("ab"), Int(3))
	wantVal(t, v, err, Str("ababab"))
	v, err = Mul(Int(0), Str("ab"))
	wantVal(t, v, err, Str(""))
	v, err = Mul(Str("x"), Int(-2))
	wantVal(t, v, err, Str(""))
}

func TestCompareMixedNumeric(t *testing.T) {
	v, err := Compare("<", Int(1), Float(1.5))
	wantVal(t, v, err, Bool(true))
	v, err = Compare("==", Int(1), Float(1.0))
	wantVal(t, v, err, Bool(true))
	v, err = Compare("==", Str("1"), Int(1))
	wantVal(t, v, err, Bool(false)) // cross-type == is False, not an error
	_, err = Compare("<", Str("a"), Int(1))
	wantExc(t, err, ExcTypeError) // cross-type < raises
}

func TestCompareStrings(t *testing.T) {
	v, err := Compare("<", Str("abc"), Str("abd"))
	wantVal(t, v, err, Bool(true))
	v, err = Compare(">=", Str("b"), Str("ab"))
	wantVal(t, v, err, Bool(true))
}

func TestContains(t *testing.T) {
	v, err := Contains(Str("hello world"), Str("lo w"))
	wantVal(t, v, err, Bool(true))
	v, err = Contains(&List{Items: []Value{Int(1), Str("a")}}, Str("a"))
	wantVal(t, v, err, Bool(true))
	v, err = Contains(&Tuple{Items: []Value{Str("a"), Str("b")}}, Str("c"))
	wantVal(t, v, err, Bool(false))
	_, err = Contains(Int(5), Int(1))
	wantExc(t, err, ExcTypeError)
}

func TestTruthiness(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{None{}, false}, {Bool(false), false}, {Int(0), false},
		{Float(0), false}, {Str(""), false}, {&List{}, false},
		{&Dict{}, false}, {Int(7), true}, {Str("0"), true},
		{Float(-0.5), true}, {&List{Items: []Value{None{}}}, true},
	}
	for _, c := range cases {
		if got := Truth(c.v); got != c.want {
			t.Errorf("Truth(%s) = %v, want %v", Repr(c.v), got, c.want)
		}
	}
}

func TestIndexingAndSlicing(t *testing.T) {
	s := Str("hello")
	v, err := GetIndex(s, Int(0))
	wantVal(t, v, err, Str("h"))
	v, err = GetIndex(s, Int(-1))
	wantVal(t, v, err, Str("o"))
	_, err = GetIndex(s, Int(5))
	wantExc(t, err, ExcIndexError)
	_, err = GetIndex(None{}, Int(0))
	wantExc(t, err, ExcTypeError)

	lo, hi := int64(1), int64(-1)
	v, err = GetSlice(s, &lo, &hi, nil)
	wantVal(t, v, err, Str("ell"))
	v, err = GetSlice(s, nil, &hi, nil)
	wantVal(t, v, err, Str("hell"))
	big := int64(100)
	v, err = GetSlice(s, nil, &big, nil) // clamping, no IndexError
	wantVal(t, v, err, Str("hello"))
	neg := int64(-100)
	v, err = GetSlice(s, &neg, nil, nil)
	wantVal(t, v, err, Str("hello"))
	step := int64(2)
	v, err = GetSlice(s, nil, nil, &step)
	wantVal(t, v, err, Str("hlo"))
	step = -1
	v, err = GetSlice(s, nil, nil, &step)
	wantVal(t, v, err, Str("olleh"))
}

func TestSliceEquivalenceWithPythonOracle(t *testing.T) {
	// Property: s[lo:hi] == ''.join(s[i] for i in range(*slice.indices)).
	s := "abcdefghij"
	f := func(lo, hi int8) bool {
		l, h := int64(lo), int64(hi)
		got, err := GetSlice(Str(s), &l, &h, nil)
		if err != nil {
			return false
		}
		// Oracle: resolve like Python's slice.indices.
		start, stop := SliceBounds(&l, &h, 1, int64(len(s)))
		want := ""
		for i := start; i < stop; i++ {
			want += string(s[i])
		}
		return string(got.(Str)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDictOps(t *testing.T) {
	d := NewDict()
	d.Set("b", Int(2))
	d.Set("a", Int(1))
	d.Set("b", Int(3)) // update keeps insertion order
	if got := d.Keys(); len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("keys = %v", got)
	}
	v, err := GetIndex(d, Str("b"))
	wantVal(t, v, err, Int(3))
	_, err = GetIndex(d, Str("zz"))
	wantExc(t, err, ExcKeyError)
}

func TestToIntSemantics(t *testing.T) {
	v, err := ToInt(Str("42"))
	wantVal(t, v, err, Int(42))
	v, err = ToInt(Str("  -17  ")) // whitespace ok
	wantVal(t, v, err, Int(-17))
	v, err = ToInt(Float(12.9)) // truncation toward zero
	wantVal(t, v, err, Int(12))
	v, err = ToInt(Float(-12.9))
	wantVal(t, v, err, Int(-12))
	_, err = ToInt(Str("12.5"))
	wantExc(t, err, ExcValueError)
	_, err = ToInt(Str(""))
	wantExc(t, err, ExcValueError)
	_, err = ToInt(Str("1,560"))
	wantExc(t, err, ExcValueError)
	_, err = ToInt(None{})
	wantExc(t, err, ExcTypeError)
}

func TestToFloatSemantics(t *testing.T) {
	v, err := ToFloat(Str("1.609"))
	wantVal(t, v, err, Float(1.609))
	v, err = ToFloat(Str("2e7"))
	wantVal(t, v, err, Float(2e7))
	v, err = ToFloat(Int(3))
	wantVal(t, v, err, Float(3))
	_, err = ToFloat(Str("abc"))
	wantExc(t, err, ExcValueError)
	_, err = ToFloat(None{})
	wantExc(t, err, ExcTypeError)
}

func TestReprAndStr(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{None{}, "None"},
		{Bool(true), "True"},
		{Int(-5), "-5"},
		{Float(1.609), "1.609"},
		{Float(2e7), "20000000.0"},
		{Float(3.0), "3.0"},
		{Str("a'b"), `'a\'b'`},
		{&Tuple{Items: []Value{Int(1)}}, "(1,)"},
		{&List{Items: []Value{Int(1), Str("x")}}, "[1, 'x']"},
	}
	for _, c := range cases {
		if got := Repr(c.v); got != c.want {
			t.Errorf("Repr(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if ToStr(Str("ab")) != "ab" {
		t.Error("str() of str must not quote")
	}
}

func TestFloatReprEdges(t *testing.T) {
	cases := map[float64]string{
		0.1:         "0.1",
		1e16:        "1e+16",
		1e-5:        "1e-05",
		0.0001:      "0.0001",
		123456.0:    "123456.0",
		math.Inf(1): "inf",
	}
	for f, want := range cases {
		if got := FloatRepr(f); got != want {
			t.Errorf("FloatRepr(%v) = %q, want %q", f, got, want)
		}
	}
}

func TestEqualityProperties(t *testing.T) {
	// Symmetry of Equal over a mixed pool of values.
	pool := []Value{
		None{}, Bool(true), Bool(false), Int(0), Int(1), Float(0),
		Float(1), Str(""), Str("1"), &List{Items: []Value{Int(1)}},
		&Tuple{Items: []Value{Int(1)}},
	}
	for _, a := range pool {
		for _, b := range pool {
			if Equal(a, b) != Equal(b, a) {
				t.Fatalf("Equal not symmetric for %s, %s", Repr(a), Repr(b))
			}
		}
		if !Equal(a, a) {
			t.Fatalf("Equal not reflexive for %s", Repr(a))
		}
	}
	if !Equal(Int(1), Bool(true)) || !Equal(Float(0), Bool(false)) {
		t.Fatal("numeric tower equality broken")
	}
	if Equal(Str("1"), Int(1)) {
		t.Fatal("cross-type equality should be False")
	}
}

func TestMinMaxRound(t *testing.T) {
	v, err := MinMax([]Value{Int(3), Float(1.5), Int(2)}, false)
	wantVal(t, v, err, Float(1.5))
	v, err = MinMax([]Value{Int(3), Float(1.5)}, true)
	wantVal(t, v, err, Int(3))
	v, err = Round(Float(2.5), nil) // banker's rounding
	wantVal(t, v, err, Int(2))
	v, err = Round(Float(3.5), nil)
	wantVal(t, v, err, Int(4))
	nd := int64(2)
	v, err = Round(Float(2.675), &nd)
	if err != nil {
		t.Fatal(err)
	}
	if f := float64(v.(Float)); math.Abs(f-2.67) > 0.011 {
		t.Fatalf("round(2.675, 2) = %v", f)
	}
}

func TestNegPosAbs(t *testing.T) {
	v, err := Neg(Int(5))
	wantVal(t, v, err, Int(-5))
	v, err = Neg(Bool(true))
	wantVal(t, v, err, Int(-1))
	_, err = Neg(Str("a"))
	wantExc(t, err, ExcTypeError)
	v, err = Abs(Float(-2.5))
	wantVal(t, v, err, Float(2.5))
}

func TestCopyIsDeep(t *testing.T) {
	inner := &List{Items: []Value{Int(1)}}
	d := NewDict()
	d.Set("k", inner)
	cp := Copy(d).(*Dict)
	got, _ := cp.Get("k")
	got.(*List).Items[0] = Int(99)
	if !Equal(inner.Items[0], Int(1)) {
		t.Fatal("Copy shared interior list")
	}
}

func TestMatchIndexing(t *testing.T) {
	m := &Match{Groups: []string{"ab cd", "ab", ""}, Present: []bool{true, true, false}}
	v, err := GetIndex(m, Int(1))
	wantVal(t, v, err, Str("ab"))
	v, err = GetIndex(m, Int(2))
	wantVal(t, v, err, None{})
	_, err = GetIndex(m, Int(3))
	wantExc(t, err, ExcIndexError)
}
