package pyvalue

import (
	"math"
	"strconv"
	"strings"
)

// Add implements Python +.
func Add(a, b Value) (Value, error) {
	if isIntLike(a) && isIntLike(b) {
		x, _ := asInt(a)
		y, _ := asInt(b)
		return Int(x + y), nil
	}
	if IsNumeric(a) && IsNumeric(b) {
		x, _ := asFloat(a)
		y, _ := asFloat(b)
		return Float(x + y), nil
	}
	if as, ok := a.(Str); ok {
		if bs, ok := b.(Str); ok {
			return as + bs, nil
		}
		return nil, Raise(ExcTypeError, "can only concatenate str (not %q) to str", TypeName(b))
	}
	if al, ok := a.(*List); ok {
		if bl, ok := b.(*List); ok {
			items := make([]Value, 0, len(al.Items)+len(bl.Items))
			items = append(items, al.Items...)
			items = append(items, bl.Items...)
			return &List{Items: items}, nil
		}
	}
	if at, ok := a.(*Tuple); ok {
		if bt, ok := b.(*Tuple); ok {
			items := make([]Value, 0, len(at.Items)+len(bt.Items))
			items = append(items, at.Items...)
			items = append(items, bt.Items...)
			return &Tuple{Items: items}, nil
		}
	}
	return nil, binTypeError("+", a, b)
}

// Sub implements Python -.
func Sub(a, b Value) (Value, error) {
	if isIntLike(a) && isIntLike(b) {
		x, _ := asInt(a)
		y, _ := asInt(b)
		return Int(x - y), nil
	}
	if IsNumeric(a) && IsNumeric(b) {
		x, _ := asFloat(a)
		y, _ := asFloat(b)
		return Float(x - y), nil
	}
	return nil, binTypeError("-", a, b)
}

// Mul implements Python *.
func Mul(a, b Value) (Value, error) {
	if isIntLike(a) && isIntLike(b) {
		x, _ := asInt(a)
		y, _ := asInt(b)
		return Int(x * y), nil
	}
	if IsNumeric(a) && IsNumeric(b) {
		x, _ := asFloat(a)
		y, _ := asFloat(b)
		return Float(x * y), nil
	}
	// str * int and int * str.
	if s, ok := a.(Str); ok {
		if n, ok := asInt(b); ok {
			return repeatStr(s, n), nil
		}
	}
	if s, ok := b.(Str); ok {
		if n, ok := asInt(a); ok {
			return repeatStr(s, n), nil
		}
	}
	if l, ok := a.(*List); ok {
		if n, ok := asInt(b); ok {
			return repeatList(l, n), nil
		}
	}
	if l, ok := b.(*List); ok {
		if n, ok := asInt(a); ok {
			return repeatList(l, n), nil
		}
	}
	return nil, binTypeError("*", a, b)
}

func repeatStr(s Str, n int64) Str {
	if n <= 0 {
		return ""
	}
	return Str(strings.Repeat(string(s), int(n)))
}

func repeatList(l *List, n int64) *List {
	if n <= 0 {
		return &List{}
	}
	items := make([]Value, 0, len(l.Items)*int(n))
	for range n {
		items = append(items, l.Items...)
	}
	return &List{Items: items}
}

// TrueDiv implements Python / (always float).
func TrueDiv(a, b Value) (Value, error) {
	x, aok := asFloat(a)
	y, bok := asFloat(b)
	if !aok || !bok {
		return nil, binTypeError("/", a, b)
	}
	if y == 0 {
		return nil, Raise(ExcZeroDivisionError, "division by zero")
	}
	return Float(x / y), nil
}

// FloorDiv implements Python //.
func FloorDiv(a, b Value) (Value, error) {
	if isIntLike(a) && isIntLike(b) {
		x, _ := asInt(a)
		y, _ := asInt(b)
		if y == 0 {
			return nil, Raise(ExcZeroDivisionError, "integer division or modulo by zero")
		}
		return Int(floorDivInt(x, y)), nil
	}
	x, aok := asFloat(a)
	y, bok := asFloat(b)
	if !aok || !bok {
		return nil, binTypeError("//", a, b)
	}
	if y == 0 {
		return nil, Raise(ExcZeroDivisionError, "float floor division by zero")
	}
	return Float(math.Floor(x / y)), nil
}

func floorDivInt(x, y int64) int64 {
	q := x / y
	if (x%y != 0) && ((x < 0) != (y < 0)) {
		q--
	}
	return q
}

// FloorModInt implements Python's % for int64 operands (result has the
// divisor's sign). Exported for reuse by the unboxed compiled path.
func FloorModInt(x, y int64) int64 {
	m := x % y
	if m != 0 && ((m < 0) != (y < 0)) {
		m += y
	}
	return m
}

// FloorModFloat implements Python's % for float operands.
func FloorModFloat(x, y float64) float64 {
	m := math.Mod(x, y)
	if m != 0 && ((m < 0) != (y < 0)) {
		m += y
	}
	return m
}

// FloorDivInt is the exported integer floor division for the compiled
// path.
func FloorDivInt(x, y int64) int64 { return floorDivInt(x, y) }

// Mod implements Python %: numeric modulo, or printf-style string
// formatting when the left operand is a str.
func Mod(a, b Value) (Value, error) {
	if s, ok := a.(Str); ok {
		return PercentFormat(string(s), b)
	}
	if isIntLike(a) && isIntLike(b) {
		x, _ := asInt(a)
		y, _ := asInt(b)
		if y == 0 {
			return nil, Raise(ExcZeroDivisionError, "integer division or modulo by zero")
		}
		return Int(FloorModInt(x, y)), nil
	}
	x, aok := asFloat(a)
	y, bok := asFloat(b)
	if !aok || !bok {
		return nil, binTypeError("%", a, b)
	}
	if y == 0 {
		return nil, Raise(ExcZeroDivisionError, "float modulo")
	}
	return Float(FloorModFloat(x, y)), nil
}

// Pow implements Python **. int**int with a non-negative exponent yields
// int; a negative exponent yields float (the paper uses this operator as
// its example of sample-traced result typing).
func Pow(a, b Value) (Value, error) {
	if isIntLike(a) && isIntLike(b) {
		x, _ := asInt(a)
		y, _ := asInt(b)
		if y >= 0 {
			return Int(ipow(x, y)), nil
		}
		if x == 0 {
			return nil, Raise(ExcZeroDivisionError, "0.0 cannot be raised to a negative power")
		}
		return Float(math.Pow(float64(x), float64(y))), nil
	}
	x, aok := asFloat(a)
	y, bok := asFloat(b)
	if !aok || !bok {
		return nil, binTypeError("** or pow()", a, b)
	}
	return Float(math.Pow(x, y)), nil
}

func ipow(base, exp int64) int64 {
	result := int64(1)
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}

// IPow is the exported integer power for the compiled path.
func IPow(base, exp int64) int64 { return ipow(base, exp) }

// BitAnd, BitOr, BitXor, LShift, RShift implement the integer bit ops.
func BitAnd(a, b Value) (Value, error) {
	return bitOp("&", a, b, func(x, y int64) int64 { return x & y })
}

// BitOr implements Python |.
func BitOr(a, b Value) (Value, error) {
	return bitOp("|", a, b, func(x, y int64) int64 { return x | y })
}

// BitXor implements Python ^.
func BitXor(a, b Value) (Value, error) {
	return bitOp("^", a, b, func(x, y int64) int64 { return x ^ y })
}

// LShift implements Python <<.
func LShift(a, b Value) (Value, error) {
	return bitOp("<<", a, b, func(x, y int64) int64 { return x << uint(y) })
}

// RShift implements Python >>.
func RShift(a, b Value) (Value, error) {
	return bitOp(">>", a, b, func(x, y int64) int64 { return x >> uint(y) })
}

func bitOp(op string, a, b Value, f func(x, y int64) int64) (Value, error) {
	x, aok := asInt(a)
	y, bok := asInt(b)
	if !aok || !bok {
		return nil, binTypeError(op, a, b)
	}
	return Int(f(x, y)), nil
}

// Neg implements unary -.
func Neg(v Value) (Value, error) {
	switch v := v.(type) {
	case Bool:
		if v {
			return Int(-1), nil
		}
		return Int(0), nil
	case Int:
		return -v, nil
	case Float:
		return -v, nil
	default:
		return nil, Raise(ExcTypeError, "bad operand type for unary -: %q", TypeName(v))
	}
}

// Pos implements unary +.
func Pos(v Value) (Value, error) {
	switch v := v.(type) {
	case Bool:
		if v {
			return Int(1), nil
		}
		return Int(0), nil
	case Int, Float:
		return v, nil
	default:
		return nil, Raise(ExcTypeError, "bad operand type for unary +: %q", TypeName(v))
	}
}

// Invert implements unary ~.
func Invert(v Value) (Value, error) {
	if x, ok := asInt(v); ok {
		return Int(^x), nil
	}
	return nil, Raise(ExcTypeError, "bad operand type for unary ~: %q", TypeName(v))
}

// Not implements `not v`.
func Not(v Value) Value { return Bool(!Truth(v)) }

// Compare implements a single comparison step. op is one of
// == != < <= > >= in "not in" is "is not".
func Compare(op string, a, b Value) (Value, error) {
	switch op {
	case "==":
		return Bool(Equal(a, b)), nil
	case "!=":
		return Bool(!Equal(a, b)), nil
	case "is":
		return Bool(is(a, b)), nil
	case "is not":
		return Bool(!is(a, b)), nil
	case "in":
		return Contains(b, a)
	case "not in":
		v, err := Contains(b, a)
		if err != nil {
			return nil, err
		}
		return Bool(!bool(v.(Bool))), nil
	}
	c, err := order(a, b, op)
	if err != nil {
		return nil, err
	}
	switch op {
	case "<":
		return Bool(c < 0), nil
	case "<=":
		return Bool(c <= 0), nil
	case ">":
		return Bool(c > 0), nil
	case ">=":
		return Bool(c >= 0), nil
	}
	return nil, Raise(ExcTypeError, "unknown comparison operator %q", op)
}

// is approximates Python identity: exact for None/bool, value identity
// for small ints (close enough for UDF usage `x is None`).
func is(a, b Value) bool {
	if _, ok := a.(None); ok {
		_, ok2 := b.(None)
		return ok2
	}
	if ab, ok := a.(Bool); ok {
		bb, ok2 := b.(Bool)
		return ok2 && ab == bb
	}
	return Equal(a, b) && a.Kind() == b.Kind()
}

// order returns -1/0/1 for orderable pairs and a TypeError otherwise.
func order(a, b Value, op string) (int, error) {
	if x, ok := asFloat(a); ok {
		if y, ok := asFloat(b); ok {
			switch {
			case x < y:
				return -1, nil
			case x > y:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if x, ok := a.(Str); ok {
		if y, ok := b.(Str); ok {
			return strings.Compare(string(x), string(y)), nil
		}
	}
	if x, ok := a.(*List); ok {
		if y, ok := b.(*List); ok {
			return orderSeq(x.Items, y.Items, op)
		}
	}
	if x, ok := a.(*Tuple); ok {
		if y, ok := b.(*Tuple); ok {
			return orderSeq(x.Items, y.Items, op)
		}
	}
	return 0, Raise(ExcTypeError, "%q not supported between instances of %q and %q", op, TypeName(a), TypeName(b))
}

func orderSeq(a, b []Value, op string) (int, error) {
	for i := 0; i < len(a) && i < len(b); i++ {
		if Equal(a[i], b[i]) {
			continue
		}
		return order(a[i], b[i], op)
	}
	switch {
	case len(a) < len(b):
		return -1, nil
	case len(a) > len(b):
		return 1, nil
	default:
		return 0, nil
	}
}

// Contains implements `item in container`.
func Contains(container, item Value) (Value, error) {
	switch c := container.(type) {
	case Str:
		s, ok := item.(Str)
		if !ok {
			return nil, Raise(ExcTypeError, "'in <string>' requires string as left operand, not %s", TypeName(item))
		}
		return Bool(strings.Contains(string(c), string(s))), nil
	case *List:
		for _, it := range c.Items {
			if Equal(it, item) {
				return Bool(true), nil
			}
		}
		return Bool(false), nil
	case *Tuple:
		for _, it := range c.Items {
			if Equal(it, item) {
				return Bool(true), nil
			}
		}
		return Bool(false), nil
	case *Dict:
		s, ok := item.(Str)
		if !ok {
			return Bool(false), nil
		}
		_, found := c.Get(string(s))
		return Bool(found), nil
	default:
		return nil, Raise(ExcTypeError, "argument of type %q is not iterable", TypeName(container))
	}
}

// Len implements len().
func Len(v Value) (Value, error) {
	switch v := v.(type) {
	case Str:
		return Int(len(v)), nil
	case *List:
		return Int(len(v.Items)), nil
	case *Tuple:
		return Int(len(v.Items)), nil
	case *Dict:
		return Int(v.Len()), nil
	default:
		return nil, Raise(ExcTypeError, "object of type %q has no len()", TypeName(v))
	}
}

// GetIndex implements container[index] for non-slice indices.
func GetIndex(container, index Value) (Value, error) {
	switch c := container.(type) {
	case Str:
		i, ok := asInt(index)
		if !ok {
			return nil, Raise(ExcTypeError, "string indices must be integers, not %q", TypeName(index))
		}
		n := int64(len(c))
		if i < 0 {
			i += n
		}
		if i < 0 || i >= n {
			return nil, Raise(ExcIndexError, "string index out of range")
		}
		return c[i : i+1], nil
	case *List:
		return seqIndex(c.Items, index, "list")
	case *Tuple:
		return seqIndex(c.Items, index, "tuple")
	case *Dict:
		s, ok := index.(Str)
		if !ok {
			return nil, Raise(ExcKeyError, "%s", Repr(index))
		}
		v, found := c.Get(string(s))
		if !found {
			return nil, Raise(ExcKeyError, "%s", Repr(index))
		}
		return v, nil
	case *Match:
		i, ok := asInt(index)
		if !ok {
			return nil, Raise(ExcIndexError, "no such group")
		}
		if i < 0 || int(i) >= len(c.Groups) {
			return nil, Raise(ExcIndexError, "no such group")
		}
		if !c.Present[i] {
			return None{}, nil
		}
		return Str(c.Groups[i]), nil
	case None:
		return nil, Raise(ExcTypeError, "'NoneType' object is not subscriptable")
	default:
		return nil, Raise(ExcTypeError, "%q object is not subscriptable", TypeName(container))
	}
}

func seqIndex(items []Value, index Value, what string) (Value, error) {
	i, ok := asInt(index)
	if !ok {
		return nil, Raise(ExcTypeError, "%s indices must be integers, not %q", what, TypeName(index))
	}
	n := int64(len(items))
	if i < 0 {
		i += n
	}
	if i < 0 || i >= n {
		return nil, Raise(ExcIndexError, "%s index out of range", what)
	}
	return items[i], nil
}

// SetIndex implements container[index] = value (lists and dicts).
func SetIndex(container, index, value Value) error {
	switch c := container.(type) {
	case *List:
		i, ok := asInt(index)
		if !ok {
			return Raise(ExcTypeError, "list indices must be integers, not %q", TypeName(index))
		}
		n := int64(len(c.Items))
		if i < 0 {
			i += n
		}
		if i < 0 || i >= n {
			return Raise(ExcIndexError, "list assignment index out of range")
		}
		c.Items[i] = value
		return nil
	case *Dict:
		s, ok := index.(Str)
		if !ok {
			return Raise(ExcTypeError, "only str dict keys are supported, not %q", TypeName(index))
		}
		c.Set(string(s), value)
		return nil
	default:
		return Raise(ExcTypeError, "%q object does not support item assignment", TypeName(container))
	}
}

// SliceBounds resolves Python slice semantics for a sequence of length n:
// nil bounds, negative indices and clamping, with the given step. It
// returns the resolved start, stop and step. step must not be zero.
func SliceBounds(lo, hi *int64, step int64, n int64) (start, stop int64) {
	if step > 0 {
		start, stop = 0, n
	} else {
		start, stop = n-1, -1
	}
	clamp := func(i int64) int64 {
		if i < 0 {
			i += n
		}
		if step > 0 {
			if i < 0 {
				return 0
			}
			if i > n {
				return n
			}
		} else {
			if i < -1 {
				return -1
			}
			if i >= n {
				return n - 1
			}
		}
		return i
	}
	if lo != nil {
		start = clamp(*lo)
	}
	if hi != nil {
		stop = clamp(*hi)
	}
	return start, stop
}

// GetSlice implements container[lo:hi:step]; nil pointers mean omitted
// bounds.
func GetSlice(container Value, lo, hi, step *int64) (Value, error) {
	st := int64(1)
	if step != nil {
		st = *step
		if st == 0 {
			return nil, Raise(ExcValueError, "slice step cannot be zero")
		}
	}
	switch c := container.(type) {
	case Str:
		n := int64(len(c))
		start, stop := SliceBounds(lo, hi, st, n)
		if st == 1 {
			if start >= stop {
				return Str(""), nil
			}
			return c[start:stop], nil
		}
		var sb strings.Builder
		for i := start; (st > 0 && i < stop) || (st < 0 && i > stop); i += st {
			sb.WriteByte(c[i])
		}
		return Str(sb.String()), nil
	case *List:
		items, err := sliceSeq(c.Items, lo, hi, st)
		if err != nil {
			return nil, err
		}
		return &List{Items: items}, nil
	case *Tuple:
		items, err := sliceSeq(c.Items, lo, hi, st)
		if err != nil {
			return nil, err
		}
		return &Tuple{Items: items}, nil
	case None:
		return nil, Raise(ExcTypeError, "'NoneType' object is not subscriptable")
	default:
		return nil, Raise(ExcTypeError, "%q object is not subscriptable", TypeName(container))
	}
}

func sliceSeq(items []Value, lo, hi *int64, step int64) ([]Value, error) {
	n := int64(len(items))
	start, stop := SliceBounds(lo, hi, step, n)
	var out []Value
	for i := start; (step > 0 && i < stop) || (step < 0 && i > stop); i += step {
		out = append(out, items[i])
	}
	return out, nil
}

// ToInt implements int(v): truncation for floats, strict decimal parse
// (with surrounding whitespace allowed) for strings.
func ToInt(v Value) (Value, error) {
	switch v := v.(type) {
	case Bool:
		if v {
			return Int(1), nil
		}
		return Int(0), nil
	case Int:
		return v, nil
	case Float:
		f := float64(v)
		if math.IsNaN(f) {
			return nil, Raise(ExcValueError, "cannot convert float NaN to integer")
		}
		if math.IsInf(f, 0) {
			return nil, Raise(ExcOverflowError, "cannot convert float infinity to integer")
		}
		return Int(int64(math.Trunc(f))), nil
	case Str:
		return ParseIntStr(string(v))
	case None:
		return nil, Raise(ExcTypeError, "int() argument must be a string or a number, not 'NoneType'")
	default:
		return nil, Raise(ExcTypeError, "int() argument must be a string or a number, not %q", TypeName(v))
	}
}

// ParseIntStr parses an int literal the way Python's int(str) does:
// optional surrounding whitespace, optional sign, decimal digits with
// optional underscores between digits.
func ParseIntStr(s string) (Value, error) {
	t := strings.TrimSpace(s)
	clean := strings.ReplaceAll(t, "_", "")
	if clean == "" || strings.HasPrefix(clean, "__") {
		return nil, Raise(ExcValueError, "invalid literal for int() with base 10: %s", Repr(Str(s)))
	}
	n, err := strconv.ParseInt(clean, 10, 64)
	if err != nil {
		return nil, Raise(ExcValueError, "invalid literal for int() with base 10: %s", Repr(Str(s)))
	}
	return Int(n), nil
}

// ToFloat implements float(v).
func ToFloat(v Value) (Value, error) {
	switch v := v.(type) {
	case Bool:
		if v {
			return Float(1), nil
		}
		return Float(0), nil
	case Int:
		return Float(v), nil
	case Float:
		return v, nil
	case Str:
		return ParseFloatStr(string(v))
	case None:
		return nil, Raise(ExcTypeError, "float() argument must be a string or a number, not 'NoneType'")
	default:
		return nil, Raise(ExcTypeError, "float() argument must be a string or a number, not %q", TypeName(v))
	}
}

// ParseFloatStr parses a float literal the way Python's float(str) does.
func ParseFloatStr(s string) (Value, error) {
	t := strings.TrimSpace(strings.ReplaceAll(s, "_", ""))
	if t == "" {
		return nil, Raise(ExcValueError, "could not convert string to float: %s", Repr(Str(s)))
	}
	switch strings.ToLower(t) {
	case "inf", "+inf", "infinity", "+infinity":
		return Float(math.Inf(1)), nil
	case "-inf", "-infinity":
		return Float(math.Inf(-1)), nil
	case "nan", "+nan", "-nan":
		return Float(math.NaN()), nil
	}
	f, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return nil, Raise(ExcValueError, "could not convert string to float: %s", Repr(Str(s)))
	}
	return Float(f), nil
}

// Abs implements abs().
func Abs(v Value) (Value, error) {
	switch v := v.(type) {
	case Bool:
		if v {
			return Int(1), nil
		}
		return Int(0), nil
	case Int:
		if v < 0 {
			return -v, nil
		}
		return v, nil
	case Float:
		return Float(math.Abs(float64(v))), nil
	default:
		return nil, Raise(ExcTypeError, "bad operand type for abs(): %q", TypeName(v))
	}
}

// MinMax implements min()/max() over two or more arguments.
func MinMax(args []Value, wantMax bool) (Value, error) {
	if len(args) == 0 {
		return nil, Raise(ExcTypeError, "expected at least 1 argument, got 0")
	}
	items := args
	if len(args) == 1 {
		switch a := args[0].(type) {
		case *List:
			items = a.Items
		case *Tuple:
			items = a.Items
		default:
			return nil, Raise(ExcTypeError, "%q object is not iterable", TypeName(args[0]))
		}
		if len(items) == 0 {
			return nil, Raise(ExcValueError, "arg is an empty sequence")
		}
	}
	best := items[0]
	for _, it := range items[1:] {
		c, err := order(it, best, "<")
		if err != nil {
			return nil, err
		}
		if (wantMax && c > 0) || (!wantMax && c < 0) {
			best = it
		}
	}
	return best, nil
}

// Round implements round(x[, ndigits]) with banker's rounding like
// Python.
func Round(v Value, ndigits *int64) (Value, error) {
	f, ok := asFloat(v)
	if !ok {
		return nil, Raise(ExcTypeError, "type %s doesn't define __round__ method", TypeName(v))
	}
	if ndigits == nil {
		r := math.RoundToEven(f)
		return Int(int64(r)), nil
	}
	scale := math.Pow(10, float64(*ndigits))
	return Float(math.RoundToEven(f*scale) / scale), nil
}

func binTypeError(op string, a, b Value) error {
	return Raise(ExcTypeError, "unsupported operand type(s) for %s: %q and %q", op, TypeName(a), TypeName(b))
}
