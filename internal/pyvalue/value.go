// Package pyvalue implements boxed Python runtime values and their
// operator semantics. It is the object model of Tuplex's fallback path
// (the "Python interpreter" of the paper) and of the interpreter-based
// baseline engines. Values are deliberately boxed behind an interface so
// the fallback path pays the allocation and dynamic-dispatch costs that
// make interpreted Python slow; the compiled paths use unboxed slots
// instead (see internal/codegen).
//
// Deviations from CPython, documented per the paper's own prototype
// scope: integers are 64-bit (no big ints), dict keys are strings, and
// unsupported library surface raises ExcUnsupported which routes the row
// to a failure report.
package pyvalue

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates boxed value kinds.
type Kind uint8

const (
	KNone Kind = iota
	KBool
	KInt
	KFloat
	KStr
	KList
	KTuple
	KDict
	KMatch
	KFunc
)

func (k Kind) String() string {
	switch k {
	case KNone:
		return "NoneType"
	case KBool:
		return "bool"
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KStr:
		return "str"
	case KList:
		return "list"
	case KTuple:
		return "tuple"
	case KDict:
		return "dict"
	case KMatch:
		return "re.Match"
	case KFunc:
		return "function"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a boxed Python value.
type Value interface {
	Kind() Kind
}

// None is Python's None singleton type.
type None struct{}

// Bool is a Python bool.
type Bool bool

// Int is a Python int (64-bit in this implementation).
type Int int64

// Float is a Python float.
type Float float64

// Str is a Python str. It is assumed to hold UTF-8; indexing is by byte
// for the ASCII-dominated data the pipelines process (the paper's
// prototype makes the same simplification for CSV data).
type Str string

// List is a mutable Python list.
type List struct{ Items []Value }

// Tuple is an immutable Python tuple.
type Tuple struct{ Items []Value }

// Dict is a Python dict with string keys, preserving insertion order.
type Dict struct {
	keys []string
	m    map[string]Value
}

// Match is the result of a successful re.search.
type Match struct {
	// Groups[0] is the whole match; further entries are capture groups.
	Groups []string
	// Present[i] reports whether group i participated in the match.
	Present []bool
}

// Func is a callable value (builtin or interpreted function), opaque to
// this package.
type Func struct {
	Name string
	// Call executes the function. It is installed by the interpreter.
	Call func(args []Value) (Value, error)
}

func (None) Kind() Kind   { return KNone }
func (Bool) Kind() Kind   { return KBool }
func (Int) Kind() Kind    { return KInt }
func (Float) Kind() Kind  { return KFloat }
func (Str) Kind() Kind    { return KStr }
func (*List) Kind() Kind  { return KList }
func (*Tuple) Kind() Kind { return KTuple }
func (*Dict) Kind() Kind  { return KDict }
func (*Match) Kind() Kind { return KMatch }
func (*Func) Kind() Kind  { return KFunc }

// NewDict returns an empty dict.
func NewDict() *Dict { return &Dict{m: make(map[string]Value)} }

// DictFromPairs builds a dict preserving pair order.
func DictFromPairs(keys []string, vals []Value) *Dict {
	d := &Dict{keys: make([]string, 0, len(keys)), m: make(map[string]Value, len(keys))}
	for i, k := range keys {
		d.Set(k, vals[i])
	}
	return d
}

// Set inserts or updates a key.
func (d *Dict) Set(k string, v Value) {
	if _, ok := d.m[k]; !ok {
		d.keys = append(d.keys, k)
	}
	d.m[k] = v
}

// Get looks up a key.
func (d *Dict) Get(k string) (Value, bool) {
	v, ok := d.m[k]
	return v, ok
}

// Len reports the number of entries.
func (d *Dict) Len() int { return len(d.keys) }

// Keys returns the keys in insertion order. The caller must not mutate the
// returned slice.
func (d *Dict) Keys() []string { return d.keys }

// SortedKeys returns the keys sorted lexicographically (used by
// sorted(d) style operations and deterministic output).
func (d *Dict) SortedKeys() []string {
	ks := append([]string(nil), d.keys...)
	sort.Strings(ks)
	return ks
}

// Truth implements Python truthiness.
func Truth(v Value) bool {
	switch v := v.(type) {
	case None:
		return false
	case Bool:
		return bool(v)
	case Int:
		return v != 0
	case Float:
		return v != 0
	case Str:
		return v != ""
	case *List:
		return len(v.Items) > 0
	case *Tuple:
		return len(v.Items) > 0
	case *Dict:
		return v.Len() > 0
	case *Match:
		return true
	default:
		return true
	}
}

// Equal implements Python ==. Values of unrelated types compare unequal
// rather than raising; numeric kinds compare by value.
func Equal(a, b Value) bool {
	if an, aok := asFloat(a); aok {
		if bn, bok := asFloat(b); bok {
			return an == bn
		}
		return false
	}
	switch a := a.(type) {
	case None:
		_, ok := b.(None)
		return ok
	case Str:
		bs, ok := b.(Str)
		return ok && a == bs
	case *List:
		bl, ok := b.(*List)
		return ok && equalSeq(a.Items, bl.Items)
	case *Tuple:
		bt, ok := b.(*Tuple)
		return ok && equalSeq(a.Items, bt.Items)
	case *Dict:
		bd, ok := b.(*Dict)
		if !ok || a.Len() != bd.Len() {
			return false
		}
		for _, k := range a.keys {
			bv, ok := bd.m[k]
			if !ok || !Equal(a.m[k], bv) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}

func equalSeq(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// asFloat converts numeric values (bool/int/float) to float64.
func asFloat(v Value) (float64, bool) {
	switch v := v.(type) {
	case Bool:
		if v {
			return 1, true
		}
		return 0, true
	case Int:
		return float64(v), true
	case Float:
		return float64(v), true
	default:
		return 0, false
	}
}

// asInt converts bool/int to int64 (no float coercion, like Python's
// index protocol).
func asInt(v Value) (int64, bool) {
	switch v := v.(type) {
	case Bool:
		if v {
			return 1, true
		}
		return 0, true
	case Int:
		return int64(v), true
	default:
		return 0, false
	}
}

// IsNumeric reports whether v is bool, int, or float.
func IsNumeric(v Value) bool {
	switch v.(type) {
	case Bool, Int, Float:
		return true
	}
	return false
}

// isIntLike reports bool-or-int.
func isIntLike(v Value) bool {
	switch v.(type) {
	case Bool, Int:
		return true
	}
	return false
}

// Repr renders v like Python's repr().
func Repr(v Value) string {
	switch v := v.(type) {
	case None:
		return "None"
	case Bool:
		if v {
			return "True"
		}
		return "False"
	case Int:
		return fmt.Sprintf("%d", int64(v))
	case Float:
		return FloatRepr(float64(v))
	case Str:
		return "'" + strings.ReplaceAll(strings.ReplaceAll(string(v), `\`, `\\`), "'", `\'`) + "'"
	case *List:
		return "[" + joinRepr(v.Items) + "]"
	case *Tuple:
		if len(v.Items) == 1 {
			return "(" + Repr(v.Items[0]) + ",)"
		}
		return "(" + joinRepr(v.Items) + ")"
	case *Dict:
		parts := make([]string, 0, v.Len())
		for _, k := range v.keys {
			parts = append(parts, Repr(Str(k))+": "+Repr(v.m[k]))
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *Match:
		return "<re.Match object>"
	case *Func:
		return "<function " + v.Name + ">"
	default:
		return fmt.Sprintf("<%v>", v)
	}
}

func joinRepr(items []Value) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = Repr(it)
	}
	return strings.Join(parts, ", ")
}

// ToStr renders v like Python's str().
func ToStr(v Value) string {
	if s, ok := v.(Str); ok {
		return string(s)
	}
	return Repr(v)
}

// FloatRepr renders a float like CPython's repr: shortest round-trip
// decimal, always with a decimal point or exponent, switching to
// exponent notation below 1e-4 and at 1e16 and above.
func FloatRepr(f float64) string {
	if math.IsInf(f, 1) {
		return "inf"
	}
	if math.IsInf(f, -1) {
		return "-inf"
	}
	if math.IsNaN(f) {
		return "nan"
	}
	abs := math.Abs(f)
	if f == math.Trunc(f) && abs < 1e16 {
		return fmt.Sprintf("%.1f", f)
	}
	if abs != 0 && (abs < 1e-4 || abs >= 1e16) {
		s := fmt.Sprintf("%g", f)
		// Go renders 1e+20 like Python; normalize exponent digits
		// (Python drops a leading zero in two-digit exponents: 1e-05 in
		// Python is 1e-05 — CPython keeps two digits only below e-05).
		return normalizeExp(s)
	}
	s := fmt.Sprintf("%g", f)
	if strings.ContainsAny(s, "eE") {
		// %g switched to exponent earlier than Python would; force
		// positional notation.
		s = fmt.Sprintf("%.17g", f)
		if strings.ContainsAny(s, "eE") {
			return normalizeExp(s)
		}
	}
	return s
}

// AppendFloatRepr appends FloatRepr(f) to dst without allocating on the
// common spellings (integral floats and positional shortest-repr); the
// exponent-notation spellings fall back to FloatRepr. The two must stay
// byte-identical — the columnar CSV renderer uses this while the boxed
// paths use FloatRepr, and the differential suites compare their output.
func AppendFloatRepr(dst []byte, f float64) []byte {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return append(dst, FloatRepr(f)...)
	}
	abs := math.Abs(f)
	if f == math.Trunc(f) && abs < 1e16 {
		return strconv.AppendFloat(dst, f, 'f', 1, 64)
	}
	start := len(dst)
	dst = strconv.AppendFloat(dst, f, 'g', -1, 64)
	for i := start; i < len(dst); i++ {
		if dst[i] == 'e' || dst[i] == 'E' {
			// Exponent spelling: FloatRepr applies extra normalization
			// (forced positional, exponent casing) — defer to it.
			return append(dst[:start], FloatRepr(f)...)
		}
	}
	return dst
}

func normalizeExp(s string) string {
	// Python prints single-digit exponents with two digits: 1e+20 stays,
	// 1e-05 stays; Go matches closely enough — just ensure 'e' casing.
	return strings.ToLower(s)
}

// TypeName returns Python's name for v's type, used in error messages.
func TypeName(v Value) string {
	if v == nil {
		return "NoneType"
	}
	return v.Kind().String()
}

// Copy returns a deep copy of v. Used by engines that must simulate
// serialization boundaries (e.g. the Spark-analog's JVM↔Python worker
// hop).
func Copy(v Value) Value {
	switch v := v.(type) {
	case *List:
		items := make([]Value, len(v.Items))
		for i, it := range v.Items {
			items[i] = Copy(it)
		}
		return &List{Items: items}
	case *Tuple:
		items := make([]Value, len(v.Items))
		for i, it := range v.Items {
			items[i] = Copy(it)
		}
		return &Tuple{Items: items}
	case *Dict:
		d := &Dict{keys: append([]string(nil), v.keys...), m: make(map[string]Value, len(v.keys))}
		for k, val := range v.m {
			d.m[k] = Copy(val)
		}
		return d
	default:
		return v
	}
}
