package pyvalue

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestPercentFormatAgainstGoOracle(t *testing.T) {
	// For plain %d and %x the semantics coincide with Go's fmt.
	f := func(n int64) bool {
		got, err := PercentFormat("%d|%05d|%x", &Tuple{Items: []Value{Int(n), Int(n), Int(n)}})
		if err != nil {
			return false
		}
		want := fmt.Sprintf("%d|%05d|%x", n, n, n)
		return string(got.(Str)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentFormatFloats(t *testing.T) {
	cases := []struct {
		format string
		arg    Value
		want   string
	}{
		{"%f", Float(1.5), "1.500000"},
		{"%.2f", Float(1.609), "1.61"},
		{"%10.1f", Float(3.25), "       3.2"}, // banker-free printf rounding
		{"%e", Float(12345.678), "1.234568e+04"},
		{"%g", Float(0.0001), "0.0001"},
		{"%-6d|", Int(42), "42    |"},
		{"%+d", Int(42), "+42"},
	}
	for _, c := range cases {
		got, err := PercentFormat(c.format, c.arg)
		if err != nil {
			t.Errorf("%q: %v", c.format, err)
			continue
		}
		if string(got.(Str)) != c.want {
			t.Errorf("%q %% %s = %q, want %q", c.format, Repr(c.arg), got, c.want)
		}
	}
}

func TestStrFormatSpecGrid(t *testing.T) {
	cases := []struct {
		spec string
		arg  Value
		want string
	}{
		{"{:02}", Int(7), "07"},
		{"{:5}", Int(7), "    7"},
		{"{:<5}|", Str("ab"), "ab   |"},
		{"{:^6}|", Str("ab"), "  ab  |"},
		{"{:>6}", Str("ab"), "    ab"},
		{"{:*>5}", Str("ab"), "***ab"},
		{"{:,}", Int(1234567), "1,234,567"},
		{"{:.3f}", Float(2.0 / 3), "0.667"},
		{"{:d}", Bool(true), "1"},
		{"{:x}", Int(255), "ff"},
		{"{:.2s}", Str("abcdef"), "ab"},
		{"{:+d}", Int(5), "+5"},
		{"{:06.2f}", Float(3.14159), "003.14"},
	}
	for _, c := range cases {
		got, err := StrFormat(c.spec+"", []Value{c.arg})
		if err != nil {
			t.Errorf("%q: %v", c.spec, err)
			continue
		}
		if string(got.(Str)) != c.want {
			t.Errorf("%q.format(%s) = %q, want %q", c.spec, Repr(c.arg), got, c.want)
		}
	}
}

func TestStrFormatErrors(t *testing.T) {
	if _, err := StrFormat("{", nil); err == nil {
		t.Error("unbalanced { accepted")
	}
	if _, err := StrFormat("}", nil); err == nil {
		t.Error("single } accepted")
	}
	if _, err := StrFormat("{}{0}", []Value{Int(1)}); err == nil {
		t.Error("auto/manual mix accepted")
	}
	if _, err := StrFormat("{}", nil); err == nil {
		t.Error("missing argument accepted")
	}
	if _, err := StrFormat("{:d}", []Value{Str("x")}); err == nil {
		t.Error("d verb on str accepted")
	}
}

func TestStrFormatBraceEscapes(t *testing.T) {
	got, err := StrFormat("{{{}}}", []Value{Int(5)})
	if err != nil {
		t.Fatal(err)
	}
	if string(got.(Str)) != "{5}" {
		t.Fatalf("got %q", got)
	}
}
