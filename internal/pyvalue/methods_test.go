package pyvalue

import "testing"

func callM(t *testing.T, obj Value, name string, args ...Value) Value {
	t.Helper()
	v, err := CallMethod(obj, name, args)
	if err != nil {
		t.Fatalf("%s.%s: %v", Repr(obj), name, err)
	}
	return v
}

func TestStrFindRfind(t *testing.T) {
	s := Str("3 bds, 2 ba , 1,560 sqft")
	if v := callM(t, s, "find", Str(" bd")); !Equal(v, Int(1)) {
		t.Fatalf("find = %s", Repr(v))
	}
	if v := callM(t, s, "find", Str("zz")); !Equal(v, Int(-1)) {
		t.Fatalf("find missing = %s", Repr(v))
	}
	if v := callM(t, s, "rfind", Str(",")); !Equal(v, Int(15)) {
		t.Fatalf("rfind = %s", Repr(v))
	}
	if _, err := CallMethod(s, "index", []Value{Str("zz")}); KindOf(err) != ExcValueError {
		t.Fatalf("index missing: %v", err)
	}
}

func TestStrCaseAndTrim(t *testing.T) {
	if v := callM(t, Str("  Boston  "), "strip"); !Equal(v, Str("Boston")) {
		t.Fatalf("strip = %s", Repr(v))
	}
	if v := callM(t, Str("xxabcxx"), "strip", Str("x")); !Equal(v, Str("abc")) {
		t.Fatalf("strip chars = %s", Repr(v))
	}
	if v := callM(t, Str("BoSTon"), "lower"); !Equal(v, Str("boston")) {
		t.Fatal("lower")
	}
	if v := callM(t, Str("bos"), "upper"); !Equal(v, Str("BOS")) {
		t.Fatal("upper")
	}
	if v := callM(t, Str("hELLO wORLD"), "capitalize"); !Equal(v, Str("Hello world")) {
		t.Fatalf("capitalize = %s", Repr(v))
	}
	if v := callM(t, Str("hello world"), "title"); !Equal(v, Str("Hello World")) {
		t.Fatalf("title = %s", Repr(v))
	}
}

func TestStrSplitJoin(t *testing.T) {
	v := callM(t, Str("a,b,,c"), "split", Str(","))
	l := v.(*List)
	if len(l.Items) != 4 || !Equal(l.Items[2], Str("")) {
		t.Fatalf("split = %s", Repr(v))
	}
	// Whitespace split collapses runs and trims.
	v = callM(t, Str("  a  b\tc "), "split")
	l = v.(*List)
	if len(l.Items) != 3 || !Equal(l.Items[0], Str("a")) {
		t.Fatalf("ws split = %s", Repr(v))
	}
	v = callM(t, Str("-"), "join", &List{Items: []Value{Str("a"), Str("b")}})
	if !Equal(v, Str("a-b")) {
		t.Fatalf("join = %s", Repr(v))
	}
	if _, err := CallMethod(Str("-"), "join", []Value{&List{Items: []Value{Int(1)}}}); KindOf(err) != ExcTypeError {
		t.Fatalf("join non-str: %v", err)
	}
}

func TestStrSplitMaxsplit(t *testing.T) {
	v := callM(t, Str("a b c d"), "split", Str(" "), Int(2))
	l := v.(*List)
	if len(l.Items) != 3 || !Equal(l.Items[2], Str("c d")) {
		t.Fatalf("maxsplit = %s", Repr(v))
	}
}

func TestStrReplaceStartsEnds(t *testing.T) {
	if v := callM(t, Str("1,560"), "replace", Str(","), Str("")); !Equal(v, Str("1560")) {
		t.Fatal("replace")
	}
	if v := callM(t, Str("/~alice/x"), "startswith", Str("/~")); !Equal(v, Bool(true)) {
		t.Fatal("startswith")
	}
	if v := callM(t, Str("file.csv"), "endswith", Str(".csv")); !Equal(v, Bool(true)) {
		t.Fatal("endswith")
	}
}

func TestStrFormatMethod(t *testing.T) {
	v := callM(t, Str("{:02}:{:02}"), "format", Int(7), Int(5))
	if !Equal(v, Str("07:05")) {
		t.Fatalf("format = %s", Repr(v))
	}
	v = callM(t, Str("{}-{}"), "format", Str("a"), Int(1))
	if !Equal(v, Str("a-1")) {
		t.Fatalf("format = %s", Repr(v))
	}
	v = callM(t, Str("{1}{0}"), "format", Str("a"), Str("b"))
	if !Equal(v, Str("ba")) {
		t.Fatalf("format = %s", Repr(v))
	}
	v = callM(t, Str("{:.2f}"), "format", Float(1.609))
	if !Equal(v, Str("1.61")) {
		t.Fatalf("format = %s", Repr(v))
	}
	v = callM(t, Str("{:>5}"), "format", Str("ab"))
	if !Equal(v, Str("   ab")) {
		t.Fatalf("format = %s", Repr(v))
	}
}

func TestPercentFormat(t *testing.T) {
	v, err := PercentFormat("%05d", Int(42))
	wantVal(t, v, err, Str("00042"))
	v, err = PercentFormat("%s=%d", &Tuple{Items: []Value{Str("x"), Int(3)}})
	wantVal(t, v, err, Str("x=3"))
	v, err = PercentFormat("%.2f", Float(1.609))
	wantVal(t, v, err, Str("1.61"))
	v, err = PercentFormat("100%%", &Tuple{})
	wantVal(t, v, err, Str("100%"))
	_, err = PercentFormat("%d", Str("a"))
	wantExc(t, err, ExcTypeError)
	_, err = PercentFormat("%d %d", Int(1))
	wantExc(t, err, ExcTypeError)
}

func TestZfillCount(t *testing.T) {
	if v := callM(t, Str("42"), "zfill", Int(5)); !Equal(v, Str("00042")) {
		t.Fatal("zfill")
	}
	if v := callM(t, Str("-42"), "zfill", Int(5)); !Equal(v, Str("-0042")) {
		t.Fatal("zfill sign")
	}
	if v := callM(t, Str("aabaa"), "count", Str("aa")); !Equal(v, Int(2)) {
		t.Fatal("count")
	}
}

func TestIsDigitAlpha(t *testing.T) {
	if v := callM(t, Str("123"), "isdigit"); !Equal(v, Bool(true)) {
		t.Fatal("isdigit")
	}
	if v := callM(t, Str("12a"), "isdigit"); !Equal(v, Bool(false)) {
		t.Fatal("isdigit mixed")
	}
	if v := callM(t, Str(""), "isdigit"); !Equal(v, Bool(false)) {
		t.Fatal("isdigit empty")
	}
	if v := callM(t, Str("abc"), "isalpha"); !Equal(v, Bool(true)) {
		t.Fatal("isalpha")
	}
}

func TestListMethods(t *testing.T) {
	l := &List{}
	callM(t, l, "append", Int(1))
	callM(t, l, "append", Str("x"))
	if len(l.Items) != 2 {
		t.Fatalf("append failed: %s", Repr(l))
	}
	callM(t, l, "extend", &List{Items: []Value{Int(3), Int(4)}})
	if len(l.Items) != 4 {
		t.Fatal("extend failed")
	}
	v := callM(t, l, "pop")
	if !Equal(v, Int(4)) || len(l.Items) != 3 {
		t.Fatal("pop failed")
	}
	if v := callM(t, l, "index", Str("x")); !Equal(v, Int(1)) {
		t.Fatal("index failed")
	}
}

func TestDictMethods(t *testing.T) {
	d := NewDict()
	d.Set("a", Int(1))
	if v := callM(t, d, "get", Str("a")); !Equal(v, Int(1)) {
		t.Fatal("get")
	}
	if v := callM(t, d, "get", Str("zz")); !Equal(v, None{}) {
		t.Fatal("get default None")
	}
	if v := callM(t, d, "get", Str("zz"), Int(7)); !Equal(v, Int(7)) {
		t.Fatal("get default")
	}
	keys := callM(t, d, "keys").(*List)
	if len(keys.Items) != 1 || !Equal(keys.Items[0], Str("a")) {
		t.Fatal("keys")
	}
}

func TestNoneAttributeError(t *testing.T) {
	// The flights pipeline relies on None.find raising AttributeError on
	// the normal path for sparse columns.
	_, err := CallMethod(None{}, "find", []Value{Str("x")})
	wantExc(t, err, ExcAttributeError)
}

func TestCapwords(t *testing.T) {
	if got := Capwords("  LOGAN  intl   airport "); got != "Logan Intl Airport" {
		t.Fatalf("Capwords = %q", got)
	}
}

func TestMatchMethods(t *testing.T) {
	m := &Match{Groups: []string{"full", "g1"}, Present: []bool{true, true}}
	if v := callM(t, m, "group", Int(1)); !Equal(v, Str("g1")) {
		t.Fatal("group(1)")
	}
	if v := callM(t, m, "group"); !Equal(v, Str("full")) {
		t.Fatal("group()")
	}
	gs := callM(t, m, "groups").(*Tuple)
	if len(gs.Items) != 1 {
		t.Fatal("groups()")
	}
}
