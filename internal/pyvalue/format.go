package pyvalue

import (
	"fmt"
	"strconv"
	"strings"
)

// PercentFormat implements Python's old-style `fmt % arg` string
// formatting for the conversions data-wrangling code uses
// (%d %i %f %e %g %s %r %x %X %o %% with flags, width and precision).
func PercentFormat(format string, arg Value) (Value, error) {
	var args []Value
	if t, ok := arg.(*Tuple); ok {
		args = t.Items
	} else {
		args = []Value{arg}
	}
	var sb strings.Builder
	ai := 0
	nextArg := func() (Value, error) {
		if ai >= len(args) {
			return nil, Raise(ExcTypeError, "not enough arguments for format string")
		}
		v := args[ai]
		ai++
		return v, nil
	}
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			sb.WriteByte(c)
			i++
			continue
		}
		i++
		if i >= len(format) {
			return nil, Raise(ExcValueError, "incomplete format")
		}
		if format[i] == '%' {
			sb.WriteByte('%')
			i++
			continue
		}
		// Parse %[flags][width][.precision]conversion.
		spec := "%"
		for i < len(format) && strings.IndexByte("-+ 0#", format[i]) >= 0 {
			spec += string(format[i])
			i++
		}
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			spec += string(format[i])
			i++
		}
		if i < len(format) && format[i] == '.' {
			spec += "."
			i++
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				spec += string(format[i])
				i++
			}
		}
		if i >= len(format) {
			return nil, Raise(ExcValueError, "incomplete format")
		}
		conv := format[i]
		i++
		v, err := nextArg()
		if err != nil {
			return nil, err
		}
		switch conv {
		case 'd', 'i':
			n, ok := percentInt(v)
			if !ok {
				return nil, Raise(ExcTypeError, "%%d format: a number is required, not %s", TypeName(v))
			}
			fmt.Fprintf(&sb, spec+"d", n)
		case 'f', 'F', 'e', 'E', 'g', 'G':
			f, ok := asFloat(v)
			if !ok {
				return nil, Raise(ExcTypeError, "must be real number, not %s", TypeName(v))
			}
			fmt.Fprintf(&sb, spec+string(conv), f)
		case 'x', 'X', 'o':
			n, ok := percentInt(v)
			if !ok {
				return nil, Raise(ExcTypeError, "%%%c format: an integer is required, not %s", conv, TypeName(v))
			}
			fmt.Fprintf(&sb, spec+string(conv), n)
		case 's':
			fmt.Fprintf(&sb, spec+"s", ToStr(v))
		case 'r':
			fmt.Fprintf(&sb, spec+"s", Repr(v))
		default:
			return nil, Raise(ExcValueError, "unsupported format character %q", string(conv))
		}
	}
	if ai < len(args) {
		return nil, Raise(ExcTypeError, "not all arguments converted during string formatting")
	}
	return Str(sb.String()), nil
}

func percentInt(v Value) (int64, bool) {
	if n, ok := asInt(v); ok {
		return n, true
	}
	if f, ok := v.(Float); ok {
		return int64(f), true
	}
	return 0, false
}

// StrFormat implements str.format() for auto-numbered and positional
// fields with the format-spec subset [[fill]align][sign][0][width]
// [,][.precision][type] (types d f F e E g G s x X %).
func StrFormat(format string, args []Value) (Value, error) {
	var sb strings.Builder
	auto := 0
	usedAuto, usedManual := false, false
	i := 0
	for i < len(format) {
		c := format[i]
		switch c {
		case '{':
			if i+1 < len(format) && format[i+1] == '{' {
				sb.WriteByte('{')
				i += 2
				continue
			}
			end := strings.IndexByte(format[i:], '}')
			if end < 0 {
				return nil, Raise(ExcValueError, "single '{' encountered in format string")
			}
			field := format[i+1 : i+end]
			i += end + 1
			name, spec := field, ""
			if j := strings.IndexByte(field, ':'); j >= 0 {
				name, spec = field[:j], field[j+1:]
			}
			var v Value
			if name == "" {
				usedAuto = true
				if usedManual {
					return nil, Raise(ExcValueError, "cannot switch from manual field specification to automatic field numbering")
				}
				if auto >= len(args) {
					return nil, Raise(ExcIndexError, "Replacement index %d out of range for positional args tuple", auto)
				}
				v = args[auto]
				auto++
			} else {
				idx, err := strconv.Atoi(name)
				if err != nil {
					return nil, Raise(ExcValueError, "unsupported format field name %q", name)
				}
				usedManual = true
				if usedAuto {
					return nil, Raise(ExcValueError, "cannot switch from automatic field numbering to manual field specification")
				}
				if idx < 0 || idx >= len(args) {
					return nil, Raise(ExcIndexError, "Replacement index %d out of range for positional args tuple", idx)
				}
				v = args[idx]
			}
			out, err := FormatSpec(v, spec)
			if err != nil {
				return nil, err
			}
			sb.WriteString(out)
		case '}':
			if i+1 < len(format) && format[i+1] == '}' {
				sb.WriteByte('}')
				i += 2
				continue
			}
			return nil, Raise(ExcValueError, "Single '}' encountered in format string")
		default:
			sb.WriteByte(c)
			i++
		}
	}
	return Str(sb.String()), nil
}

// FormatSpec applies a Python format-spec to a value.
func FormatSpec(v Value, spec string) (string, error) {
	if spec == "" {
		return ToStr(v), nil
	}
	fill, align := byte(' '), byte(0)
	sign := byte(0)
	zero := false
	width, prec := -1, -1
	comma := false
	verb := byte(0)

	s := spec
	// [[fill]align]
	if len(s) >= 2 && (s[1] == '<' || s[1] == '>' || s[1] == '^') {
		fill, align = s[0], s[1]
		s = s[2:]
	} else if len(s) >= 1 && (s[0] == '<' || s[0] == '>' || s[0] == '^') {
		align = s[0]
		s = s[1:]
	}
	if len(s) >= 1 && (s[0] == '+' || s[0] == '-' || s[0] == ' ') {
		sign = s[0]
		s = s[1:]
	}
	if len(s) >= 1 && s[0] == '0' {
		zero = true
		s = s[1:]
	}
	j := 0
	for j < len(s) && s[j] >= '0' && s[j] <= '9' {
		j++
	}
	if j > 0 {
		width, _ = strconv.Atoi(s[:j])
		s = s[j:]
	}
	if len(s) >= 1 && s[0] == ',' {
		comma = true
		s = s[1:]
	}
	if len(s) >= 1 && s[0] == '.' {
		s = s[1:]
		j = 0
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j == 0 {
			return "", Raise(ExcValueError, "Format specifier missing precision")
		}
		prec, _ = strconv.Atoi(s[:j])
		s = s[j:]
	}
	if len(s) == 1 {
		verb = s[0]
		s = ""
	}
	if s != "" {
		return "", Raise(ExcValueError, "Invalid format specifier %q", spec)
	}

	var body string
	switch verb {
	case 0:
		// No explicit type: int-like values format as d, floats as g-ish
		// via repr, strings as-is.
		switch v.(type) {
		case Bool, Int:
			n, _ := asInt(v)
			body = strconv.FormatInt(n, 10)
		case Float:
			body = FloatRepr(float64(v.(Float)))
		case Str:
			body = string(v.(Str))
		default:
			body = ToStr(v)
		}
	case 'd':
		n, ok := asInt(v)
		if !ok {
			return "", Raise(ExcValueError, "Unknown format code 'd' for object of type %q", TypeName(v))
		}
		body = strconv.FormatInt(n, 10)
	case 'f', 'F', 'e', 'E', 'g', 'G':
		f, ok := asFloat(v)
		if !ok {
			return "", Raise(ExcValueError, "Unknown format code %q for object of type %q", string(verb), TypeName(v))
		}
		p := prec
		if p < 0 {
			if verb == 'g' || verb == 'G' {
				p = -1
			} else {
				p = 6
			}
		}
		body = strconv.FormatFloat(f, verb, p, 64)
	case 'x', 'X':
		n, ok := asInt(v)
		if !ok {
			return "", Raise(ExcValueError, "Unknown format code %q for object of type %q", string(verb), TypeName(v))
		}
		body = strconv.FormatInt(n, 16)
		if verb == 'X' {
			body = strings.ToUpper(body)
		}
	case 's':
		body = ToStr(v)
		if prec >= 0 && prec < len(body) {
			body = body[:prec]
		}
	case '%':
		f, ok := asFloat(v)
		if !ok {
			return "", Raise(ExcValueError, "Unknown format code '%%' for object of type %q", TypeName(v))
		}
		p := prec
		if p < 0 {
			p = 6
		}
		body = strconv.FormatFloat(f*100, 'f', p, 64) + "%"
	default:
		return "", Raise(ExcValueError, "Unknown format code %q", string(verb))
	}

	// Apply sign for numeric verbs.
	numeric := verb == 0 && IsNumeric(v) || strings.IndexByte("dfFeEgGxX%", verb) >= 0 && verb != 0
	if numeric && sign == '+' && !strings.HasPrefix(body, "-") {
		body = "+" + body
	}
	if numeric && sign == ' ' && !strings.HasPrefix(body, "-") {
		body = " " + body
	}
	if comma {
		body = addThousands(body)
	}
	// Width padding.
	if width > 0 && len(body) < width {
		pad := width - len(body)
		switch {
		case align == '<':
			body += strings.Repeat(string(fill), pad)
		case align == '^':
			l := pad / 2
			body = strings.Repeat(string(fill), l) + body + strings.Repeat(string(fill), pad-l)
		case align == '>':
			body = strings.Repeat(string(fill), pad) + body
		case zero && numeric:
			// Zero-pad after the sign.
			if len(body) > 0 && (body[0] == '-' || body[0] == '+') {
				body = body[:1] + strings.Repeat("0", pad) + body[1:]
			} else {
				body = strings.Repeat("0", pad) + body
			}
		case numeric:
			body = strings.Repeat(" ", pad) + body
		default:
			body += strings.Repeat(" ", pad)
		}
	}
	return body, nil
}

func addThousands(body string) string {
	// Find the integer part boundaries.
	start := 0
	if len(body) > 0 && (body[0] == '-' || body[0] == '+') {
		start = 1
	}
	end := len(body)
	if i := strings.IndexByte(body, '.'); i >= 0 {
		end = i
	}
	intPart := body[start:end]
	var sb strings.Builder
	for i, c := range intPart {
		if i > 0 && (len(intPart)-i)%3 == 0 {
			sb.WriteByte(',')
		}
		sb.WriteRune(c)
	}
	return body[:start] + sb.String() + body[end:]
}
