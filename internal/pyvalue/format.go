package pyvalue

import (
	"fmt"
	"strconv"
	"strings"
)

// PercentFormat implements Python's old-style `fmt % arg` string
// formatting for the conversions data-wrangling code uses
// (%d %i %f %e %g %s %r %x %X %o %% with flags, width and precision).
func PercentFormat(format string, arg Value) (Value, error) {
	out, err := AppendPercentFormat(nil, format, arg)
	if err != nil {
		return nil, err
	}
	return Str(out), nil
}

// AppendPercentFormat is PercentFormat appending into dst, so hot UDF
// loops can reuse a scratch buffer and pay only for the result string.
// Common directives format via strconv with manual flag handling; the
// rarely-used combinations (`#`, integer precision, zero-padded
// strings, %F) keep the fmt-based rendering for byte-identical output.
func AppendPercentFormat(dst []byte, format string, arg Value) ([]byte, error) {
	var args []Value
	if t, ok := arg.(*Tuple); ok {
		args = t.Items
	} else {
		args = []Value{arg}
	}
	ai := 0
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			dst = append(dst, c)
			i++
			continue
		}
		i++
		if i >= len(format) {
			return nil, Raise(ExcValueError, "incomplete format")
		}
		if format[i] == '%' {
			dst = append(dst, '%')
			i++
			continue
		}
		// Parse %[flags][width][.precision]conversion.
		var minus, plus, space, zero, alt bool
	flags:
		for i < len(format) {
			switch format[i] {
			case '-':
				minus = true
			case '+':
				plus = true
			case ' ':
				space = true
			case '0':
				zero = true
			case '#':
				alt = true
			default:
				break flags
			}
			i++
		}
		width := 0
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			width = width*10 + int(format[i]-'0')
			i++
		}
		prec := -1
		if i < len(format) && format[i] == '.' {
			i++
			prec = 0
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				prec = prec*10 + int(format[i]-'0')
				i++
			}
		}
		if i >= len(format) {
			return nil, Raise(ExcValueError, "incomplete format")
		}
		conv := format[i]
		i++
		if ai >= len(args) {
			return nil, Raise(ExcTypeError, "not enough arguments for format string")
		}
		v := args[ai]
		ai++

		slow := func(val any) {
			spec := make([]byte, 0, 12)
			spec = append(spec, '%')
			if minus {
				spec = append(spec, '-')
			}
			if plus {
				spec = append(spec, '+')
			}
			if space {
				spec = append(spec, ' ')
			}
			if zero {
				spec = append(spec, '0')
			}
			if alt {
				spec = append(spec, '#')
			}
			if width > 0 {
				spec = strconv.AppendInt(spec, int64(width), 10)
			}
			if prec >= 0 {
				spec = append(spec, '.')
				spec = strconv.AppendInt(spec, int64(prec), 10)
			}
			verb := conv
			if conv == 'i' {
				verb = 'd'
			}
			if conv == 's' || conv == 'r' {
				verb = 's'
			}
			spec = append(spec, verb)
			dst = fmt.Appendf(dst, string(spec), val)
		}

		var tmp [40]byte
		switch conv {
		case 'd', 'i':
			n, ok := percentInt(v)
			if !ok {
				return nil, Raise(ExcTypeError, "%%d format: a number is required, not %s", TypeName(v))
			}
			if prec >= 0 {
				slow(n)
				break
			}
			body := strconv.AppendInt(tmp[:0], n, 10)
			dst = appendPadded(dst, numSign(body, plus, space), body, width, minus, zero)
		case 'f', 'F', 'e', 'E', 'g', 'G':
			f, ok := asFloat(v)
			if !ok {
				return nil, Raise(ExcTypeError, "must be real number, not %s", TypeName(v))
			}
			if conv == 'F' {
				slow(f)
				break
			}
			p := prec
			if p < 0 && conv != 'g' && conv != 'G' {
				p = 6
			}
			body := strconv.AppendFloat(tmp[:0], f, conv, p, 64)
			dst = appendPadded(dst, numSign(body, plus, space), body, width, minus, zero)
		case 'x', 'X', 'o':
			n, ok := percentInt(v)
			if !ok {
				return nil, Raise(ExcTypeError, "%%%c format: an integer is required, not %s", conv, TypeName(v))
			}
			if alt || prec >= 0 {
				slow(n)
				break
			}
			base := 8
			if conv == 'x' || conv == 'X' {
				base = 16
			}
			body := strconv.AppendInt(tmp[:0], n, base)
			if conv == 'X' {
				for j := range body {
					if body[j] >= 'a' && body[j] <= 'f' {
						body[j] -= 'a' - 'A'
					}
				}
			}
			dst = appendPadded(dst, numSign(body, plus, space), body, width, minus, zero)
		case 's', 'r':
			var body string
			if conv == 's' {
				body = ToStr(v)
			} else {
				body = Repr(v)
			}
			if prec >= 0 && prec < len(body) {
				body = body[:prec]
			}
			if zero {
				// fmt zero-pads strings; keep that rendering.
				slow(body)
				break
			}
			dst = appendPaddedStr(dst, body, width, minus)
		default:
			return nil, Raise(ExcValueError, "unsupported format character %q", string(conv))
		}
	}
	if ai < len(args) {
		return nil, Raise(ExcTypeError, "not all arguments converted during string formatting")
	}
	return dst, nil
}

// numSign picks the explicit sign byte the '+'/' ' flags add to a
// non-negative strconv-rendered number (0 = none; the body already
// carries any '-').
func numSign(body []byte, plus, space bool) byte {
	if len(body) > 0 && body[0] == '-' {
		return 0
	}
	if plus {
		return '+'
	}
	if space {
		return ' '
	}
	return 0
}

// appendPadded writes a numeric body honoring the sign byte, width,
// '-' and '0'.
func appendPadded(dst []byte, sign byte, body []byte, width int, minus, zero bool) []byte {
	n := len(body)
	if sign != 0 {
		n++
	}
	pad := width - n
	if pad <= 0 {
		if sign != 0 {
			dst = append(dst, sign)
		}
		return append(dst, body...)
	}
	if minus {
		if sign != 0 {
			dst = append(dst, sign)
		}
		dst = append(dst, body...)
		return appendByteN(dst, ' ', pad)
	}
	if zero {
		j := 0
		switch {
		case sign != 0:
			dst = append(dst, sign)
		case len(body) > 0 && body[0] == '-':
			dst = append(dst, '-')
			j = 1
		}
		dst = appendByteN(dst, '0', pad)
		return append(dst, body[j:]...)
	}
	dst = appendByteN(dst, ' ', pad)
	if sign != 0 {
		dst = append(dst, sign)
	}
	return append(dst, body...)
}

// appendPaddedStr is appendPadded for string bodies (no zero flag).
func appendPaddedStr(dst []byte, body string, width int, minus bool) []byte {
	pad := width - len(body)
	if pad <= 0 {
		return append(dst, body...)
	}
	if minus {
		dst = append(dst, body...)
		return appendByteN(dst, ' ', pad)
	}
	dst = appendByteN(dst, ' ', pad)
	return append(dst, body...)
}

func appendByteN(dst []byte, c byte, n int) []byte {
	for range n {
		dst = append(dst, c)
	}
	return dst
}

func percentInt(v Value) (int64, bool) {
	if n, ok := asInt(v); ok {
		return n, true
	}
	if f, ok := v.(Float); ok {
		return int64(f), true
	}
	return 0, false
}

// StrFormat implements str.format() for auto-numbered and positional
// fields with the format-spec subset [[fill]align][sign][0][width]
// [,][.precision][type] (types d f F e E g G s x X %).
func StrFormat(format string, args []Value) (Value, error) {
	var sb strings.Builder
	auto := 0
	usedAuto, usedManual := false, false
	i := 0
	for i < len(format) {
		c := format[i]
		switch c {
		case '{':
			if i+1 < len(format) && format[i+1] == '{' {
				sb.WriteByte('{')
				i += 2
				continue
			}
			end := strings.IndexByte(format[i:], '}')
			if end < 0 {
				return nil, Raise(ExcValueError, "single '{' encountered in format string")
			}
			field := format[i+1 : i+end]
			i += end + 1
			name, spec := field, ""
			if j := strings.IndexByte(field, ':'); j >= 0 {
				name, spec = field[:j], field[j+1:]
			}
			var v Value
			if name == "" {
				usedAuto = true
				if usedManual {
					return nil, Raise(ExcValueError, "cannot switch from manual field specification to automatic field numbering")
				}
				if auto >= len(args) {
					return nil, Raise(ExcIndexError, "Replacement index %d out of range for positional args tuple", auto)
				}
				v = args[auto]
				auto++
			} else {
				idx, err := strconv.Atoi(name)
				if err != nil {
					return nil, Raise(ExcValueError, "unsupported format field name %q", name)
				}
				usedManual = true
				if usedAuto {
					return nil, Raise(ExcValueError, "cannot switch from automatic field numbering to manual field specification")
				}
				if idx < 0 || idx >= len(args) {
					return nil, Raise(ExcIndexError, "Replacement index %d out of range for positional args tuple", idx)
				}
				v = args[idx]
			}
			out, err := FormatSpec(v, spec)
			if err != nil {
				return nil, err
			}
			sb.WriteString(out)
		case '}':
			if i+1 < len(format) && format[i+1] == '}' {
				sb.WriteByte('}')
				i += 2
				continue
			}
			return nil, Raise(ExcValueError, "Single '}' encountered in format string")
		default:
			sb.WriteByte(c)
			i++
		}
	}
	return Str(sb.String()), nil
}

// FormatSpec applies a Python format-spec to a value.
func FormatSpec(v Value, spec string) (string, error) {
	if spec == "" {
		return ToStr(v), nil
	}
	fill, align := byte(' '), byte(0)
	sign := byte(0)
	zero := false
	width, prec := -1, -1
	comma := false
	verb := byte(0)

	s := spec
	// [[fill]align]
	if len(s) >= 2 && (s[1] == '<' || s[1] == '>' || s[1] == '^') {
		fill, align = s[0], s[1]
		s = s[2:]
	} else if len(s) >= 1 && (s[0] == '<' || s[0] == '>' || s[0] == '^') {
		align = s[0]
		s = s[1:]
	}
	if len(s) >= 1 && (s[0] == '+' || s[0] == '-' || s[0] == ' ') {
		sign = s[0]
		s = s[1:]
	}
	if len(s) >= 1 && s[0] == '0' {
		zero = true
		s = s[1:]
	}
	j := 0
	for j < len(s) && s[j] >= '0' && s[j] <= '9' {
		j++
	}
	if j > 0 {
		width, _ = strconv.Atoi(s[:j])
		s = s[j:]
	}
	if len(s) >= 1 && s[0] == ',' {
		comma = true
		s = s[1:]
	}
	if len(s) >= 1 && s[0] == '.' {
		s = s[1:]
		j = 0
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j == 0 {
			return "", Raise(ExcValueError, "Format specifier missing precision")
		}
		prec, _ = strconv.Atoi(s[:j])
		s = s[j:]
	}
	if len(s) == 1 {
		verb = s[0]
		s = ""
	}
	if s != "" {
		return "", Raise(ExcValueError, "Invalid format specifier %q", spec)
	}

	var body string
	switch verb {
	case 0:
		// No explicit type: int-like values format as d, floats as g-ish
		// via repr, strings as-is.
		switch v.(type) {
		case Bool, Int:
			n, _ := asInt(v)
			body = strconv.FormatInt(n, 10)
		case Float:
			body = FloatRepr(float64(v.(Float)))
		case Str:
			body = string(v.(Str))
		default:
			body = ToStr(v)
		}
	case 'd':
		n, ok := asInt(v)
		if !ok {
			return "", Raise(ExcValueError, "Unknown format code 'd' for object of type %q", TypeName(v))
		}
		body = strconv.FormatInt(n, 10)
	case 'f', 'F', 'e', 'E', 'g', 'G':
		f, ok := asFloat(v)
		if !ok {
			return "", Raise(ExcValueError, "Unknown format code %q for object of type %q", string(verb), TypeName(v))
		}
		p := prec
		if p < 0 {
			if verb == 'g' || verb == 'G' {
				p = -1
			} else {
				p = 6
			}
		}
		body = strconv.FormatFloat(f, verb, p, 64)
	case 'x', 'X':
		n, ok := asInt(v)
		if !ok {
			return "", Raise(ExcValueError, "Unknown format code %q for object of type %q", string(verb), TypeName(v))
		}
		body = strconv.FormatInt(n, 16)
		if verb == 'X' {
			body = strings.ToUpper(body)
		}
	case 's':
		body = ToStr(v)
		if prec >= 0 && prec < len(body) {
			body = body[:prec]
		}
	case '%':
		f, ok := asFloat(v)
		if !ok {
			return "", Raise(ExcValueError, "Unknown format code '%%' for object of type %q", TypeName(v))
		}
		p := prec
		if p < 0 {
			p = 6
		}
		body = strconv.FormatFloat(f*100, 'f', p, 64) + "%"
	default:
		return "", Raise(ExcValueError, "Unknown format code %q", string(verb))
	}

	// Apply sign for numeric verbs.
	numeric := verb == 0 && IsNumeric(v) || strings.IndexByte("dfFeEgGxX%", verb) >= 0 && verb != 0
	if numeric && sign == '+' && !strings.HasPrefix(body, "-") {
		body = "+" + body
	}
	if numeric && sign == ' ' && !strings.HasPrefix(body, "-") {
		body = " " + body
	}
	if comma {
		body = addThousands(body)
	}
	// Width padding.
	if width > 0 && len(body) < width {
		pad := width - len(body)
		switch {
		case align == '<':
			body += strings.Repeat(string(fill), pad)
		case align == '^':
			l := pad / 2
			body = strings.Repeat(string(fill), l) + body + strings.Repeat(string(fill), pad-l)
		case align == '>':
			body = strings.Repeat(string(fill), pad) + body
		case zero && numeric:
			// Zero-pad after the sign.
			if len(body) > 0 && (body[0] == '-' || body[0] == '+') {
				body = body[:1] + strings.Repeat("0", pad) + body[1:]
			} else {
				body = strings.Repeat("0", pad) + body
			}
		case numeric:
			body = strings.Repeat(" ", pad) + body
		default:
			body += strings.Repeat(" ", pad)
		}
	}
	return body, nil
}

func addThousands(body string) string {
	// Find the integer part boundaries.
	start := 0
	if len(body) > 0 && (body[0] == '-' || body[0] == '+') {
		start = 1
	}
	end := len(body)
	if i := strings.IndexByte(body, '.'); i >= 0 {
		end = i
	}
	intPart := body[start:end]
	var sb strings.Builder
	for i, c := range intPart {
		if i > 0 && (len(intPart)-i)%3 == 0 {
			sb.WriteByte(',')
		}
		sb.WriteRune(c)
	}
	return body[:start] + sb.String() + body[end:]
}
