package pyvalue

import "fmt"

// ExcKind enumerates the Python exception classes the runtime raises,
// plus internal codes used by the engine's return-code exception flow
// (§5: "Tuplex implements exception control flow ... via special return
// codes").
type ExcKind uint8

const (
	// ExcOK is the zero value: no exception.
	ExcOK ExcKind = iota
	// ExcTypeError is Python TypeError.
	ExcTypeError
	// ExcValueError is Python ValueError.
	ExcValueError
	// ExcZeroDivisionError is Python ZeroDivisionError.
	ExcZeroDivisionError
	// ExcIndexError is Python IndexError.
	ExcIndexError
	// ExcKeyError is Python KeyError.
	ExcKeyError
	// ExcAttributeError is Python AttributeError.
	ExcAttributeError
	// ExcOverflowError is Python OverflowError (also raised where this
	// implementation's 64-bit ints diverge from Python's big ints).
	ExcOverflowError
	// ExcNameError is Python NameError (unbound local or unknown global).
	ExcNameError
	// ExcStopIteration signals iterator exhaustion (internal).
	ExcStopIteration

	// ExcBadParse is internal: the row classifier rejected a row (wrong
	// column count or a cell failed to parse as the normal-case type).
	ExcBadParse
	// ExcUnsupported is internal: the construct is outside the compiled
	// subset and the row must be retried on a more general path.
	ExcUnsupported
)

// String returns the Python class name (or internal tag).
func (k ExcKind) String() string {
	switch k {
	case ExcOK:
		return "OK"
	case ExcTypeError:
		return "TypeError"
	case ExcValueError:
		return "ValueError"
	case ExcZeroDivisionError:
		return "ZeroDivisionError"
	case ExcIndexError:
		return "IndexError"
	case ExcKeyError:
		return "KeyError"
	case ExcAttributeError:
		return "AttributeError"
	case ExcOverflowError:
		return "OverflowError"
	case ExcNameError:
		return "NameError"
	case ExcStopIteration:
		return "StopIteration"
	case ExcBadParse:
		return "BadParse"
	case ExcUnsupported:
		return "Unsupported"
	default:
		return fmt.Sprintf("ExcKind(%d)", uint8(k))
	}
}

// Exc is a raised Python exception. It implements error; the engine
// propagates it as a return code rather than a Go panic.
type Exc struct {
	ExcKind ExcKind
	Msg     string
}

func (e *Exc) Error() string {
	if e.Msg == "" {
		return e.ExcKind.String()
	}
	return e.ExcKind.String() + ": " + e.Msg
}

// Raise constructs an exception.
func Raise(kind ExcKind, format string, args ...any) *Exc {
	if len(args) == 0 {
		return &Exc{ExcKind: kind, Msg: format}
	}
	return &Exc{ExcKind: kind, Msg: fmt.Sprintf(format, args...)}
}

// KindOf extracts the exception kind from an error (ExcOK for nil or
// non-Exc errors are reported as ExcUnsupported to stay on the safe,
// general path).
func KindOf(err error) ExcKind {
	if err == nil {
		return ExcOK
	}
	if e, ok := err.(*Exc); ok {
		return e.ExcKind
	}
	return ExcUnsupported
}
