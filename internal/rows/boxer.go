package rows

import (
	"unsafe"

	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/types"
)

// AnyValue converts a boxed pyvalue into the plain-Go `any` form the
// public API hands back: nil, bool, int64, float64, string, []any for
// sequences, map[string]any for dicts, and str() as the escape hatch.
func AnyValue(v pyvalue.Value) any {
	switch v := v.(type) {
	case pyvalue.None:
		return nil
	case pyvalue.Bool:
		return bool(v)
	case pyvalue.Int:
		return int64(v)
	case pyvalue.Float:
		return float64(v)
	case pyvalue.Str:
		return string(v)
	case *pyvalue.List:
		out := make([]any, len(v.Items))
		for i, it := range v.Items {
			out[i] = AnyValue(it)
		}
		return out
	case *pyvalue.Tuple:
		out := make([]any, len(v.Items))
		for i, it := range v.Items {
			out[i] = AnyValue(it)
		}
		return out
	case *pyvalue.Dict:
		out := map[string]any{}
		for _, k := range v.Keys() {
			val, _ := v.Get(k)
			out[k] = AnyValue(val)
		}
		return out
	default:
		return pyvalue.ToStr(v)
	}
}

// Boxer batch-converts unboxed slots into `any` values without one heap
// allocation per cell. Converting a scalar to `any` normally allocates
// (only int64 values 0..255 hit the runtime's static box cache); the
// boxer instead appends the payload to a typed slab and hand-builds the
// interface value as {type word, pointer into slab}, so a million-cell
// result costs a handful of slab growths instead of a million boxes.
//
// Safety: issued interface values hold interior pointers into the slab
// arrays. Slab growth reallocates, but the superseded arrays stay
// reachable through those interior pointers and slab cells are never
// mutated after issue, so every issued value stays valid. The layout
// assumption (eface = {typ, data}) is verified at init by a round-trip
// self-test; if it ever fails the boxer degrades to ordinary boxing.
//
// A Boxer is single-goroutine state; use one per merge/collect task.
type Boxer struct {
	i64  []int64
	f64  []float64
	str  []string
	anys []any
}

// eface mirrors the runtime's empty-interface header.
type eface struct{ typ, data unsafe.Pointer }

func typePtr(v any) unsafe.Pointer { return (*eface)(unsafe.Pointer(&v)).typ }

var (
	i64Type = typePtr(int64(0))
	f64Type = typePtr(float64(0))
	strType = typePtr("")

	// fastEface gates the slab path on the runtime actually using the
	// assumed interface layout.
	fastEface = efaceSelfTest()
)

func slabFace(typ, data unsafe.Pointer) any {
	var out any
	e := (*eface)(unsafe.Pointer(&out))
	e.typ = typ
	e.data = data
	return out
}

func efaceSelfTest() bool {
	i, f, s := int64(123456), 2.5, "tuplex"
	iv, iok := slabFace(i64Type, unsafe.Pointer(&i)).(int64)
	fv, fok := slabFace(f64Type, unsafe.Pointer(&f)).(float64)
	sv, sok := slabFace(strType, unsafe.Pointer(&s)).(string)
	return iok && fok && sok && iv == i && fv == f && sv == s
}

// Grow preallocates slab capacity for roughly nRows rows of nCells
// cells each.
func (b *Boxer) Grow(nRows, nCells int) {
	n := nRows * nCells
	if cap(b.anys)-len(b.anys) < n {
		next := make([]any, len(b.anys), len(b.anys)+n)
		copy(next, b.anys)
		b.anys = next
	}
}

// Box converts one slot.
func (b *Boxer) Box(s Slot) any {
	switch s.Tag {
	case types.KindNull:
		return nil
	case types.KindBool:
		return s.B
	case types.KindI64:
		if !fastEface || (s.I >= 0 && s.I < 256) {
			// 0..255 hit the runtime's static box cache: no allocation
			// and no slab entry needed.
			return s.I
		}
		b.i64 = append(b.i64, s.I)
		return slabFace(i64Type, unsafe.Pointer(&b.i64[len(b.i64)-1]))
	case types.KindF64:
		if !fastEface {
			return s.F
		}
		b.f64 = append(b.f64, s.F)
		return slabFace(f64Type, unsafe.Pointer(&b.f64[len(b.f64)-1]))
	case types.KindStr:
		if !fastEface {
			return s.S
		}
		b.str = append(b.str, s.S)
		return slabFace(strType, unsafe.Pointer(&b.str[len(b.str)-1]))
	default:
		return AnyValue(s.Value())
	}
}

// BoxRow converts one unboxed row, returning a slice backed by the
// boxer's shared []any slab (capped, so later appends never alias it).
func (b *Boxer) BoxRow(r Row) []any {
	start := len(b.anys)
	for _, s := range r {
		b.anys = append(b.anys, b.Box(s))
	}
	return b.anys[start:len(b.anys):len(b.anys)]
}
