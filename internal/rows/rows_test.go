package rows

import (
	"testing"
	"testing/quick"

	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/types"
)

// arbValue builds a deterministic boxed value from seed bits.
func arbValue(seed uint64, depth int) pyvalue.Value {
	switch seed % 8 {
	case 0:
		return pyvalue.None{}
	case 1:
		return pyvalue.Bool(seed&16 != 0)
	case 2:
		return pyvalue.Int(int64(seed >> 3))
	case 3:
		return pyvalue.Float(float64(seed>>3) / 7)
	case 4, 5:
		return pyvalue.Str(string(rune('a' + seed%26)))
	default:
		if depth <= 0 {
			return pyvalue.Int(int64(seed))
		}
		items := []pyvalue.Value{arbValue(seed>>3, depth-1), arbValue(seed>>7, depth-1)}
		if seed%2 == 0 {
			return &pyvalue.List{Items: items}
		}
		return &pyvalue.Tuple{Items: items}
	}
}

func TestSlotValueRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		v := arbValue(seed, 3)
		got := FromValue(v).Value()
		return pyvalue.Equal(v, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlotTruthMatchesBoxed(t *testing.T) {
	f := func(seed uint64) bool {
		v := arbValue(seed, 2)
		return FromValue(v).Truth() == pyvalue.Truth(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlotEqualMatchesBoxed(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		a, b := arbValue(s1, 2), arbValue(s2, 2)
		return Equal(FromValue(a), FromValue(b)) == pyvalue.Equal(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatches(t *testing.T) {
	cases := []struct {
		s    Slot
		t    types.Type
		want bool
	}{
		{I64(5), types.I64, true},
		{I64(5), types.F64, false},
		{Null(), types.Option(types.I64), true},
		{I64(5), types.Option(types.I64), true},
		{Str("x"), types.Option(types.I64), false},
		{Null(), types.Null, true},
		{Str(""), types.Null, false},
		{Bool(true), types.Bool, true},
		{List([]Slot{I64(1)}), types.List(types.I64), true},
		{List([]Slot{Str("a")}), types.List(types.I64), false},
		{Tuple([]Slot{I64(1), Str("a")}), types.Tuple(types.I64, types.Str), true},
		{Tuple([]Slot{I64(1)}), types.Tuple(types.I64, types.Str), false},
		{I64(5), types.Any, true},
	}
	for _, c := range cases {
		if got := Matches(c.s, c.t); got != c.want {
			t.Errorf("Matches(%v, %s) = %v, want %v", c.s, c.t, got, c.want)
		}
	}
}

func TestRenderString(t *testing.T) {
	cases := []struct {
		s    Slot
		want string
	}{
		{Null(), ""},
		{Bool(true), "True"},
		{I64(-5), "-5"},
		{F64(2.5), "2.5"},
		{F64(2e7), "20000000.0"},
		{Str("plain"), "plain"},
	}
	for _, c := range cases {
		if got := c.s.RenderString(); got != c.want {
			t.Errorf("RenderString(%v) = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestDictAndTupleRow(t *testing.T) {
	row := Row{I64(1), Str("x")}
	d := DictRow([]string{"a", "b"}, row)
	if v, _ := d.Get("b"); !pyvalue.Equal(v, pyvalue.Str("x")) {
		t.Fatalf("DictRow = %s", pyvalue.Repr(d))
	}
	tu := TupleRow(row)
	if len(tu.Items) != 2 || !pyvalue.Equal(tu.Items[0], pyvalue.Int(1)) {
		t.Fatalf("TupleRow = %s", pyvalue.Repr(tu))
	}
}

func TestCopyRowIndependent(t *testing.T) {
	r := Row{I64(1), Str("x")}
	cp := CopyRow(r)
	cp[0] = I64(99)
	if r[0].I != 1 {
		t.Fatal("CopyRow aliased the source")
	}
}
