package rows

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/gotuplex/tuplex/internal/pyvalue"
)

func TestBoxerScalarsMatchPlainBoxing(t *testing.T) {
	slots := []Slot{
		Null(), Bool(true), Bool(false),
		I64(0), I64(7), I64(255), I64(256), I64(-1), I64(1 << 62),
		F64(0), F64(2.5), F64(-1e300),
		Str(""), Str("hello"), Str("quoted,\"cell\""),
		List([]Slot{I64(1), Str("x")}),
		Tuple([]Slot{F64(0.5), Null()}),
	}
	var b Boxer
	for _, s := range slots {
		got := b.Box(s)
		want := AnyValue(s.Value())
		if fmt.Sprintf("%#v", got) != fmt.Sprintf("%#v", want) {
			t.Fatalf("Box(%v) = %#v, want %#v", s, got, want)
		}
	}
}

// Slab growth must not invalidate previously issued interface values:
// they hold interior pointers into superseded arrays, which stay alive.
func TestBoxerSlabGrowthKeepsIssuedValues(t *testing.T) {
	var b Boxer
	const n = 50_000
	out := make([][]any, n)
	for i := range n {
		out[i] = b.BoxRow(Row{I64(int64(i) + 1000), F64(float64(i) * 0.5), Str(fmt.Sprintf("s%d", i))})
	}
	runtime.GC()
	runtime.GC()
	for i, r := range out {
		if r[0] != int64(i)+1000 || r[1] != float64(i)*0.5 || r[2] != fmt.Sprintf("s%d", i) {
			t.Fatalf("row %d = %v after slab growth", i, r)
		}
	}
}

func TestBoxerAllocsAmortized(t *testing.T) {
	if !fastEface {
		t.Skip("runtime interface layout differs; slab path disabled")
	}
	const rowsN = 1000
	avg := testing.AllocsPerRun(10, func() {
		var b Boxer
		b.Grow(rowsN, 3)
		for i := range rowsN {
			b.BoxRow(Row{I64(int64(i) + 500), F64(float64(i)), Str("abc")})
		}
	})
	// Plain boxing would cost ~3 allocations per row (3000 total); the
	// slab path should only pay geometric slab growth.
	if avg > 200 {
		t.Fatalf("allocs per 1000 rows = %.0f, want amortized slab growth only", avg)
	}
}

func TestAnyValueComplex(t *testing.T) {
	d := pyvalue.NewDict()
	d.Set("k", pyvalue.Int(3))
	got := AnyValue(d)
	m, ok := got.(map[string]any)
	if !ok || m["k"] != int64(3) {
		t.Fatalf("AnyValue(dict) = %#v", got)
	}
	l := &pyvalue.List{Items: []pyvalue.Value{pyvalue.Str("a"), pyvalue.None{}}}
	lv, ok := AnyValue(l).([]any)
	if !ok || lv[0] != "a" || lv[1] != nil {
		t.Fatalf("AnyValue(list) = %#v", AnyValue(l))
	}
}
