package rows

import (
	"encoding/binary"
	"math"

	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/types"
)

// Canonical key encodings for the hash kernels (join build/probe, unique
// terminal). Both encoders append into a caller-owned scratch buffer so
// the per-row hot path performs no heap allocation: the caller keeps one
// buffer per task and reuses its capacity across rows. Equality of the
// encoded bytes is exactly key equality, so hash tables store the bytes
// once and probe with a hash lookup plus one bytes comparison.

// Key-encoding tag bytes. They are distinct from each other and never
// ambiguous within one encoding because every variable-length payload is
// length-prefixed (AppendRowKey) or spans the rest of the buffer
// (AppendJoinKey, single-slot).
const (
	keyInt   = 'i' // 8-byte little-endian two's-complement int64
	keyFloat = 'f' // 8-byte little-endian IEEE-754 bits
	keyStr   = 's' // raw bytes (join key) / length-prefixed (row key)
	keyNull  = 'n'
	keyBool  = 'b'
	keySeq   = 'q' // list/tuple: count prefix then elements
	keyObj   = 'o' // boxed escape hatch: length-prefixed str() rendering
)

// int64-exact range guard: float64 values in [-2^63, 2^63) convert to
// int64 without overflow. 2^63 itself is exactly representable as a
// float64 but not as an int64, so the upper bound is exclusive; out-of-
// range conversions are implementation-defined in Go (they saturate
// differently across architectures), which previously collapsed distinct
// float keys onto the saturated int64.
const (
	minExactI64F = -9223372036854775808.0 // -2^63
	maxExactI64F = 9223372036854775808.0  // 2^63 (exclusive)
)

// normalizeNumeric reports whether s is a numeric slot whose value is an
// in-range integer, and that integer. Python equality makes 1, 1.0 and
// True the same join key, so all three normalize to the int64 form.
func normalizeNumeric(s Slot) (int64, bool) {
	switch s.Tag {
	case types.KindBool:
		if s.B {
			return 1, true
		}
		return 0, true
	case types.KindI64:
		return s.I, true
	case types.KindF64:
		if s.F >= minExactI64F && s.F < maxExactI64F && s.F == float64(int64(s.F)) {
			return int64(s.F), true
		}
	}
	return 0, false
}

// AppendJoinKey appends the canonical join-key encoding of s to buf and
// returns the extended buffer. ok is false for None (null keys never
// match) and for slot kinds that cannot be join keys.
func AppendJoinKey(buf []byte, s Slot) (_ []byte, ok bool) {
	if n, isInt := normalizeNumeric(s); isInt {
		buf = append(buf, keyInt)
		return binary.LittleEndian.AppendUint64(buf, uint64(n)), true
	}
	switch s.Tag {
	case types.KindStr:
		buf = append(buf, keyStr)
		return append(buf, s.S...), true
	case types.KindF64:
		// Non-integral or out-of-int64-range floats key on their bits.
		// (-0.0 and NaN never reach here un-normalized in a surprising
		// way: -0.0 normalizes to integer 0 above, and NaN keys equal
		// other identical-bit NaNs, matching the previous formatting-
		// based behavior.)
		buf = append(buf, keyFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.F)), true
	default:
		return buf, false
	}
}

// AppendJoinKeyValue is AppendJoinKey over a boxed value.
func AppendJoinKeyValue(buf []byte, v pyvalue.Value) ([]byte, bool) {
	return AppendJoinKey(buf, FromValue(v))
}

// AppendRowKey appends a deduplication key for a whole row. Every
// variable-length payload carries a uvarint length prefix, so a string
// cell containing tag or separator bytes can never collide with a
// different cell split (the previous 0-byte-joined rendering could).
// Unlike join keys, row keys do not normalize numerics: unique()
// deduplicates rows, and the engine has always kept 1, 1.0 and True
// distinct there (the slot tag is part of the key).
func AppendRowKey(buf []byte, row Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	for _, s := range row {
		buf = appendSlotKey(buf, s)
	}
	return buf
}

func appendSlotKey(buf []byte, s Slot) []byte {
	switch s.Tag {
	case types.KindNull:
		return append(buf, keyNull)
	case types.KindBool:
		b := byte(0)
		if s.B {
			b = 1
		}
		return append(buf, keyBool, b)
	case types.KindI64:
		buf = append(buf, keyInt)
		return binary.LittleEndian.AppendUint64(buf, uint64(s.I))
	case types.KindF64:
		buf = append(buf, keyFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.F))
	case types.KindStr:
		buf = append(buf, keyStr)
		buf = binary.AppendUvarint(buf, uint64(len(s.S)))
		return append(buf, s.S...)
	case types.KindList, types.KindTuple:
		buf = append(buf, keySeq, byte(s.Tag))
		buf = binary.AppendUvarint(buf, uint64(len(s.Seq)))
		for _, e := range s.Seq {
			buf = appendSlotKey(buf, e)
		}
		return buf
	default:
		// Dicts/match objects/opaque values: key on the str() rendering
		// (rare; these only reach terminals through the boxed paths).
		r := pyvalue.ToStr(s.Value())
		buf = append(buf, keyObj)
		buf = binary.AppendUvarint(buf, uint64(len(r)))
		return append(buf, r...)
	}
}

// Hash64 is the canonical 64-bit key hash: FNV-1a with a murmur3
// finalizer so the low bits (used for shard selection) avalanche.
func Hash64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
