// Package rows defines the unboxed row representation shared by the
// compiled fast path, the generated CSV parser and the execution engine.
//
// A Slot is a tagged union holding one Python value without heap boxing;
// a row is a []Slot. The compiled normal-case path reads and writes Slots
// directly — this is the Go analog of the flat tuple memory layout
// Tuplex's LLVM-generated code operates on, and the reason the fast path
// avoids the allocation costs that dominate the boxed interpreter.
package rows

import (
	"strconv"
	"strings"

	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/types"
)

// Tag discriminates slot contents. It deliberately mirrors types.Kind for
// the kinds a slot can hold at runtime.
type Tag = types.Kind

// Slot is one unboxed value.
type Slot struct {
	Tag Tag
	B   bool
	I   int64
	F   float64
	S   string
	// Seq holds list/tuple elements.
	Seq []Slot
	// Obj is the boxed escape hatch for values the unboxed representation
	// does not model (dicts, match objects). The compiled path only
	// produces it for KindDict/KindMatch/KindAny slots.
	Obj pyvalue.Value
}

// Convenience constructors.
func Null() Slot              { return Slot{Tag: types.KindNull} }
func Bool(b bool) Slot        { return Slot{Tag: types.KindBool, B: b} }
func I64(i int64) Slot        { return Slot{Tag: types.KindI64, I: i} }
func F64(f float64) Slot      { return Slot{Tag: types.KindF64, F: f} }
func Str(s string) Slot       { return Slot{Tag: types.KindStr, S: s} }
func List(elems []Slot) Slot  { return Slot{Tag: types.KindList, Seq: elems} }
func Tuple(elems []Slot) Slot { return Slot{Tag: types.KindTuple, Seq: elems} }

// Obj wraps a boxed value (dict, match, or anything else).
func Obj(v pyvalue.Value) Slot {
	switch v.(type) {
	case *pyvalue.Dict:
		return Slot{Tag: types.KindDict, Obj: v}
	case *pyvalue.Match:
		return Slot{Tag: types.KindMatch, Obj: v}
	default:
		return Slot{Tag: types.KindAny, Obj: v}
	}
}

// IsNull reports a None slot.
func (s Slot) IsNull() bool { return s.Tag == types.KindNull }

// Truth implements Python truthiness on slots.
func (s Slot) Truth() bool {
	switch s.Tag {
	case types.KindNull:
		return false
	case types.KindBool:
		return s.B
	case types.KindI64:
		return s.I != 0
	case types.KindF64:
		return s.F != 0
	case types.KindStr:
		return s.S != ""
	case types.KindList, types.KindTuple:
		return len(s.Seq) > 0
	case types.KindDict, types.KindMatch, types.KindAny:
		return pyvalue.Truth(s.Obj)
	default:
		return true
	}
}

// Value boxes the slot into a pyvalue (crossing from the fast path to the
// exception/fallback paths).
func (s Slot) Value() pyvalue.Value {
	switch s.Tag {
	case types.KindNull:
		return pyvalue.None{}
	case types.KindBool:
		return pyvalue.Bool(s.B)
	case types.KindI64:
		return pyvalue.Int(s.I)
	case types.KindF64:
		return pyvalue.Float(s.F)
	case types.KindStr:
		return pyvalue.Str(s.S)
	case types.KindList:
		items := make([]pyvalue.Value, len(s.Seq))
		for i, e := range s.Seq {
			items[i] = e.Value()
		}
		return &pyvalue.List{Items: items}
	case types.KindTuple:
		items := make([]pyvalue.Value, len(s.Seq))
		for i, e := range s.Seq {
			items[i] = e.Value()
		}
		return &pyvalue.Tuple{Items: items}
	case types.KindDict, types.KindMatch, types.KindAny:
		return s.Obj
	default:
		return pyvalue.None{}
	}
}

// FromValue unboxes a pyvalue into a slot.
func FromValue(v pyvalue.Value) Slot {
	switch v := v.(type) {
	case pyvalue.None:
		return Null()
	case pyvalue.Bool:
		return Bool(bool(v))
	case pyvalue.Int:
		return I64(int64(v))
	case pyvalue.Float:
		return F64(float64(v))
	case pyvalue.Str:
		return Str(string(v))
	case *pyvalue.List:
		elems := make([]Slot, len(v.Items))
		for i, it := range v.Items {
			elems[i] = FromValue(it)
		}
		return List(elems)
	case *pyvalue.Tuple:
		elems := make([]Slot, len(v.Items))
		for i, it := range v.Items {
			elems[i] = FromValue(it)
		}
		return Tuple(elems)
	default:
		return Obj(v)
	}
}

// Equal compares two slots with Python == semantics.
func Equal(a, b Slot) bool {
	switch a.Tag {
	case types.KindBool, types.KindI64, types.KindF64:
		an, aok := a.numeric()
		bn, bok := b.numeric()
		return aok && bok && an == bn
	case types.KindNull:
		return b.Tag == types.KindNull
	case types.KindStr:
		return b.Tag == types.KindStr && a.S == b.S
	case types.KindList, types.KindTuple:
		if b.Tag != a.Tag || len(a.Seq) != len(b.Seq) {
			return false
		}
		for i := range a.Seq {
			if !Equal(a.Seq[i], b.Seq[i]) {
				return false
			}
		}
		return true
	default:
		return pyvalue.Equal(a.Value(), b.Value())
	}
}

func (s Slot) numeric() (float64, bool) {
	switch s.Tag {
	case types.KindBool:
		if s.B {
			return 1, true
		}
		return 0, true
	case types.KindI64:
		return float64(s.I), true
	case types.KindF64:
		return s.F, true
	default:
		return 0, false
	}
}

// Matches reports whether the slot's runtime tag satisfies the static
// type t (used by the row classifier and by tests).
func Matches(s Slot, t types.Type) bool {
	switch t.Kind() {
	case types.KindAny:
		return true
	case types.KindOption:
		return s.Tag == types.KindNull || Matches(s, t.Elem())
	case types.KindNull:
		return s.Tag == types.KindNull
	case types.KindList:
		if s.Tag != types.KindList {
			return false
		}
		for _, e := range s.Seq {
			if !Matches(e, t.Elem()) {
				return false
			}
		}
		return true
	case types.KindTuple:
		if s.Tag != types.KindTuple || len(s.Seq) != len(t.Elts()) {
			return false
		}
		for i, e := range s.Seq {
			if !Matches(e, t.Elts()[i]) {
				return false
			}
		}
		return true
	default:
		return s.Tag == t.Kind()
	}
}

// Render writes the slot as a CSV cell body (quoting is the writer's
// job): Python str() of the value, with None rendered as empty.
func (s Slot) Render(sb *strings.Builder) {
	switch s.Tag {
	case types.KindNull:
	case types.KindBool:
		if s.B {
			sb.WriteString("True")
		} else {
			sb.WriteString("False")
		}
	case types.KindI64:
		sb.WriteString(strconv.FormatInt(s.I, 10))
	case types.KindF64:
		sb.WriteString(pyvalue.FloatRepr(s.F))
	case types.KindStr:
		sb.WriteString(s.S)
	default:
		sb.WriteString(pyvalue.ToStr(s.Value()))
	}
}

// RenderString is Render into a fresh string.
func (s Slot) RenderString() string {
	var sb strings.Builder
	s.Render(&sb)
	return sb.String()
}

// AppendRender appends the CSV cell body of the slot to dst — the
// allocation-free analog of Render used by the byte-based CSV writer.
// Must stay byte-identical with Render.
func (s Slot) AppendRender(dst []byte) []byte {
	switch s.Tag {
	case types.KindNull:
		return dst
	case types.KindBool:
		if s.B {
			return append(dst, "True"...)
		}
		return append(dst, "False"...)
	case types.KindI64:
		return strconv.AppendInt(dst, s.I, 10)
	case types.KindF64:
		return pyvalue.AppendFloatRepr(dst, s.F)
	case types.KindStr:
		return append(dst, s.S...)
	default:
		return append(dst, pyvalue.ToStr(s.Value())...)
	}
}

// Row is one data row on the compiled path.
type Row = []Slot

// CopyRow returns an independent copy of r (Seq slices shared; the fast
// path never mutates sequence elements in place).
func CopyRow(r Row) Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// RowToValues boxes a whole row.
func RowToValues(r Row) []pyvalue.Value {
	out := make([]pyvalue.Value, len(r))
	for i, s := range r {
		out[i] = s.Value()
	}
	return out
}

// RowFromValues unboxes a whole row.
func RowFromValues(vs []pyvalue.Value) Row {
	out := make(Row, len(vs))
	for i, v := range vs {
		out[i] = FromValue(v)
	}
	return out
}

// DictRow boxes a row as a Python dict keyed by column names (the
// fallback path's row representation for dict-style UDF access).
func DictRow(names []string, r Row) *pyvalue.Dict {
	d := pyvalue.NewDict()
	for i, n := range names {
		d.Set(n, r[i].Value())
	}
	return d
}

// TupleRow boxes a row as a Python tuple (tuple-style UDF access).
func TupleRow(r Row) *pyvalue.Tuple {
	return &pyvalue.Tuple{Items: RowToValues(r)}
}
