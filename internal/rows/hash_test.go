package rows

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/gotuplex/tuplex/internal/types"
)

func joinKey(t *testing.T, s Slot) []byte {
	t.Helper()
	buf, ok := AppendJoinKey(nil, s)
	if !ok {
		t.Fatalf("AppendJoinKey(%v) not ok", s)
	}
	return buf
}

func TestJoinKeyNumericNormalization(t *testing.T) {
	// 1, 1.0 and True are the same Python join key.
	one := joinKey(t, I64(1))
	if !bytes.Equal(one, joinKey(t, F64(1.0))) {
		t.Fatal("1 and 1.0 should share a join key")
	}
	if !bytes.Equal(one, joinKey(t, Bool(true))) {
		t.Fatal("1 and True should share a join key")
	}
	if !bytes.Equal(joinKey(t, I64(0)), joinKey(t, F64(-0.0))) {
		t.Fatal("0 and -0.0 should share a join key")
	}
	if bytes.Equal(one, joinKey(t, Str("1"))) {
		t.Fatal("int 1 and str '1' must not share a join key")
	}
	if bytes.Equal(joinKey(t, F64(1.5)), joinKey(t, I64(1))) {
		t.Fatal("1.5 must not normalize to 1")
	}
}

// Regression (float normalization overflow): floats beyond the exact
// int64 range must not be collapsed onto a saturated int64 — the
// out-of-range float→int64 conversion is implementation-defined, and on
// saturating platforms 2^63 used to alias MaxInt64.
func TestJoinKeyFloatOverflowGuard(t *testing.T) {
	two63 := math.Ldexp(1, 63) // 2^63, exactly representable as float64
	if bytes.Equal(joinKey(t, F64(two63)), joinKey(t, I64(math.MaxInt64))) {
		t.Fatal("float 2^63 collapsed onto int64 max")
	}
	if bytes.Equal(joinKey(t, F64(-math.Ldexp(1, 64))), joinKey(t, I64(math.MinInt64))) {
		t.Fatal("float -2^64 collapsed onto int64 min")
	}
	if bytes.Equal(joinKey(t, F64(1e19)), joinKey(t, F64(2e19))) {
		t.Fatal("distinct out-of-range floats share a key")
	}
	// Boundary values that are exactly representable both ways still
	// normalize: -2^63 is a valid int64.
	if !bytes.Equal(joinKey(t, F64(-two63)), joinKey(t, I64(math.MinInt64))) {
		t.Fatal("float -2^63 should normalize to int64 min")
	}
	// Large but in-range integral floats normalize to their int64 value.
	if !bytes.Equal(joinKey(t, F64(math.Ldexp(1, 62))), joinKey(t, I64(1<<62))) {
		t.Fatal("float 2^62 should normalize to int64 2^62")
	}
}

func TestJoinKeyNullAndUnsupported(t *testing.T) {
	if _, ok := AppendJoinKey(nil, Null()); ok {
		t.Fatal("None must not produce a join key")
	}
	if _, ok := AppendJoinKey(nil, List([]Slot{I64(1)})); ok {
		t.Fatal("lists must not produce a join key")
	}
}

// Regression (uniqueKey framing collision): under the old 0-byte/tag-byte
// concatenation, a string cell containing "\x00"+tag collided with a
// different split of the same bytes across two cells. Length prefixes
// make the encoding injective.
func TestRowKeyFramingCollision(t *testing.T) {
	tag := string([]byte{byte(types.KindStr)})
	a := Row{Str("x\x00" + tag + "y"), Str("z")}
	b := Row{Str("x"), Str("y\x00" + tag + "z")}
	if bytes.Equal(AppendRowKey(nil, a), AppendRowKey(nil, b)) {
		t.Fatal("distinct rows share a row key (framing collision)")
	}
}

func TestRowKeyMatchesSlotEquality(t *testing.T) {
	// Rows of identical slots produce identical keys; tag differences
	// (1 vs 1.0 vs True vs "1") keep rows distinct, matching the unique
	// terminal's historical semantics.
	same := func(r Row) bool {
		return bytes.Equal(AppendRowKey(nil, r), AppendRowKey(nil, CopyRow(r)))
	}
	if !same(Row{I64(1), Str("a"), Null(), F64(2.5), List([]Slot{I64(1), Str("x")})}) {
		t.Fatal("identical rows must share a key")
	}
	distinct := []Row{
		{I64(1)}, {F64(1.0)}, {Bool(true)}, {Str("1")}, {Null()},
		{Tuple([]Slot{I64(1)})}, {List([]Slot{I64(1)})},
	}
	for i := range distinct {
		for j := range distinct {
			if i == j {
				continue
			}
			if bytes.Equal(AppendRowKey(nil, distinct[i]), AppendRowKey(nil, distinct[j])) {
				t.Fatalf("rows %d and %d share a key", i, j)
			}
		}
	}
}

func TestRowKeyInjectiveOverArbRows(t *testing.T) {
	// Property: equal boxed rows ⇒ equal keys, and (for the generator's
	// value space) different renderings ⇒ different keys.
	f := func(s1, s2 uint64) bool {
		r1 := Row{FromValue(arbValue(s1, 2)), FromValue(arbValue(s2, 2))}
		r2 := Row{FromValue(arbValue(s1, 2)), FromValue(arbValue(s2, 2))}
		return bytes.Equal(AppendRowKey(nil, r1), AppendRowKey(nil, r2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash64(t *testing.T) {
	if Hash64([]byte("a")) == Hash64([]byte("b")) {
		t.Fatal("trivial collision")
	}
	if Hash64(nil) != Hash64([]byte{}) {
		t.Fatal("empty hash not stable")
	}
	// Shard selection uses the low bits: check they spread over a tiny
	// keyspace instead of clumping (FNV without a finalizer fails this).
	const shards = 8
	var hit [shards]bool
	for i := range 64 {
		var buf [1]byte
		buf[0] = byte(i)
		hit[Hash64(buf[:])&(shards-1)] = true
	}
	for s, ok := range hit {
		if !ok {
			t.Fatalf("no key landed in shard %d", s)
		}
	}
}

func BenchmarkAppendJoinKey(b *testing.B) {
	s := Str("some-moderately-long-join-key")
	var buf []byte
	b.ReportAllocs()
	for range b.N {
		buf = buf[:0]
		buf, _ = AppendJoinKey(buf, s)
		_ = Hash64(buf)
	}
}

func BenchmarkAppendRowKey(b *testing.B) {
	r := Row{I64(42), Str("cambridge"), F64(1.5), Null()}
	var buf []byte
	b.ReportAllocs()
	for range b.N {
		buf = buf[:0]
		buf = AppendRowKey(buf, r)
		_ = Hash64(buf)
	}
}
