// Package trace is the engine's run-scoped observability layer: a
// Tracer threaded through core.Execute records hierarchical spans
// (plan → per-stage sample/compile/execute/resolve → sink) with wall
// times, per-executor task timings, and — at the higher levels — the
// row-routing ledger that explains where every row went (normal /
// general / fallback / resolver path per operator, §5) plus a bounded
// sample of exception rows for debugging dirty data.
//
// Cost contract: the span tree itself allocates O(stages), never per
// row. At LevelSpans (the default) the compiled normal path is built
// without any tracing instrumentation, so hot loops are byte-for-byte
// the untraced ones — zero allocations and zero extra work per row. At
// LevelRows each operator step additionally increments one slot of a
// per-task scratch counter array (no atomics, no allocation); the
// arrays merge once at stage finish. Exception-path accounting uses
// shared atomics, which is fine because exception rows are rare by
// construction. LevelSamples additionally retains up to MaxExcSamples
// rendered exception rows per stage.
//
// The Tracer's span stack is driven by the serial engine driver only
// (stage execution is parallel, but span begin/end is not); per-task
// data is gathered into spans after the workers join, so no locking is
// needed. All exported span fields are plain values with stable JSON
// tags — the public tuplex.Trace view marshals them round-trip exactly.
package trace

import (
	"strconv"
	"time"
)

// Level selects how much a run records.
type Level uint8

const (
	// LevelOff disables tracing entirely (Result.Trace is nil).
	LevelOff Level = iota
	// LevelSpans records the span tree, per-stage aggregates and
	// per-task timings. This is the default: zero per-row overhead.
	LevelSpans
	// LevelRows additionally records the per-operator row-routing
	// ledger (one counter increment per operator per row, no
	// allocations).
	LevelRows
	// LevelSamples additionally retains a bounded sample of exception
	// rows (kind, operator, rendered input, outcome) per stage.
	LevelSamples
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelOff:
		return "off"
	case LevelSpans:
		return "spans"
	case LevelRows:
		return "rows"
	case LevelSamples:
		return "samples"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// MaxExcSamples bounds the per-stage exception-row sample at
// LevelSamples.
const MaxExcSamples = 16

// MaxSampleInput bounds the rendered input of one sampled exception row.
const MaxSampleInput = 160

// Attr is one key/value annotation on a span. Values are strings so the
// JSON form is stable and round-trips exactly.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Str builds a string attribute.
func Str(key, val string) Attr { return Attr{Key: key, Val: val} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Val: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Val: strconv.FormatBool(v)} }

// TaskTiming is one executor task (one partition / one streamed chunk)
// within a stage's execute phase.
type TaskTiming struct {
	// Part is the partition index the task processed.
	Part int `json:"part"`
	// Worker is the executor slot that ran the task.
	Worker int `json:"worker"`
	// Rows is the number of input rows the task consumed.
	Rows int64 `json:"rows"`
	// StartNS is the task start, as nanoseconds since the run started.
	StartNS int64 `json:"start_ns"`
	// DurNS is the task wall time in nanoseconds.
	DurNS int64 `json:"dur_ns"`
}

// OpRouting is the row-routing ledger entry for one operator: where its
// rows went across the engine's paths (§5). Index 0 of a stage's ledger
// is the source/parse pseudo-operator and the last entry is the stage
// terminal; entries in between follow the stage's operator order.
//
// Attribution contract: every pooled exception row is attributed to the
// operator that raised it on the normal path (or to the source entry
// for classifier/parse rejects and rows carried over from the previous
// stage's exception paths); its eventual outcome — resolved on the
// general path, the fallback interpreter, by a user resolver, ignored,
// or failed — is counted on that same entry, so per-stage ledger totals
// reconcile exactly with the run's Metrics path counters.
type OpRouting struct {
	// Op names the operator ("source", "map", "join(code)", ...).
	Op string `json:"op"`
	// NormalIn counts rows entering this operator on the compiled
	// normal path (recorded at LevelRows and above).
	NormalIn int64 `json:"normal_in"`
	// NormalExc counts rows that raised at this operator on the normal
	// path (including classifier rejects on the source entry).
	NormalExc int64 `json:"normal_exc"`
	// GeneralIn / FallbackIn count rows entering this operator on the
	// compiled general path / the interpreter fallback path.
	GeneralIn  int64 `json:"general_in"`
	FallbackIn int64 `json:"fallback_in"`
	// GeneralResolved / FallbackResolved / ResolverResolved count rows
	// raised at this operator that the respective path recovered.
	GeneralResolved  int64 `json:"general_resolved"`
	FallbackResolved int64 `json:"fallback_resolved"`
	ResolverResolved int64 `json:"resolver_resolved"`
	// Ignored / Failed count rows raised at this operator that an
	// ignore() handler dropped / that no path could process.
	Ignored int64 `json:"ignored"`
	Failed  int64 `json:"failed"`
	// Bounced counts rows that left the columnar batch plane at this
	// operator (the stage barrier) and finished on the row bridge.
	Bounced int64 `json:"bounced,omitempty"`
}

// Zero reports whether the entry recorded no activity.
func (r OpRouting) Zero() bool {
	return r.NormalIn == 0 && r.NormalExc == 0 && r.GeneralIn == 0 && r.FallbackIn == 0 &&
		r.GeneralResolved == 0 && r.FallbackResolved == 0 && r.ResolverResolved == 0 &&
		r.Ignored == 0 && r.Failed == 0 && r.Bounced == 0
}

// ExcSample is one retained exception row (LevelSamples).
type ExcSample struct {
	// Op is the operator the row raised at (ledger attribution).
	Op string `json:"op"`
	// Exc is the Python exception class raised on the normal path.
	Exc string `json:"exc"`
	// Input is the rendered input row, truncated to MaxSampleInput.
	Input string `json:"input"`
	// Outcome is "general", "fallback", "resolver", "ignored" or
	// "failed".
	Outcome string `json:"outcome"`
}

// Span is one node of the trace tree.
type Span struct {
	Name    string `json:"name"`
	Attrs   []Attr `json:"attrs,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	// Tasks holds per-executor task timings (execute spans).
	Tasks []TaskTiming `json:"tasks,omitempty"`
	// Routing is the stage's row-routing ledger (stage spans,
	// LevelRows+).
	Routing []OpRouting `json:"routing,omitempty"`
	// Samples holds retained exception rows (stage spans, LevelSamples).
	Samples  []ExcSample `json:"samples,omitempty"`
	Children []*Span     `json:"children,omitempty"`
}

// Add appends attributes; nil-safe so callers need no tracer checks.
func (s *Span) Add(attrs ...Attr) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// Trace is one finished run.
type Trace struct {
	Level Level `json:"level"`
	Root  *Span `json:"root"`
}

// Tracer records one run. A nil *Tracer is the disabled tracer: every
// method is a no-op, so call sites never branch on the level for span
// work (only per-row instrumentation checks Rows/Samples up front).
type Tracer struct {
	level Level
	t0    time.Time
	root  *Span
	stack []*Span
}

// New returns a Tracer for the level, or nil when tracing is off.
func New(level Level) *Tracer {
	if level <= LevelOff {
		return nil
	}
	t := &Tracer{level: level, t0: time.Now()}
	t.root = &Span{Name: "run"}
	t.stack = []*Span{t.root}
	return t
}

// Level reports the tracer's level (LevelOff for nil).
func (t *Tracer) Level() Level {
	if t == nil {
		return LevelOff
	}
	return t.level
}

// Rows reports whether the row-routing ledger is recorded.
func (t *Tracer) Rows() bool { return t.Level() >= LevelRows }

// Samples reports whether exception rows are sampled.
func (t *Tracer) Samples() bool { return t.Level() >= LevelSamples }

// OffsetNS converts an absolute time to nanoseconds since run start.
func (t *Tracer) OffsetNS(at time.Time) int64 {
	if t == nil {
		return 0
	}
	return at.Sub(t.t0).Nanoseconds()
}

func (t *Tracer) now() int64 { return time.Since(t.t0).Nanoseconds() }

// Begin opens a child span of the current span and makes it current.
// Must be called from the serial engine driver only.
func (t *Tracer) Begin(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Name: name, Attrs: attrs, StartNS: t.now()}
	parent := t.stack[len(t.stack)-1]
	parent.Children = append(parent.Children, s)
	t.stack = append(t.stack, s)
	return s
}

// End closes a span opened by Begin, restoring its parent as current.
func (t *Tracer) End(s *Span) {
	if t == nil || s == nil {
		return
	}
	s.DurNS = t.now() - s.StartNS
	for i := len(t.stack) - 1; i > 0; i-- {
		if t.stack[i] == s {
			t.stack = t.stack[:i]
			return
		}
	}
}

// Child attaches an already-measured span (duration d, ending now) to
// the current span without making it current.
func (t *Tracer) Child(name string, d time.Duration, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Name: name, Attrs: attrs, StartNS: t.now() - d.Nanoseconds(), DurNS: d.Nanoseconds()}
	cur := t.stack[len(t.stack)-1]
	cur.Children = append(cur.Children, s)
	return s
}

// Finish closes the run and returns the trace (nil for the nil tracer).
func (t *Tracer) Finish() *Trace {
	if t == nil {
		return nil
	}
	t.root.DurNS = t.now()
	return &Trace{Level: t.level, Root: t.root}
}
