package trace

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedTrace builds a deterministic span tree resembling a two-stage
// run: fixed times, attrs, per-worker tasks, a routing ledger and one
// exception sample, so the Chrome export golden pins the full format.
func fixedTrace() *Trace {
	root := &Span{Name: "run", DurNS: 10_000_000}
	root.Children = append(root.Children,
		&Span{Name: "plan", StartNS: 1_000, DurNS: 50_000,
			Attrs: []Attr{Bool("optimized", true)}},
		&Span{Name: "stage", StartNS: 60_000, DurNS: 8_000_000,
			Attrs: []Attr{Int("index", 0), Int("ops", 2)},
			Children: []*Span{
				{Name: "sample", StartNS: 70_000, DurNS: 500_000},
				{Name: "compile", StartNS: 600_000, DurNS: 400_000, Attrs: []Attr{Int("udfs", 2)}},
				{Name: "execute", StartNS: 1_100_000, DurNS: 6_000_000,
					Tasks: []TaskTiming{
						{Part: 0, Worker: 0, Rows: 500, StartNS: 1_200_000, DurNS: 2_500_000},
						{Part: 1, Worker: 1, Rows: 500, StartNS: 1_250_000, DurNS: 2_400_000},
						{Part: 2, Worker: 0, Rows: 400, StartNS: 3_800_000, DurNS: 2_000_000},
					}},
			},
			Routing: []OpRouting{
				{Op: "source", NormalIn: 1400, NormalExc: 12, GeneralResolved: 10, Failed: 2},
				{Op: "map"}, // zero entry: must be elided from args
				{Op: "filter", NormalIn: 1388},
			},
			Samples: []ExcSample{
				{Op: "source", Exc: "ValueError", Input: "a,b,", Outcome: "general"},
			}},
		&Span{Name: "sink", StartNS: 8_100_000, DurNS: 1_800_000,
			Attrs: []Attr{Str("kind", "collect"), Int("output_rows", 1398)}},
	)
	return &Trace{Level: LevelSamples, Root: root}
}

// TestChromeGolden pins the exported Chrome trace-event document byte
// for byte for a fixed span tree (run with -update to regenerate).
func TestChromeGolden(t *testing.T) {
	got, err := fixedTrace().MarshalChrome()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("chrome export drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestChromeExportDeterministic marshals twice and requires identical
// bytes — no map-iteration or pointer-derived ordering may leak in.
func TestChromeExportDeterministic(t *testing.T) {
	a, err := fixedTrace().MarshalChrome()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fixedTrace().MarshalChrome()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two marshals of the same trace differ")
	}
}

// TestChromeEventsStructure validates the invariants Perfetto needs:
// every complete event carries pid/tid/ph, events are sorted, one X
// event exists per span, and child events are contained within their
// parent's [ts, ts+dur] window.
func TestChromeEventsStructure(t *testing.T) {
	tr := fixedTrace()
	events := tr.ChromeEvents()
	if len(events) == 0 {
		t.Fatal("no events exported")
	}
	var spans, tasks int
	var count func(s *Span)
	count = func(s *Span) {
		spans++
		tasks += len(s.Tasks)
		for _, c := range s.Children {
			count(c)
		}
	}
	count(tr.Root)
	var xDriver, xWorker, meta int
	for _, e := range events {
		if e.PID != chromePID {
			t.Fatalf("event %q has pid %d, want %d", e.Name, e.PID, chromePID)
		}
		switch e.Ph {
		case "M":
			meta++
		case "X":
			if e.TID == chromeDriverTID {
				xDriver++
			} else {
				xWorker++
			}
		default:
			t.Fatalf("event %q has unexpected phase %q", e.Name, e.Ph)
		}
	}
	if xDriver != spans {
		t.Fatalf("driver X events = %d, want one per span (%d)", xDriver, spans)
	}
	if xWorker != tasks {
		t.Fatalf("worker X events = %d, want one per task (%d)", xWorker, tasks)
	}
	if meta < 2 {
		t.Fatalf("missing track metadata events (got %d)", meta)
	}

	// Containment: walk the span tree and assert each child's exported
	// window nests inside its parent's.
	var nest func(s *Span)
	nest = func(s *Span) {
		for _, c := range s.Children {
			if c.StartNS < s.StartNS || c.StartNS+c.DurNS > s.StartNS+s.DurNS {
				t.Fatalf("span %q [%d,%d] escapes parent %q [%d,%d]",
					c.Name, c.StartNS, c.StartNS+c.DurNS, s.Name, s.StartNS, s.StartNS+s.DurNS)
			}
			nest(c)
		}
	}
	nest(tr.Root)

	// The zero routing entry must not appear in the stage's args.
	for _, e := range events {
		if e.Ph != "X" || e.Name != "stage" {
			continue
		}
		ledger, ok := e.Args["routing"].([]OpRouting)
		if !ok {
			t.Fatalf("stage event lacks routing args: %v", e.Args)
		}
		for _, r := range ledger {
			if r.Zero() {
				t.Fatalf("zero routing entry %q exported", r.Op)
			}
		}
	}
}

// TestNativeRoundTrip marshals the native JSON form and re-parses it
// into an equal span tree.
func TestNativeRoundTrip(t *testing.T) {
	orig := fixedTrace()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip diverged:\norig: %+v\nback: %+v", orig, back)
	}
}

// TestShift moves a subtree and its tasks uniformly.
func TestShift(t *testing.T) {
	tr := fixedTrace()
	before := tr.Root.Children[1].Children[2].Tasks[0].StartNS
	Shift(tr.Root, 5_000_000)
	if got := tr.Root.StartNS; got != 5_000_000 {
		t.Fatalf("root start = %d, want 5000000", got)
	}
	if got := tr.Root.Children[1].Children[2].Tasks[0].StartNS; got != before+5_000_000 {
		t.Fatalf("task start = %d, want %d", got, before+5_000_000)
	}
	if tr.Root.DurNS != 10_000_000 {
		t.Fatal("Shift must not change durations")
	}
	Shift(nil, 1) // nil-safe
}
