package trace

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Level() != LevelOff || tr.Rows() || tr.Samples() {
		t.Fatalf("nil tracer level gates wrong")
	}
	sp := tr.Begin("x")
	sp.Add(Str("k", "v")) // nil span
	tr.Child("y", time.Millisecond)
	tr.End(sp)
	if tr.Finish() != nil {
		t.Fatalf("nil tracer Finish must be nil")
	}
	if tr.OffsetNS(time.Now()) != 0 {
		t.Fatalf("nil tracer OffsetNS must be 0")
	}
}

func TestOffLevelYieldsNilTracer(t *testing.T) {
	if New(LevelOff) != nil {
		t.Fatalf("LevelOff must give a nil tracer")
	}
}

func TestSpanNesting(t *testing.T) {
	tr := New(LevelSamples)
	if !tr.Rows() || !tr.Samples() {
		t.Fatalf("level gates wrong")
	}
	a := tr.Begin("a")
	tr.Child("a1", time.Microsecond, Int("n", 3))
	b := tr.Begin("b", Str("x", "y"))
	tr.End(b)
	tr.Child("a2", 0)
	tr.End(a)
	c := tr.Begin("c")
	tr.End(c)
	got := tr.Finish()
	if got.Level != LevelSamples {
		t.Fatalf("level = %v", got.Level)
	}
	root := got.Root
	if root.Name != "run" || len(root.Children) != 2 {
		t.Fatalf("root = %q with %d children", root.Name, len(root.Children))
	}
	wantA := []string{"a1", "b", "a2"}
	if len(root.Children[0].Children) != len(wantA) {
		t.Fatalf("a children = %d", len(root.Children[0].Children))
	}
	for i, w := range wantA {
		if root.Children[0].Children[i].Name != w {
			t.Fatalf("a child %d = %q, want %q", i, root.Children[0].Children[i].Name, w)
		}
	}
	if root.Children[1].Name != "c" {
		t.Fatalf("second top child = %q", root.Children[1].Name)
	}
	if root.DurNS <= 0 {
		t.Fatalf("root duration not recorded")
	}
}

func TestUnbalancedEndIsTolerated(t *testing.T) {
	tr := New(LevelSpans)
	a := tr.Begin("a")
	b := tr.Begin("b")
	tr.End(a) // ends a, implicitly dropping b from the stack
	_ = b
	c := tr.Begin("c")
	tr.End(c)
	got := tr.Finish()
	if len(got.Root.Children) != 2 {
		t.Fatalf("top-level spans = %d, want 2 (a, c)", len(got.Root.Children))
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := New(LevelRows)
	s := tr.Begin("stage", Int("index", 0))
	s.Tasks = []TaskTiming{{Part: 0, Worker: 1, Rows: 42, StartNS: 10, DurNS: 20}}
	s.Routing = []OpRouting{{Op: "source", NormalIn: 42, NormalExc: 2}, {Op: "map", GeneralResolved: 2}}
	s.Samples = []ExcSample{{Op: "map", Exc: "TypeError", Input: "x", Outcome: "general"}}
	tr.End(s)
	trace := tr.Finish()

	b, err := json.Marshal(trace)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*trace, back) {
		t.Fatalf("round trip mismatch:\n  want %+v\n  got  %+v", *trace, back)
	}
}

func TestOpRoutingZero(t *testing.T) {
	if !(OpRouting{Op: "map"}).Zero() {
		t.Fatalf("empty entry should be Zero")
	}
	if (OpRouting{Op: "map", Failed: 1}).Zero() {
		t.Fatalf("entry with counts should not be Zero")
	}
}
