package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Chrome trace-event export: a finished span tree renders into the
// Trace Event Format that chrome://tracing and Perfetto load directly
// (JSON object with a traceEvents array of complete "X" events).
// Span containment maps onto event containment on one timeline track;
// per-executor task timings render on their own worker tracks so the
// execute phase reads as a swimlane diagram. The output is fully
// deterministic for a given span tree: events are sorted by
// (tid, ts, -dur, name) and every id is derived from tree position,
// never from map iteration or pointers.

// Chrome event phases and the fixed ids the exporter uses. One exported
// trace is always a single synthetic process; the driver span stack is
// thread 1 and worker w is thread 100+w, so sorting by tid groups the
// tracks stably.
const (
	chromePID       = 1
	chromeDriverTID = 1
	chromeWorkerTID = 100
)

// ChromeEvent is one entry of the traceEvents array. Args carries span
// attributes (string values) plus structured payloads like the routing
// ledger; Perfetto renders nested JSON in the args panel.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the exported document.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// usec converts span nanoseconds to the microsecond timestamps the
// trace-event format expects (fractional microseconds are legal and
// keep sub-microsecond spans distinguishable).
func usec(ns int64) float64 { return float64(ns) / 1e3 }

// ChromeEvents flattens the trace into sorted trace events. Metadata
// events naming the tracks come first, then complete events ordered by
// (tid, ts, -dur, name) so a parent at the same start time precedes its
// children and the output is byte-stable for a given tree.
func (t *Trace) ChromeEvents() []ChromeEvent {
	if t == nil || t.Root == nil {
		return nil
	}
	var events []ChromeEvent
	workers := map[int]bool{}
	var walk func(s *Span)
	walk = func(s *Span) {
		args := map[string]any{}
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		if len(s.Routing) > 0 {
			ledger := make([]OpRouting, 0, len(s.Routing))
			for _, r := range s.Routing {
				if !r.Zero() {
					ledger = append(ledger, r)
				}
			}
			if len(ledger) > 0 {
				args["routing"] = ledger
			}
		}
		if len(s.Samples) > 0 {
			args["exception_samples"] = s.Samples
		}
		if len(args) == 0 {
			args = nil
		}
		events = append(events, ChromeEvent{
			Name: s.Name, Cat: "tuplex", Ph: "X",
			TS: usec(s.StartNS), Dur: usec(s.DurNS),
			PID: chromePID, TID: chromeDriverTID, Args: args,
		})
		for _, tk := range s.Tasks {
			workers[tk.Worker] = true
			events = append(events, ChromeEvent{
				Name: fmt.Sprintf("task p%d", tk.Part), Cat: "tuplex.task", Ph: "X",
				TS: usec(tk.StartNS), Dur: usec(tk.DurNS),
				PID: chromePID, TID: chromeWorkerTID + tk.Worker,
				Args: map[string]any{"part": tk.Part, "rows": tk.Rows, "worker": tk.Worker},
			})
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(t.Root)
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Dur != b.Dur {
			return a.Dur > b.Dur // parent before child at equal start
		}
		return a.Name < b.Name
	})

	// Track-name metadata first: the driver track, then workers in
	// ascending id order.
	meta := []ChromeEvent{
		{Name: "process_name", Ph: "M", PID: chromePID, TID: chromeDriverTID,
			Args: map[string]any{"name": "tuplex"}},
		{Name: "thread_name", Ph: "M", PID: chromePID, TID: chromeDriverTID,
			Args: map[string]any{"name": "driver"}},
	}
	ids := make([]int, 0, len(workers))
	for w := range workers {
		ids = append(ids, w)
	}
	sort.Ints(ids)
	for _, w := range ids {
		meta = append(meta, ChromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: chromeWorkerTID + w,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", w)},
		})
	}
	return append(meta, events...)
}

// MarshalChrome renders the trace as a Chrome trace-event JSON document
// (load it in chrome://tracing or https://ui.perfetto.dev).
func (t *Trace) MarshalChrome() ([]byte, error) {
	doc := ChromeTrace{TraceEvents: t.ChromeEvents(), DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []ChromeEvent{}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Parse decodes a trace's native JSON form (the inverse of
// json.Marshal on Trace; the span tree round-trips exactly).
func Parse(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("trace: parsing native trace JSON: %w", err)
	}
	return &t, nil
}

// Shift moves a span subtree forward by delta nanoseconds (span starts
// and task starts alike). The service uses it to re-parent an engine
// trace, whose clock starts at run begin, under a job span whose clock
// starts at request arrival.
func Shift(s *Span, delta int64) {
	if s == nil {
		return
	}
	s.StartNS += delta
	for i := range s.Tasks {
		s.Tasks[i].StartNS += delta
	}
	for _, c := range s.Children {
		Shift(c, delta)
	}
}
