// Package physical splits a logical plan into stages (§4.4): maximal
// runs of operators that process rows without materialization, bounded
// by operators that consume or produce materialized data — sources,
// aggregations, uniques, caches and the sink. Join build sides are
// separate plans executed first (§4.5); the probe lookup itself is fused
// into the surrounding stage, HyPer-style, so a row passes through as
// many UDFs as possible while hot in cache.
//
// With fusion disabled (the Fig. 11 ablation), every UDF-bearing
// operator terminates its stage, mimicking the optimization barriers of
// engines that treat UDFs as black boxes.
package physical

import (
	"fmt"

	"github.com/gotuplex/tuplex/internal/logical"
)

// TerminalKind says why a stage ends.
type TerminalKind uint8

const (
	// TerminalSink is the pipeline output (collect / tocsv).
	TerminalSink TerminalKind = iota
	// TerminalMaterialize materializes rows for the next stage.
	TerminalMaterialize
	// TerminalAggregate folds rows into an accumulator.
	TerminalAggregate
	// TerminalUnique deduplicates rows.
	TerminalUnique
)

// Stage is one unit of code generation and execution.
type Stage struct {
	// Source is the input operator when this is the first stage of a
	// plan; nil when the stage consumes the previous stage's
	// materialization.
	Source logical.Op
	// Ops are the fused operators, in order. Join ops reference their
	// (already separately planned) build sides.
	Ops []logical.Op
	// Terminal is the reason the stage ended.
	Terminal TerminalKind
	// TerminalOp is the aggregate/unique operator for those terminals.
	TerminalOp logical.Op
}

// Plan is an ordered list of stages for one chain (join build sides are
// planned recursively by the engine when it reaches the JoinOp).
type Plan struct {
	Stages []Stage
}

// Options controls stage formation.
type Options struct {
	// Fusion keeps stages maximal. When false, each UDF operator
	// terminates its stage.
	Fusion bool
}

// Split turns a logical chain into stages.
func Split(sink *logical.Node, opts Options) (*Plan, error) {
	nodes := sink.Chain()
	if len(nodes) == 0 {
		return nil, fmt.Errorf("physical: empty plan")
	}
	p := &Plan{}
	cur := Stage{}
	switch nodes[0].Op.(type) {
	case *logical.CSVSource, *logical.TextSource, *logical.ParallelizeSource:
		cur.Source = nodes[0].Op
	default:
		return nil, fmt.Errorf("physical: plan does not start at a source (got %T)", nodes[0].Op)
	}
	flush := func(t TerminalKind, top logical.Op) {
		cur.Terminal = t
		cur.TerminalOp = top
		p.Stages = append(p.Stages, cur)
		cur = Stage{}
	}
	rest := nodes[1:]
	for i := 0; i < len(rest); i++ {
		switch op := rest[i].Op.(type) {
		case *logical.AggregateOp:
			flush(TerminalAggregate, op)
		case *logical.UniqueOp:
			flush(TerminalUnique, op)
		case *logical.CacheOp:
			flush(TerminalMaterialize, op)
		case *logical.CSVSource, *logical.TextSource, *logical.ParallelizeSource:
			return nil, fmt.Errorf("physical: source %T mid-plan", op)
		default:
			cur.Ops = append(cur.Ops, op)
			if !opts.Fusion && isUDFOp(op) {
				// Keep resolvers/ignores with the operator they modify.
				for i+1 < len(rest) {
					switch rest[i+1].Op.(type) {
					case *logical.ResolveOp, *logical.IgnoreOp:
						cur.Ops = append(cur.Ops, rest[i+1].Op)
						i++
						continue
					}
					break
				}
				if i+1 < len(rest) {
					flush(TerminalMaterialize, nil)
				}
			}
		}
	}
	if len(p.Stages) == 0 || len(cur.Ops) > 0 || cur.Source != nil {
		flush(TerminalSink, nil)
	} else {
		// The chain ended exactly at an aggregate/unique: its stage is
		// already flushed; mark the last stage as the sink producer.
		p.Stages[len(p.Stages)-1].Terminal = terminalAsSink(p.Stages[len(p.Stages)-1].Terminal)
	}
	return p, nil
}

// terminalAsSink keeps aggregate/unique terminals but notes they feed
// the sink directly; sink handling is the engine's job, so the kind is
// unchanged. Present for symmetry and future extension.
func terminalAsSink(t TerminalKind) TerminalKind { return t }

func isUDFOp(op logical.Op) bool {
	switch op.(type) {
	case *logical.MapOp, *logical.FilterOp, *logical.WithColumnOp, *logical.MapColumnOp, *logical.JoinOp:
		return true
	default:
		return false
	}
}

// NumStages reports the stage count (for metrics).
func (p *Plan) NumStages() int { return len(p.Stages) }
