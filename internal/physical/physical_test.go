package physical

import (
	"testing"

	"github.com/gotuplex/tuplex/internal/logical"
)

func udf(t *testing.T, src string) *logical.UDFSpec {
	t.Helper()
	u, err := logical.ParseUDF(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func chainOf(ops ...logical.Op) *logical.Node {
	var cur *logical.Node
	for _, op := range ops {
		cur = &logical.Node{Op: op, Input: cur}
	}
	return cur
}

func TestFusionKeepsOneStage(t *testing.T) {
	sink := chainOf(
		&logical.CSVSource{},
		&logical.MapColumnOp{Col: "a", UDF: udf(t, "lambda x: x")},
		&logical.FilterOp{UDF: udf(t, "lambda x: x")},
		&logical.WithColumnOp{Col: "b", UDF: udf(t, "lambda x: x['a']")},
		&logical.SelectOp{Cols: []string{"b"}},
	)
	plan, err := Split(sink, Options{Fusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumStages() != 1 {
		t.Fatalf("stages = %d, want 1", plan.NumStages())
	}
	if plan.Stages[0].Terminal != TerminalSink {
		t.Fatalf("terminal = %v", plan.Stages[0].Terminal)
	}
	if len(plan.Stages[0].Ops) != 4 {
		t.Fatalf("ops = %d", len(plan.Stages[0].Ops))
	}
}

func TestNoFusionSplitsPerUDF(t *testing.T) {
	sink := chainOf(
		&logical.CSVSource{},
		&logical.MapColumnOp{Col: "a", UDF: udf(t, "lambda x: x")},
		&logical.FilterOp{UDF: udf(t, "lambda x: x")},
		&logical.SelectOp{Cols: []string{"a"}},
	)
	plan, err := Split(sink, Options{Fusion: false})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumStages() != 3 {
		t.Fatalf("stages = %d, want 3 (per-UDF barriers)", plan.NumStages())
	}
	// Only the first stage owns the source.
	if plan.Stages[0].Source == nil || plan.Stages[1].Source != nil {
		t.Fatal("source placement wrong")
	}
}

func TestAggregateTerminatesStage(t *testing.T) {
	sink := chainOf(
		&logical.CSVSource{},
		&logical.FilterOp{UDF: udf(t, "lambda x: x")},
		&logical.AggregateOp{Agg: udf(t, "lambda a, r: a"), Comb: udf(t, "lambda a, b: a")},
	)
	plan, err := Split(sink, Options{Fusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumStages() != 1 {
		t.Fatalf("stages = %d", plan.NumStages())
	}
	if plan.Stages[0].Terminal != TerminalAggregate {
		t.Fatalf("terminal = %v", plan.Stages[0].Terminal)
	}
}

func TestUniqueThenMoreOpsMakesTwoStages(t *testing.T) {
	sink := chainOf(
		&logical.CSVSource{},
		&logical.UniqueOp{},
		&logical.MapColumnOp{Col: "a", UDF: udf(t, "lambda x: x")},
	)
	plan, err := Split(sink, Options{Fusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumStages() != 2 {
		t.Fatalf("stages = %d, want 2", plan.NumStages())
	}
	if plan.Stages[0].Terminal != TerminalUnique || plan.Stages[1].Terminal != TerminalSink {
		t.Fatalf("terminals = %v, %v", plan.Stages[0].Terminal, plan.Stages[1].Terminal)
	}
}

func TestResolversStayWithTheirOperatorUnfused(t *testing.T) {
	sink := chainOf(
		&logical.CSVSource{},
		&logical.MapColumnOp{Col: "a", UDF: udf(t, "lambda x: x")},
		&logical.ResolveOp{UDF: udf(t, "lambda x: 0")},
		&logical.FilterOp{UDF: udf(t, "lambda x: x")},
	)
	plan, err := Split(sink, Options{Fusion: false})
	if err != nil {
		t.Fatal(err)
	}
	st0 := plan.Stages[0]
	if len(st0.Ops) != 2 {
		t.Fatalf("stage0 ops = %d, want mapColumn+resolve together", len(st0.Ops))
	}
	if _, ok := st0.Ops[1].(*logical.ResolveOp); !ok {
		t.Fatalf("stage0 ops = %T, %T", st0.Ops[0], st0.Ops[1])
	}
}

func TestJoinDoesNotSplitProbeStage(t *testing.T) {
	build := chainOf(&logical.CSVSource{})
	sink := chainOf(
		&logical.CSVSource{},
		&logical.MapColumnOp{Col: "a", UDF: udf(t, "lambda x: x")},
		&logical.JoinOp{Build: build, LeftKey: "k", RightKey: "k"},
		&logical.FilterOp{UDF: udf(t, "lambda x: x")},
	)
	plan, err := Split(sink, Options{Fusion: true})
	if err != nil {
		t.Fatal(err)
	}
	// §4.5: the probe side of a join stays in one fused stage; only the
	// build side (a separate plan) materializes.
	if plan.NumStages() != 1 {
		t.Fatalf("stages = %d, want 1", plan.NumStages())
	}
}

func TestMidPlanSourceRejected(t *testing.T) {
	bad := &logical.Node{
		Op: &logical.CSVSource{},
		Input: &logical.Node{
			Op: &logical.CSVSource{},
		},
	}
	if _, err := Split(bad, Options{Fusion: true}); err == nil {
		t.Fatal("mid-plan source accepted")
	}
}
