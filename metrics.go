package tuplex

import (
	"fmt"
	"strings"
	"time"

	"github.com/gotuplex/tuplex/internal/metrics"
)

// Metrics is the public, stable view of one run's execution statistics:
// per-path row counts, phase timings, ingest/join figures and per-stage
// throughput. Unlike the engine's internal counters it is a plain value
// snapshot — every field is exported, JSON-tagged, and nameable by
// external modules. Durations marshal as integer nanoseconds, so the
// JSON form round-trips exactly.
type Metrics struct {
	// Rows tallies rows by the path that produced them (§5).
	Rows RowCounts `json:"rows"`
	// Timings records the run's phase wall times.
	Timings PhaseTimings `json:"timings"`
	// Ingest tallies the streaming ingest path.
	Ingest IngestMetrics `json:"ingest"`
	// Join tallies hash-join build and probe activity.
	Join JoinMetrics `json:"join"`
	// Batch tallies the columnar batch plane (§7).
	Batch BatchMetrics `json:"batch"`
	// Stages holds per-stage throughput figures in execution order.
	Stages []StageMetrics `json:"stages,omitempty"`
	// NumStages is the number of generated stages.
	NumStages int `json:"num_stages"`
	// Latency holds telemetry latency quantiles (all zero unless the run
	// used WithTelemetry or an introspection server was active).
	Latency LatencyMetrics `json:"latency"`
}

// RowCounts tallies rows by execution path.
type RowCounts struct {
	// Input is the number of input records read.
	Input int64 `json:"input"`
	// Normal completed entirely on the compiled normal-case path.
	Normal int64 `json:"normal"`
	// ClassifierRejects failed the row classifier / generated parser.
	ClassifierRejects int64 `json:"classifier_rejects"`
	// NormalPathExceptions raised while running normal-case code.
	NormalPathExceptions int64 `json:"normal_path_exceptions"`
	// GeneralResolved were recovered by the compiled general-case path.
	GeneralResolved int64 `json:"general_resolved"`
	// FallbackResolved were recovered by the interpreter fallback path.
	FallbackResolved int64 `json:"fallback_resolved"`
	// ResolverResolved were recovered by user-provided resolvers.
	ResolverResolved int64 `json:"resolver_resolved"`
	// Ignored were dropped by user-provided ignore() handlers.
	Ignored int64 `json:"ignored"`
	// Failed could not be processed by any path.
	Failed int64 `json:"failed"`
	// Output reached the sink.
	Output int64 `json:"output"`
}

// ExceptionRate reports the fraction of input rows that left the normal
// path.
func (r RowCounts) ExceptionRate() float64 {
	if r.Input == 0 {
		return 0
	}
	return float64(r.ClassifierRejects+r.NormalPathExceptions) / float64(r.Input)
}

// PhaseTimings records the phases of a run. Durations marshal as
// integer nanoseconds.
type PhaseTimings struct {
	Sample   time.Duration `json:"sample_ns"`
	Optimize time.Duration `json:"optimize_ns"`
	Compile  time.Duration `json:"compile_ns"`
	Execute  time.Duration `json:"execute_ns"`
	Resolve  time.Duration `json:"resolve_ns"`
	Total    time.Duration `json:"total_ns"`
}

// IngestMetrics tallies the streaming ingest path (§4.4).
type IngestMetrics struct {
	// BytesRead is the raw input bytes consumed (all source files).
	BytesRead int64 `json:"bytes_read"`
	// RecordsSplit is the number of records the boundary scan produced.
	RecordsSplit int64 `json:"records_split"`
}

// JoinMetrics tallies the sharded hash-join kernels (§4.5).
type JoinMetrics struct {
	// BuildTables is the number of join build tables constructed.
	BuildTables int64 `json:"build_tables"`
	// BuildRows is the number of normal-path rows hashed into shards.
	BuildRows int64 `json:"build_rows"`
	// GeneralRows is the number of exception-path build rows kept boxed.
	GeneralRows int64 `json:"general_rows"`
	// ProbeHits / ProbeMisses count probe rows that found / did not find
	// a build match.
	ProbeHits   int64 `json:"probe_hits"`
	ProbeMisses int64 `json:"probe_misses"`
	// Shards is the per-table shard count.
	Shards int64 `json:"shards"`
	// MaxShardRows is the largest shard's row count over all tables.
	MaxShardRows int64 `json:"max_shard_rows"`
}

// ShardBalance reports the largest shard's load relative to a perfectly
// even spread (1.0 = balanced; 0 when no rows were hashed).
func (j JoinMetrics) ShardBalance() float64 {
	if j.BuildRows == 0 || j.Shards == 0 {
		return 0
	}
	return float64(j.MaxShardRows) / (float64(j.BuildRows) / float64(j.Shards))
}

// HitRate reports the fraction of probed rows that matched.
func (j JoinMetrics) HitRate() float64 {
	n := j.ProbeHits + j.ProbeMisses
	if n == 0 {
		return 0
	}
	return float64(j.ProbeHits) / float64(n)
}

// BatchMetrics tallies the columnar batch plane: how much of the run
// stayed column-at-a-time versus bouncing to the row bridge at a stage
// barrier, plus kernel-fusion and null-check-elision activity.
type BatchMetrics struct {
	// ColumnarRows counts row×kernel-group passes executed on the batch
	// plane.
	ColumnarRows int64 `json:"columnar_rows"`
	// BouncedRows counts rows that left the batch plane at a stage
	// barrier and finished on the compiled row bridge.
	BouncedRows int64 `json:"bounced_rows"`
	// FusedPasses counts fused kernel-group executions (one scan over a
	// batch's selection vector, however many adjacent ops it covers).
	FusedPasses int64 `json:"fused_passes"`
	// NullElisions / NullChecked count per-batch argument-dispatch
	// decisions: a column bound with the no-null inner loop versus one
	// that kept its per-row null check.
	NullElisions int64 `json:"null_elisions"`
	NullChecked  int64 `json:"null_checked"`
}

// ElisionRate reports the fraction of batch argument bindings that
// skipped per-row null checks.
func (b BatchMetrics) ElisionRate() float64 {
	n := b.NullElisions + b.NullChecked
	if n == 0 {
		return 0
	}
	return float64(b.NullElisions) / float64(n)
}

// LatencyMetrics bundles the run's latency distributions, recorded by
// the telemetry histograms (see WithTelemetry).
type LatencyMetrics struct {
	// Chunk is per-task processing wall time: one partition or one
	// streamed chunk per observation.
	Chunk LatencySummary `json:"chunk"`
	// Resolve is per-exception-row resolve wall time.
	Resolve LatencySummary `json:"resolve"`
}

// LatencySummary reports quantiles of one latency distribution.
// Quantiles are bucket upper bounds with at most 6.25% relative error;
// durations marshal as integer nanoseconds.
type LatencySummary struct {
	// Count is the number of recorded observations.
	Count int64         `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// StageMetrics is one stage's throughput figures.
type StageMetrics struct {
	// Stage is the stage index within the run.
	Stage int `json:"stage"`
	// Bytes read from disk during this stage (0 for non-source stages).
	Bytes int64 `json:"bytes"`
	// Records consumed as stage input.
	Records int64 `json:"records"`
	// Allocs is the number of heap allocations during the stage's
	// execute phase (runtime mallocs delta).
	Allocs int64 `json:"allocs"`
	// Duration is the stage's execute-phase wall clock (nanoseconds in
	// JSON).
	Duration time.Duration `json:"duration_ns"`
}

// RowsPerSec reports stage-input rows per second.
func (s StageMetrics) RowsPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Records) / s.Duration.Seconds()
}

// MBPerSec reports raw ingest throughput in MB/s (0 when the stage read
// no bytes).
func (s StageMetrics) MBPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Bytes) / 1e6 / s.Duration.Seconds()
}

// newMetrics snapshots the engine's internal counters into the public
// view.
func newMetrics(m *metrics.Metrics) *Metrics {
	if m == nil {
		return nil
	}
	c := &m.Counters
	out := &Metrics{
		Rows: RowCounts{
			Input:                c.InputRows.Load(),
			Normal:               c.NormalRows.Load(),
			ClassifierRejects:    c.ClassifierRejects.Load(),
			NormalPathExceptions: c.NormalPathExceptions.Load(),
			GeneralResolved:      c.GeneralResolved.Load(),
			FallbackResolved:     c.FallbackResolved.Load(),
			ResolverResolved:     c.ResolverResolved.Load(),
			Ignored:              c.IgnoredRows.Load(),
			Failed:               c.FailedRows.Load(),
			Output:               c.OutputRows.Load(),
		},
		Timings: PhaseTimings{
			Sample:   m.Timings.Sample,
			Optimize: m.Timings.Optimize,
			Compile:  m.Timings.Compile,
			Execute:  m.Timings.Execute,
			Resolve:  m.Timings.Resolve,
			Total:    m.Timings.Total,
		},
		Ingest: IngestMetrics{
			BytesRead:    m.Ingest.BytesRead.Load(),
			RecordsSplit: m.Ingest.RecordsSplit.Load(),
		},
		Join: JoinMetrics{
			BuildTables:  m.Join.BuildTables.Load(),
			BuildRows:    m.Join.BuildRows.Load(),
			GeneralRows:  m.Join.GeneralRows.Load(),
			ProbeHits:    m.Join.ProbeHits.Load(),
			ProbeMisses:  m.Join.ProbeMisses.Load(),
			Shards:       m.Join.Shards.Load(),
			MaxShardRows: m.Join.MaxShardRows.Load(),
		},
		Batch: BatchMetrics{
			ColumnarRows: m.Batch.ColumnarRows.Load(),
			BouncedRows:  m.Batch.BouncedRows.Load(),
			FusedPasses:  m.Batch.FusedPasses.Load(),
			NullElisions: m.Batch.NullElisions.Load(),
			NullChecked:  m.Batch.NullChecked.Load(),
		},
		NumStages: m.Stages,
		Latency: LatencyMetrics{
			Chunk:   newLatencySummary(m.Latency.Chunk),
			Resolve: newLatencySummary(m.Latency.Resolve),
		},
	}
	for _, s := range m.Stage {
		out.Stages = append(out.Stages, StageMetrics{
			Stage: s.Stage, Bytes: s.Bytes, Records: s.Records,
			Allocs: s.Allocs, Duration: s.Duration,
		})
	}
	return out
}

func newLatencySummary(s metrics.LatencySummary) LatencySummary {
	return LatencySummary{Count: s.Count, P50: s.P50, P90: s.P90, P99: s.P99, Max: s.Max}
}

// String renders a compact single-run summary.
func (m *Metrics) String() string {
	var sb strings.Builder
	r := m.Rows
	fmt.Fprintf(&sb, "rows: in=%d out=%d normal=%d", r.Input, r.Output, r.Normal)
	if r.ClassifierRejects > 0 {
		fmt.Fprintf(&sb, " classifier_rejects=%d", r.ClassifierRejects)
	}
	if r.NormalPathExceptions > 0 {
		fmt.Fprintf(&sb, " normal_exceptions=%d", r.NormalPathExceptions)
	}
	if r.GeneralResolved > 0 {
		fmt.Fprintf(&sb, " general_resolved=%d", r.GeneralResolved)
	}
	if r.FallbackResolved > 0 {
		fmt.Fprintf(&sb, " fallback_resolved=%d", r.FallbackResolved)
	}
	if r.ResolverResolved > 0 {
		fmt.Fprintf(&sb, " resolver_resolved=%d", r.ResolverResolved)
	}
	if r.Ignored > 0 {
		fmt.Fprintf(&sb, " ignored=%d", r.Ignored)
	}
	if r.Failed > 0 {
		fmt.Fprintf(&sb, " failed=%d", r.Failed)
	}
	roundT := func(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
	fmt.Fprintf(&sb, " | sample=%s compile=%s exec=%s resolve=%s total=%s",
		roundT(m.Timings.Sample), roundT(m.Timings.Compile), roundT(m.Timings.Execute),
		roundT(m.Timings.Resolve), roundT(m.Timings.Total))
	if m.Ingest.BytesRead > 0 {
		fmt.Fprintf(&sb, " | ingest: %.1f MB, %d records", float64(m.Ingest.BytesRead)/1e6, m.Ingest.RecordsSplit)
	}
	if j := m.Join; j.BuildTables > 0 {
		fmt.Fprintf(&sb, " | join: build=%d probe_hits=%d probe_misses=%d shards=%d balance=%.2f",
			j.BuildRows, j.ProbeHits, j.ProbeMisses, j.Shards, j.ShardBalance())
		if j.GeneralRows > 0 {
			fmt.Fprintf(&sb, " general=%d", j.GeneralRows)
		}
	}
	if b := m.Batch; b.ColumnarRows > 0 || b.BouncedRows > 0 {
		fmt.Fprintf(&sb, " | batch: columnar=%d bounced=%d fused_passes=%d elision=%.2f",
			b.ColumnarRows, b.BouncedRows, b.FusedPasses, b.ElisionRate())
	}
	for _, s := range m.Stages {
		if s.Records == 0 && s.Bytes == 0 {
			continue
		}
		fmt.Fprintf(&sb, " | stage%d: %.0f rows/s", s.Stage, s.RowsPerSec())
		if s.Bytes > 0 {
			fmt.Fprintf(&sb, " %.1f MB/s", s.MBPerSec())
		}
	}
	return sb.String()
}
