package tuplex

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/gotuplex/tuplex/internal/core"
)

// TestOptionPairsEquivalent proves each parameterized option and its
// deprecated Without* wrapper configure the engine identically.
func TestOptionPairsEquivalent(t *testing.T) {
	pairs := []struct {
		name string
		off  Option // parameterized form, disabled
		dep  Option // deprecated Without* wrapper
		on   Option // parameterized form, enabled (must match defaults)
	}{
		{"null-optimization", WithNullOptimization(false), WithoutNullOptimization(), WithNullOptimization(true)},
		{"stage-fusion", WithStageFusion(false), WithoutStageFusion(), WithStageFusion(true)},
		{"compiler-optimizations", WithCompilerOptimizations(false), WithoutCompilerOptimizations(), WithCompilerOptimizations(true)},
	}
	apply := func(opt Option) core.Options {
		o := core.DefaultOptions()
		opt.apply(&o)
		return o
	}
	def := core.DefaultOptions()
	for _, p := range pairs {
		off, dep, on := apply(p.off), apply(p.dep), apply(p.on)
		if !reflect.DeepEqual(off, dep) {
			t.Errorf("%s: With*(false) != Without*():\n%+v\nvs\n%+v", p.name, off, dep)
		}
		if reflect.DeepEqual(off, def) {
			t.Errorf("%s: With*(false) did not change the defaults", p.name)
		}
		if !reflect.DeepEqual(on, def) {
			t.Errorf("%s: With*(true) != defaults:\n%+v\nvs\n%+v", p.name, on, def)
		}
	}
}

func TestTakeContract(t *testing.T) {
	data := [][]any{{int64(1)}, {int64(2)}, {int64(3)}, {int64(4)}, {int64(5)}}
	c := NewContext()
	ds := c.Parallelize(data, []string{"v"}).MapColumn("v", UDF("lambda v: v * 10"))

	full, err := ds.Collect()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.Take(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("Take(2) rows = %d", len(res.Rows))
	}
	// The whole pipeline still ran: every input row was processed.
	if res.Metrics.Rows.Input != 5 {
		t.Fatalf("Take(2) input rows = %d, want 5 (pipeline runs fully)", res.Metrics.Rows.Input)
	}
	// Take(-1) is the documented "all rows" spelling.
	all, err := ds.Take(-1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all.Rows, full.Rows) {
		t.Fatalf("Take(-1) = %v, Collect = %v", all.Rows, full.Rows)
	}
	zero, err := ds.Take(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(zero.Rows) != 0 {
		t.Fatalf("Take(0) rows = %d", len(zero.Rows))
	}
}

func TestParallelizeWarnsOnUnsupportedTypes(t *testing.T) {
	type opaque struct{ X int }
	data := [][]any{
		{int64(1), "ok"},
		{int64(2), opaque{X: 7}},
		{int64(3), []any{"nested", float32(1.5)}},
	}
	c := NewContext()
	res, err := c.Parallelize(data, []string{"id", "payload"}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 2 {
		t.Fatalf("warnings = %v", res.Warnings)
	}
	if !strings.Contains(res.Warnings[0], `row 1, column "payload"`) ||
		!strings.Contains(res.Warnings[0], "tuplex.opaque") {
		t.Fatalf("warning[0] = %q", res.Warnings[0])
	}
	if !strings.Contains(res.Warnings[1], `row 2, column "payload"`) {
		t.Fatalf("warning[1] = %q", res.Warnings[1])
	}
	// The rows still execute, stringified.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}

	// Clean input produces no warnings.
	res, err = c.Parallelize([][]any{{int64(1), "a"}, {nil, true}}, []string{"x", "y"}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Fatalf("clean input warnings = %v", res.Warnings)
	}
}

func TestParallelizeWarningsCapped(t *testing.T) {
	type opaque struct{}
	data := make([][]any, 9)
	for i := range data {
		data[i] = []any{opaque{}}
	}
	c := NewContext()
	res, err := c.Parallelize(data, []string{"v"}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != maxParallelizeWarnings+1 {
		t.Fatalf("warnings = %d, want %d capped + 1 summary", len(res.Warnings), maxParallelizeWarnings)
	}
	last := res.Warnings[len(res.Warnings)-1]
	if !strings.Contains(last, fmt.Sprintf("%d more", len(data)-maxParallelizeWarnings)) {
		t.Fatalf("summary warning = %q", last)
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	csv := "v\n1\n2\n3\n"
	c := NewContext()
	res, err := c.CSV("", CSVData([]byte(csv))).
		MapColumn("v", UDF("lambda v: v + 1")).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Metrics, &back) {
		t.Fatalf("metrics do not round-trip:\n%+v\nvs\n%+v", res.Metrics, &back)
	}
	if !strings.Contains(string(b), `"num_stages"`) {
		t.Fatalf("missing stable field name in %s", b)
	}
}
