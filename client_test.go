package tuplex

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"github.com/gotuplex/tuplex/internal/service"
	"github.com/gotuplex/tuplex/internal/telemetry"
)

// TestClientEndToEnd drives a real daemon through the public client:
// sync submit, warm resubmit (cache hit), async submit + wait, listing,
// cancel semantics and typed rejection errors.
func TestClientEndToEnd(t *testing.T) {
	srv, err := service.Serve(service.Config{
		Addr:     "127.0.0.1:0",
		Registry: telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient("http://" + srv.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	c := NewContext(WithExecutors(1))
	pl, err := c.Parallelize([][]any{{int64(1)}, {int64(2)}, {int64(3)}}, []string{"a"}).
		Map(UDF("lambda a: a * k").WithGlobal("k", int64(5))).
		Plan()
	if err != nil {
		t.Fatal(err)
	}

	cold, err := cl.Submit(ctx, pl)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if cold.State != "done" || cold.CacheHit || cold.Result == nil {
		t.Fatalf("cold job: %+v", cold)
	}
	if len(cold.Result.Rows) != 3 || cold.Result.Rows[0][0].(float64) != 5 {
		t.Fatalf("cold rows: %v", cold.Result.Rows)
	}

	if cold.TraceID == "" {
		t.Fatal("submissions must carry a trace id")
	}

	warm, err := cl.SubmitTraced(ctx, pl, "client-warm-1")
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatalf("identical resubmission must hit the plan cache: %+v", warm)
	}
	if warm.TraceID != "client-warm-1" {
		t.Fatalf("trace id not propagated: %+v", warm.TraceID)
	}
	if fp, _ := pl.Fingerprint(); fp != warm.Fingerprint {
		t.Fatalf("client and server fingerprints disagree: %s vs %s", fp, warm.Fingerprint)
	}

	// The warm job's trace is fetchable in both formats: the native span
	// tree with service spans above the engine run, and a Chrome
	// trace-event document.
	jtr, err := cl.Trace(ctx, warm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jtr.Root == nil || jtr.Root.Name != "job" {
		t.Fatalf("job trace root: %+v", jtr.Root)
	}
	if len(findSpans(jtr.Root, "admission")) != 1 || len(findSpans(jtr.Root, "run")) != 1 {
		t.Fatalf("job trace lacks service or engine spans: %s", jtr)
	}
	chromeTrace, err := cl.TraceChrome(ctx, warm.ID)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(chromeTrace, &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Fatalf("chrome trace invalid (%v), %d events", err, len(doc.TraceEvents))
	}

	async, err := cl.SubmitAsync(ctx, pl)
	if err != nil {
		t.Fatal(err)
	}
	finished, err := cl.Wait(ctx, async.ID)
	if err != nil {
		t.Fatal(err)
	}
	if finished.State != "done" || !finished.CacheHit {
		t.Fatalf("async job: %+v", finished)
	}

	jobs, err := cl.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("want 3 listed jobs, got %d", len(jobs))
	}

	// Cancel on a finished job reports its terminal state untouched.
	got, err := cl.Cancel(ctx, finished.ID)
	if err != nil || got.State != "done" {
		t.Fatalf("cancel finished: %+v / %v", got, err)
	}

	// A job that fails at runtime returns both the record and a typed
	// error.
	badPlan, err := ParsePlan([]byte(`{"v":1,"source":{"kind":"csv","path":"/does/not/exist.csv"}}`))
	if err != nil {
		t.Fatal(err)
	}
	failed, err := cl.Submit(ctx, badPlan)
	var se *ServiceError
	if !errors.As(err, &se) || se.StatusCode != 500 {
		t.Fatalf("want ServiceError 500, got %v", err)
	}
	if failed == nil || failed.State != "failed" || failed.Error == "" {
		t.Fatalf("failed job record: %+v", failed)
	}
	// Failed jobs ship the flight recorder's tail for the job so the
	// error report is self-contained.
	if len(failed.Events) == 0 {
		t.Fatalf("failed job carries no flight-recorder events: %+v", failed)
	}
	for _, ev := range failed.Events {
		if ev.Job != failed.ID {
			t.Fatalf("foreign event in failed job payload: %+v", ev)
		}
	}

	// Unknown job ids surface as typed 404s.
	if _, err := cl.Job(ctx, "nope"); !errors.As(err, &se) || se.StatusCode != 404 {
		t.Fatalf("want ServiceError 404, got %v", err)
	}
}
