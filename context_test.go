package tuplex

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// bigDataSet is large enough that a run takes well over a millisecond,
// so tight deadlines reliably fire mid-stream.
func bigDataSet(c *Context) *DataSet {
	var sb strings.Builder
	sb.WriteString("a,b\n")
	for i := 0; i < 200000; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i, i*3)
	}
	return c.CSV("", CSVData([]byte(sb.String())), CSVHeader(true)).
		WithColumn("c", UDF("lambda x: x['a'] + x['b']")).
		Filter(UDF("lambda x: x['c'] % 2 == 0")).
		Map(UDF("lambda x: (x['a'], x['c'] * 2)"))
}

// TestContextPreCanceled: an already-canceled context stops the run
// before any work, with the distinct cancellation error.
func TestContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewContext(WithExecutors(1))
	d := c.Parallelize([][]any{{int64(1)}}, []string{"a"})
	if _, err := d.CollectContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if _, err := d.TakeContext(ctx, 1); !errors.Is(err, ErrCanceled) {
		t.Fatalf("take: want ErrCanceled, got %v", err)
	}
	if _, err := d.ToCSVContext(ctx, ""); !errors.Is(err, ErrCanceled) {
		t.Fatalf("tocsv: want ErrCanceled, got %v", err)
	}
	if _, _, err := d.AggregateContext(ctx,
		UDF("lambda acc, row: acc + row"), UDF("lambda a, b: a + b"), int64(0)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("aggregate: want ErrCanceled, got %v", err)
	}
	// Cancellation must also be distinguishable from generic errors.
	if _, err := d.CollectContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cause not preserved: %v", err)
	}
}

// TestContextDeadlineMidStream: a deadline expiring mid-run abandons
// the pipeline at a chunk boundary with ErrCanceled rather than
// returning partial rows.
func TestContextDeadlineMidStream(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res, err := bigDataSet(NewContext(WithExecutors(2))).CollectContext(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got res=%v err=%v", res, err)
	}
	if res != nil {
		t.Fatalf("canceled run must not return partial results")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline cause not preserved: %v", err)
	}
}

// TestContextCancelMidStreamStreaming covers the streamed-ingest path's
// producer/worker cancellation.
func TestContextCancelMidStreamStreaming(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	c := NewContext(WithExecutors(2), WithStreamingIngest(true), WithChunkSize(1<<12))
	_, err := bigDataSet(c).CollectContext(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("streaming: want ErrCanceled, got %v", err)
	}
}

// TestContextVariantsMatchPlain: with a background context the four
// *Context entry points are exactly their plain counterparts.
func TestContextVariantsMatchPlain(t *testing.T) {
	c := NewContext(WithExecutors(1))
	mk := func() *DataSet {
		return c.Parallelize([][]any{{int64(2)}, {int64(4)}, {int64(6)}}, []string{"a"}).
			Map(UDF("lambda a: a * 10"))
	}
	plain, err := mk().Collect()
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := mk().CollectContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Rows, viaCtx.Rows) {
		t.Fatalf("collect diverged: %v vs %v", plain.Rows, viaCtx.Rows)
	}
	tk, err := mk().TakeContext(context.Background(), 2)
	if err != nil || len(tk.Rows) != 2 {
		t.Fatalf("take: %v / %v", tk, err)
	}
	v, _, err := mk().AggregateContext(context.Background(),
		UDF("lambda acc, row: acc + row"), UDF("lambda a, b: a + b"), int64(0))
	if err != nil || v != int64(120) {
		t.Fatalf("aggregate: %v / %v", v, err)
	}
}
