# Tier-1 gate: build + tests. `make check` adds vet and the race
# detector (the streamed ingest producer/consumer path must stay
# race-clean); run it before sending a PR.

GO ?= go

.PHONY: all build test vet tuplex-vet plancheck race check bench-ingest bench-smoke bench-json bench-compare telemetry-smoke serve-smoke trace-demo

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Repo-specific analyzers (internal/lint): exported-API internal-type
# leaks, trace-span Begin/End mispairings, atomic copies, hot-path
# allocs, sentinel-error == comparisons, dropped-ctx calls.
tuplex-vet:
	$(GO) run ./cmd/tuplex-vet

# Whole-plan static verifier: golden diagnostics for the adversarial
# corpus (testdata/plancheck/) and the five paper pipelines, plus
# `tuplex-run -check` over each paper pipeline as a CLI end-to-end.
plancheck:
	$(GO) test ./internal/plancheck/
	for p in zillow flights weblogs 311 q6; do \
		$(GO) run ./cmd/tuplex-run -pipeline $$p -rows 200 -check || exit 1; \
	done

race:
	$(GO) test -race ./...

check: build vet tuplex-vet plancheck test race

bench-ingest:
	$(GO) test -bench BenchmarkIngest -run '^$$' .

# One iteration of every benchmark — catches bitrot in bench code
# without the timing cost of a real run — plus the streamed-vs-
# materialized ingest assertion (streamed must not be slower).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	TUPLEX_BENCH_ASSERT=1 $(GO) test -run TestStreamedAtLeastMaterialized -v .

# End-to-end check of the introspection server: tuplex-bench with
# -listen, scrape /metrics and /debug/tuplex/runz, fail on non-200 or
# empty/malformed responses.
telemetry-smoke:
	sh scripts/telemetry_smoke.sh

# Machine-readable benchmark snapshot (ingest, join, flights, compiler
# optimizations, serve cold/warm/throughput) written to BENCH_8.json;
# commit the refreshed file when performance-relevant code changes.
bench-json:
	$(GO) run ./cmd/tuplex-bench -out BENCH_8.json bench-json

# Regression gate: rerun bench-json and compare against the committed
# BENCH_8.json; fails on >25% throughput drop or >2x allocs growth,
# with a hard guard on join/sharded allocs/op (the columnar-barrier
# win pinned down by the BENCH_7 snapshot).
bench-compare:
	sh scripts/bench_compare.sh

# End-to-end check of the tuplex-serve daemon: zillow job answers 200,
# byte-identical resubmission is a cache hit, cold p50 >= 10x warm p50
# on a compile-heavy small job, >= 1k sustained jobs/sec, overload
# sheds with 429s, SIGTERM drains cleanly.
serve-smoke:
	sh scripts/serve_smoke.sh

# Run the Zillow example with full tracing: prints the span tree, the
# per-operator row-routing ledger and sampled exception rows.
trace-demo:
	$(GO) run ./examples/zillow -rows 20000 -trace
