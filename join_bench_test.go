package tuplex_test

import (
	"fmt"
	"strconv"
	"testing"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

func benchJoinData(buildN, probeN int) (build, probe [][]any) {
	build = make([][]any, buildN)
	for i := range build {
		build[i] = []any{int64(i), fmt.Sprintf("name-%d", i)}
	}
	probe = make([][]any, probeN)
	for i := range probe {
		probe[i] = []any{int64(i % (buildN * 5 / 4)), float64(i)}
	}
	return build, probe
}

func BenchmarkJoin(b *testing.B) {
	build, probe := benchJoinData(2_000, 20_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := tuplex.NewContext()
		lhs := c.Parallelize(probe, []string{"k", "v"})
		rhs := c.Parallelize(build, []string{"k", "name"})
		res, err := lhs.Join(rhs, "k", "k").Collect()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no join output")
		}
	}
}

func BenchmarkUnique(b *testing.B) {
	_, probe := benchJoinData(2_000, 20_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := tuplex.NewContext()
		res, err := c.Parallelize(probe, []string{"k", "v"}).SelectColumns("k").Unique().Collect()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 2_500 { // probe keys span buildN*5/4 values
			b.Fatalf("got %d distinct", len(res.Rows))
		}
	}
}

// stringJoinKey reproduces the pre-kernel probe path: a tag-prefixed
// string key materialized per probe row. Kept as the baseline the
// zero-allocation path is measured against.
func stringJoinKey(s rows.Slot) (string, bool) {
	switch s.Tag {
	case types.KindBool:
		if s.B {
			return "i:1", true
		}
		return "i:0", true
	case types.KindI64:
		return "i:" + strconv.FormatInt(s.I, 10), true
	case types.KindF64:
		return "f:" + strconv.FormatFloat(s.F, 'g', -1, 64), true
	case types.KindStr:
		return "s:" + s.S, true
	default:
		return "", false
	}
}

// BenchmarkProbeHashKernel measures one probe of the hash kernel hot
// path: scratch-buffer key encode + Hash64 + shard lookup. 0 allocs/op.
func BenchmarkProbeHashKernel(b *testing.B) {
	const n = 4096
	table := map[uint64][]int{}
	buf := make([]byte, 0, 64)
	for i := 0; i < n; i++ {
		buf, _ = rows.AppendJoinKey(buf[:0], rows.I64(int64(i)))
		h := rows.Hash64(buf)
		table[h] = append(table[h], i)
	}
	slots := make([]rows.Slot, n)
	for i := range slots {
		slots[i] = rows.I64(int64(i * 3 / 2)) // mix of hits and misses
	}
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		var ok bool
		buf, ok = rows.AppendJoinKey(buf[:0], slots[i%n])
		if !ok {
			continue
		}
		if len(table[rows.Hash64(buf)]) > 0 {
			hits++
		}
	}
	_ = hits
}

// BenchmarkProbeStringBaseline measures the same probe against the old
// string-keyed map: every row allocates its key string.
func BenchmarkProbeStringBaseline(b *testing.B) {
	const n = 4096
	table := map[string][]int{}
	for i := 0; i < n; i++ {
		k, _ := stringJoinKey(rows.I64(int64(i)))
		table[k] = append(table[k], i)
	}
	slots := make([]rows.Slot, n)
	for i := range slots {
		slots[i] = rows.I64(int64(i * 3 / 2))
	}
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		k, ok := stringJoinKey(slots[i%n])
		if !ok {
			continue
		}
		if len(table[k]) > 0 {
			hits++
		}
	}
	_ = hits
}
