package tuplex

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// traceCSV is a fixed input with two kinds of dirty row: "bad" fails
// the generated parser (a classifier reject attributed to the source
// entry, unresolvable) and the 0 row raises ZeroDivisionError inside
// the mapColumn UDF on the normal path (recovered by the resolver).
const traceCSV = "k,v\n1,10\n2,20\n3,bad\n4,40\n5,50\n6,0\n"

// tracedPipeline builds the fixed two-stage pipeline used by the trace
// tests: mapColumn + resolver, a Cache() stage boundary, then a filter.
func tracedPipeline(t *testing.T, opts ...Option) *Result {
	t.Helper()
	c := NewContext(opts...)
	res, err := c.CSV("", CSVData([]byte(traceCSV))).
		MapColumn("v", UDF("lambda v: 100.0 / v")).
		Resolve(ZeroDivisionError, UDF("lambda v: -1.0")).
		Cache().
		Filter(UDF("lambda x: x['v'] > 2.1")).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// findSpans returns every span named name, depth-first.
func findSpans(s *Span, name string) []*Span {
	var out []*Span
	if s == nil {
		return nil
	}
	if s.Name == name {
		out = append(out, s)
	}
	for _, c := range s.Children {
		out = append(out, findSpans(c, name)...)
	}
	return out
}

func TestTraceShape(t *testing.T) {
	res := tracedPipeline(t, WithTracing(TraceSamples), WithExecutors(1))
	tr := res.Trace
	if tr == nil || tr.Root == nil {
		t.Fatal("no trace recorded")
	}
	if tr.Level != TraceSamples {
		t.Fatalf("level = %v", tr.Level)
	}
	if tr.Root.Name != "run" {
		t.Fatalf("root span = %q", tr.Root.Name)
	}
	if tr.Root.DurNS <= 0 {
		t.Fatal("run span has no duration")
	}
	if n := len(findSpans(tr.Root, "plan")); n != 1 {
		t.Fatalf("plan spans = %d", n)
	}
	stages := findSpans(tr.Root, "stage")
	if len(stages) != 2 {
		t.Fatalf("stage spans = %d, want 2 (Cache splits the pipeline)", len(stages))
	}
	for i, st := range stages {
		if len(findSpans(st, "compile")) != 1 {
			t.Fatalf("stage %d: missing compile span", i)
		}
		ex := findSpans(st, "execute")
		if len(ex) != 1 {
			t.Fatalf("stage %d: missing execute span", i)
		}
		if len(ex[0].Tasks) == 0 {
			t.Fatalf("stage %d: no task timings", i)
		}
		for _, task := range ex[0].Tasks {
			if task.Worker != 0 {
				t.Fatalf("stage %d: worker = %d with 1 executor", i, task.Worker)
			}
		}
		if len(st.Routing) < 2 {
			t.Fatalf("stage %d: routing ledger = %v", i, st.Routing)
		}
		if st.Routing[0].Op != "source" {
			t.Fatalf("stage %d: ledger[0].Op = %q", i, st.Routing[0].Op)
		}
	}
	// Stage 0's ledger: 6 rows enter; "bad" rejects at the source entry
	// and fails, the 0 row raises ZeroDivisionError at the mapColumn and
	// the resolver recovers it.
	r0 := stages[0].Routing
	if r0[0].NormalIn != 6 {
		t.Fatalf("source normal_in = %d", r0[0].NormalIn)
	}
	var mc *OpRouting
	for i := range r0 {
		if r0[i].Op == "mapColumn(v)" {
			mc = &r0[i]
		}
	}
	if mc == nil {
		t.Fatalf("no mapColumn entry in ledger %+v", r0)
	}
	if mc.NormalExc != 1 || mc.ResolverResolved != 1 {
		t.Fatalf("mapColumn entry = %+v, want the ZeroDivisionError raised and resolved here", *mc)
	}
	if r0[0].NormalExc != 1 || r0[0].Failed != 1 {
		t.Fatalf("source entry = %+v, want the parse reject raised and failed here", r0[0])
	}
	// The exception row samples name the op and the exception class.
	var samples []ExceptionSample
	for _, st := range stages {
		samples = append(samples, st.Samples...)
	}
	var zd *ExceptionSample
	for i := range samples {
		if samples[i].Exc == "ZeroDivisionError" {
			zd = &samples[i]
		}
	}
	if zd == nil || zd.Op != "mapColumn(v)" || zd.Outcome != "resolver" {
		t.Fatalf("samples = %+v, want a resolver-resolved ZeroDivisionError at mapColumn(v)", samples)
	}
	if n := len(findSpans(tr.Root, "sink")); n != 1 {
		t.Fatalf("sink spans = %d", n)
	}
}

// attr returns the value of the named attribute, or "" if absent.
func attr(s *Span, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

func TestTraceAnalyzeSpan(t *testing.T) {
	// j is constant 5 across the whole input, so under compiler
	// optimizations the dataflow pass folds the divisor, elides the
	// zero check and installs one guard on the sampled fact.
	csv := "i,j\n"
	for n := range 50 {
		csv += fmt.Sprintf("%d,5\n", n)
	}
	c := NewContext(WithTracing(TraceSpans))
	res, err := c.CSV("", CSVData([]byte(csv))).
		WithColumn("v", UDF("lambda x: x['i'] // x['j']")).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	spans := findSpans(res.Trace.Root, "analyze")
	if len(spans) != 1 {
		t.Fatalf("analyze spans = %d, want 1", len(spans))
	}
	a := spans[0]
	if got := attr(a, "op"); got != "withColumn(v)" {
		t.Fatalf("op attr = %q", got)
	}
	if got := attr(a, "can_raise"); !strings.Contains(got, "ZeroDivisionError") {
		t.Fatalf("can_raise attr = %q, want ZeroDivisionError", got)
	}
	if got := attr(a, "consts_folded"); got != "1" {
		t.Fatalf("consts_folded attr = %q", got)
	}
	if got := attr(a, "checks_elided"); got != "1" {
		t.Fatalf("checks_elided attr = %q", got)
	}
	if got := attr(a, "guards"); got != "1" {
		t.Fatalf("guards attr = %q", got)
	}
	if got := attr(a, "lints"); got != "0" {
		t.Fatalf("lints attr = %q", got)
	}

	// With compiler optimizations off the analyze span still records
	// the inferred exception sites, but no specialization happens.
	c = NewContext(WithTracing(TraceSpans), WithCompilerOptimizations(false))
	res, err = c.CSV("", CSVData([]byte(csv))).
		WithColumn("v", UDF("lambda x: x['i'] // x['j']")).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	spans = findSpans(res.Trace.Root, "analyze")
	if len(spans) != 1 {
		t.Fatalf("unoptimized analyze spans = %d, want 1", len(spans))
	}
	a = spans[0]
	if got := attr(a, "can_raise"); !strings.Contains(got, "ZeroDivisionError") {
		t.Fatalf("unoptimized can_raise attr = %q", got)
	}
	if got := attr(a, "guards"); got != "" && got != "0" {
		t.Fatalf("unoptimized guards attr = %q, want none", got)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	res := tracedPipeline(t, WithTracing(TraceSamples), WithExecutors(2))
	b, err := json.Marshal(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Trace, &back) {
		b2, _ := json.Marshal(&back)
		t.Fatalf("trace does not round-trip:\n  %s\nvs\n  %s", b, b2)
	}
}

func TestTraceOffAndDefault(t *testing.T) {
	res := tracedPipeline(t, WithTracing(TraceOff))
	if res.Trace != nil {
		t.Fatalf("TraceOff: trace = %+v", res.Trace)
	}
	res = tracedPipeline(t) // default level
	if res.Trace == nil || res.Trace.Level != TraceSpans {
		t.Fatalf("default trace = %+v", res.Trace)
	}
	// Spans only: no per-row data recorded.
	for _, st := range findSpans(res.Trace.Root, "stage") {
		if st.Routing != nil || st.Samples != nil {
			t.Fatalf("TraceSpans recorded row data: %+v", st)
		}
	}
}

// routingCounts concatenates the stage spans' routing ledgers.
func routingCounts(spans []*Span) []OpRouting {
	var out []OpRouting
	for _, s := range spans {
		out = append(out, s.Routing...)
	}
	return out
}

func TestTraceDeterministicAcrossExecutors(t *testing.T) {
	one := tracedPipeline(t, WithTracing(TraceRows), WithExecutors(1))
	eight := tracedPipeline(t, WithTracing(TraceRows), WithExecutors(8))
	r1 := routingCounts(findSpans(one.Trace.Root, "stage"))
	r8 := routingCounts(findSpans(eight.Trace.Root, "stage"))
	if !reflect.DeepEqual(r1, r8) {
		t.Fatalf("routing ledgers differ:\n1 executor: %+v\n8 executors: %+v", r1, r8)
	}
	if !reflect.DeepEqual(one.Rows, eight.Rows) {
		t.Fatal("row output differs across executor counts")
	}
}

func TestTraceLedgerReconcilesWithMetrics(t *testing.T) {
	// Dirty input: "boom" rows fail (no resolver), at sample size 2 the
	// normal case is int so the string rows leave the normal path.
	csv := "v\n1\n2\nboom\n4\nboom\n6\n7\n8\n"
	c := NewContext(WithTracing(TraceRows), WithSampleSize(2))
	res, err := c.CSV("", CSVData([]byte(csv))).
		MapColumn("v", UDF("lambda v: v + 1")).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	var sum OpRouting
	for _, r := range routingCounts(findSpans(res.Trace.Root, "stage")) {
		sum.NormalExc += r.NormalExc
		sum.GeneralResolved += r.GeneralResolved
		sum.FallbackResolved += r.FallbackResolved
		sum.ResolverResolved += r.ResolverResolved
		sum.Ignored += r.Ignored
		sum.Failed += r.Failed
	}
	m := res.Metrics.Rows
	if got, want := sum.NormalExc, m.ClassifierRejects+m.NormalPathExceptions; got != want {
		t.Fatalf("ledger exceptions = %d, metrics = %d", got, want)
	}
	if sum.GeneralResolved != m.GeneralResolved ||
		sum.FallbackResolved != m.FallbackResolved ||
		sum.ResolverResolved != m.ResolverResolved ||
		sum.Ignored != m.Ignored || sum.Failed != m.Failed {
		t.Fatalf("ledger outcomes %+v do not reconcile with metrics %+v", sum, m)
	}
	if sum.Failed == 0 {
		t.Fatal("expected failed rows in this fixture")
	}
}

func TestTraceString(t *testing.T) {
	res := tracedPipeline(t, WithTracing(TraceSamples))
	s := res.Trace.String()
	for _, want := range []string{"run ", "stage", "execute", "sink", "mapColumn(v)", "ZeroDivisionError"} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace tree missing %q:\n%s", want, s)
		}
	}
	var empty *Trace
	if empty.String() != "trace: (empty)" {
		t.Fatalf("nil trace String = %q", empty.String())
	}
}
