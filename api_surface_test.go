package tuplex

import (
	"reflect"
	"strings"
	"testing"
)

// TestPublicAPISurfaceNamesNoInternalType walks every type reachable
// through the package's exported structs and methods and asserts none of
// them lives under internal/... — external modules must be able to name
// everything the API hands back.
func TestPublicAPISurfaceNamesNoInternalType(t *testing.T) {
	roots := []any{
		Context{}, DataSet{}, Result{}, Row{}, FailedRow{},
		Metrics{}, RowCounts{}, PhaseTimings{}, IngestMetrics{},
		JoinMetrics{}, StageMetrics{},
		Trace{}, Span{}, TraceAttr{}, TaskTiming{}, OpRouting{}, ExceptionSample{},
		TraceLevel(0), ExcKind(0), UDFDef{},
		Option{}, CSVOption{}, TextOption{},
		Plan{}, Client{}, Job{}, JobResult{}, ServiceError{},
	}
	seen := map[reflect.Type]bool{}
	var visit func(rt reflect.Type, path string)
	visit = func(rt reflect.Type, path string) {
		if rt == nil || seen[rt] {
			return
		}
		seen[rt] = true
		if pkg := rt.PkgPath(); strings.Contains(pkg, "/internal/") || strings.HasSuffix(pkg, "/internal") {
			t.Errorf("%s leaks internal type %v (from %s)", path, rt, pkg)
			return
		}
		switch rt.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Chan:
			visit(rt.Elem(), path+"/elem")
		case reflect.Map:
			visit(rt.Key(), path+"/key")
			visit(rt.Elem(), path+"/elem")
		case reflect.Struct:
			for i := 0; i < rt.NumField(); i++ {
				f := rt.Field(i)
				if !f.IsExported() {
					continue // unexported fields are implementation detail
				}
				visit(f.Type, path+"."+f.Name)
			}
		case reflect.Func:
			for i := 0; i < rt.NumIn(); i++ {
				visit(rt.In(i), path+"/in")
			}
			for i := 0; i < rt.NumOut(); i++ {
				visit(rt.Out(i), path+"/out")
			}
		}
		// Exported methods (on T and *T) are part of the surface too.
		for _, mt := range []reflect.Type{rt, reflect.PointerTo(rt)} {
			for i := 0; i < mt.NumMethod(); i++ {
				m := mt.Method(i)
				if m.IsExported() {
					visit(m.Type, path+"."+m.Name)
				}
			}
		}
	}
	for _, r := range roots {
		rt := reflect.TypeOf(r)
		visit(rt, rt.String())
	}
}

// TestOptionConstructorsCompile exercises every exported option
// constructor, proving the whole configuration surface is reachable
// without naming any internal/... type.
func TestOptionConstructorsCompile(t *testing.T) {
	opts := []Option{
		WithExecutors(2),
		WithSampleSize(64),
		WithNullThreshold(0.5),
		WithNullOptimization(true),
		WithNullOptimization(false),
		WithoutNullOptimization(),
		WithLogicalOptimizations(true, true, false),
		WithoutLogicalOptimizations(),
		WithStageFusion(true),
		WithoutStageFusion(),
		WithCompilerOptimizations(true),
		WithoutCompilerOptimizations(),
		WithSeed(42),
		WithPartitionRows(1024),
		WithStreamingIngest(true),
		WithChunkSize(1 << 20),
		WithTracing(TraceRows),
	}
	csvOpts := []CSVOption{
		CSVHeader(true), CSVDelimiter(';'), CSVColumns("a", "b"),
		CSVNullValues("", "NA"), CSVData([]byte("a,b\n1,2\n")),
	}
	textOpts := []TextOption{TextData([]byte("x\n")), TextColumn("line")}

	c := NewContext(opts...)
	res, err := c.CSV("", csvOpts...).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res, err = c.Text("", textOpts...).Collect(); err != nil || len(res.Rows) != 1 {
		t.Fatalf("text: %v / %v", res, err)
	}
}
