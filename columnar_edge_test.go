package tuplex_test

import (
	"fmt"
	"strings"
	"testing"

	tuplex "github.com/gotuplex/tuplex"
)

// Columnar edge cases: the column-vector data plane must agree with the
// boxed row path byte-for-byte on inputs that stress its layout — null
// bitmaps across chunk seams, chunks with no complete record payload,
// all-null columns, and string cells with embedded quotes and newlines
// (which make physical records span raw chunk boundaries).

// bothModes runs the build function with columnar execution on and off
// and returns the two results.
func bothModes(t *testing.T, build func(c *tuplex.Context) (*tuplex.Result, error), extra ...tuplex.Option) (on, off *tuplex.Result) {
	t.Helper()
	run := func(col bool) *tuplex.Result {
		opts := append([]tuplex.Option{tuplex.WithColumnarExecution(col)}, extra...)
		res, err := build(tuplex.NewContext(opts...))
		if err != nil {
			t.Fatalf("columnar=%v: %v", col, err)
		}
		return res
	}
	return run(true), run(false)
}

func wantSameCSV(t *testing.T, on, off *tuplex.Result) {
	t.Helper()
	if string(on.CSV) != string(off.CSV) {
		t.Fatalf("CSV differs:\n  columnar %q\n  boxed    %q", on.CSV, off.CSV)
	}
	if on.Metrics.Rows != off.Metrics.Rows {
		t.Fatalf("accounting differs: columnar %+v, boxed %+v", on.Metrics.Rows, off.Metrics.Rows)
	}
}

func TestColumnarNullBitmapsAcrossChunkSeams(t *testing.T) {
	// Nullable int and str columns with nulls placed so every tiny chunk
	// boundary lands inside a null run somewhere.
	var sb strings.Builder
	sb.WriteString("a,b,c\n")
	for i := range 400 {
		a, b := "", ""
		if i%3 != 0 {
			a = fmt.Sprint(i)
		}
		if i%5 != 0 {
			b = fmt.Sprintf("s%d", i)
		}
		fmt.Fprintf(&sb, "%s,%s,%d\n", a, b, i)
	}
	raw := sb.String()
	for _, chunk := range []int{1 << 7, 1 << 9, 1 << 12} {
		on, off := bothModes(t, func(c *tuplex.Context) (*tuplex.Result, error) {
			return c.CSV("", tuplex.CSVData([]byte(raw))).
				Filter(tuplex.UDF("lambda x: x['c'] % 2 == 0")).
				ToCSV("")
		}, tuplex.WithChunkSize(chunk))
		wantSameCSV(t, on, off)
		if on.Metrics.Rows.Output != 200 {
			t.Fatalf("chunk=%d: output rows = %d, want 200", chunk, on.Metrics.Rows.Output)
		}
	}
}

func TestColumnarAllNullColumn(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("x,y\n")
	for i := range 50 {
		fmt.Fprintf(&sb, ",%d\n", i)
	}
	on, off := bothModes(t, func(c *tuplex.Context) (*tuplex.Result, error) {
		return c.CSV("", tuplex.CSVData([]byte(sb.String()))).
			WithColumn("z", tuplex.UDF("lambda x: x['y'] * 2")).
			ToCSV("")
	}, tuplex.WithChunkSize(1<<7))
	wantSameCSV(t, on, off)
	if on.Metrics.Rows.Output != 50 {
		t.Fatalf("output rows = %d, want 50", on.Metrics.Rows.Output)
	}
	// The all-null column must render as empty cells, not vanish.
	first := strings.SplitN(string(on.CSV), "\n", 3)
	if len(first) < 2 || !strings.HasPrefix(first[1], ",") {
		t.Fatalf("all-null first column not rendered empty: %q", first[1])
	}
}

func TestColumnarQuotedNewlinesAcrossChunks(t *testing.T) {
	// Records whose quoted cells contain newlines, quotes and delimiters;
	// tiny chunks guarantee raw chunk boundaries fall inside quoted
	// bodies, exercising the record-aligned carry.
	var sb strings.Builder
	sb.WriteString("id,text\n")
	for i := range 120 {
		fmt.Fprintf(&sb, "%d,\"line one %d\nline \"\"two\"\", with comma %d\"\n", i, i, i)
	}
	raw := sb.String()
	for _, chunk := range []int{1 << 6, 1 << 8} {
		on, off := bothModes(t, func(c *tuplex.Context) (*tuplex.Result, error) {
			return c.CSV("", tuplex.CSVData([]byte(raw))).
				Filter(tuplex.UDF("lambda x: 'two' in x['text']")).
				ToCSV("")
		}, tuplex.WithChunkSize(chunk))
		wantSameCSV(t, on, off)
		if on.Metrics.Rows.Output != 120 {
			t.Fatalf("chunk=%d: output rows = %d, want 120", chunk, on.Metrics.Rows.Output)
		}
		if !strings.Contains(string(on.CSV), "\"line one 7\nline \"\"two\"\", with comma 7\"") {
			t.Fatalf("chunk=%d: quoted newline cell not round-tripped", chunk)
		}
	}
}

func TestColumnarEmptyAndHeaderOnlyInputs(t *testing.T) {
	// Header-only input has no sampleable rows: the engine rejects it
	// up front, and the rejection must not depend on the execution mode.
	for _, col := range []bool{true, false} {
		c := tuplex.NewContext(tuplex.WithColumnarExecution(col))
		_, err := c.CSV("", tuplex.CSVData([]byte("a,b\n"))).
			Map(tuplex.UDF("lambda x: x['a']")).
			ToCSV("")
		if err == nil || !strings.Contains(err.Error(), "empty CSV input") {
			t.Fatalf("columnar=%v: err = %v, want empty-input rejection", col, err)
		}
	}
}

func TestColumnarEmptyChunksFromFilter(t *testing.T) {
	// A filter that annihilates entire chunks produces empty batches
	// downstream; seams between surviving chunks must stay consistent.
	var sb strings.Builder
	sb.WriteString("n,s\n")
	for i := range 300 {
		fmt.Fprintf(&sb, "%d,v%d\n", i, i)
	}
	on, off := bothModes(t, func(c *tuplex.Context) (*tuplex.Result, error) {
		return c.CSV("", tuplex.CSVData([]byte(sb.String()))).
			Filter(tuplex.UDF("lambda x: x['n'] >= 290")).
			MapColumn("s", tuplex.UDF("lambda x: x.upper()")).
			ToCSV("")
	}, tuplex.WithChunkSize(1<<7))
	wantSameCSV(t, on, off)
	if on.Metrics.Rows.Output != 10 {
		t.Fatalf("output rows = %d, want 10", on.Metrics.Rows.Output)
	}
}
