package tuplex

import (
	"context"
	"fmt"

	"github.com/gotuplex/tuplex/internal/core"
	"github.com/gotuplex/tuplex/internal/logical"
)

// ErrCanceled reports that an execution stopped because its context was
// canceled or its deadline expired. Errors from the *Context entry
// points wrap it; test with errors.Is(err, tuplex.ErrCanceled) to tell
// cancellation apart from data or pipeline errors. Cancellation is
// observed at chunk/task boundaries — never mid-row — so a canceled run
// stops within one partition's worth of work and returns no partial
// result.
var ErrCanceled = core.ErrCanceled

// CollectContext is Collect under ctx: cancel ctx (or let its deadline
// expire) to abandon the run early with an error wrapping ErrCanceled.
func (d *DataSet) CollectContext(ctx context.Context) (*Result, error) {
	return d.runCtx(ctx, core.SinkCollect, "")
}

// TakeContext is Take under ctx; see CollectContext for cancellation
// semantics.
func (d *DataSet) TakeContext(ctx context.Context, n int) (*Result, error) {
	res, err := d.runCtx(ctx, core.SinkCollect, "")
	if err != nil {
		return nil, err
	}
	if n >= 0 && len(res.Rows) > n {
		res.Rows = res.Rows[:n]
	}
	return res, nil
}

// ToCSVContext is ToCSV under ctx; see CollectContext for cancellation
// semantics.
func (d *DataSet) ToCSVContext(ctx context.Context, path string) (*Result, error) {
	return d.runCtx(ctx, core.SinkCSV, path)
}

// AggregateContext is Aggregate under ctx; see CollectContext for
// cancellation semantics.
func (d *DataSet) AggregateContext(ctx context.Context, agg, comb UDFDef, initial any) (any, *Result, error) {
	if d.err != nil {
		return nil, nil, d.err
	}
	aggSpec, err := d.udf(agg)
	if err != nil {
		return nil, nil, err
	}
	combSpec, err := d.udf(comb)
	if err != nil {
		return nil, nil, err
	}
	ds := d.chain(&logical.AggregateOp{Agg: aggSpec, Comb: combSpec, Initial: boxValue(initial)})
	res, err := ds.runCtx(ctx, core.SinkCollect, "")
	if err != nil {
		return nil, nil, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return nil, res, fmt.Errorf("tuplex: aggregate produced unexpected shape")
	}
	return res.Rows[0][0], res, nil
}
