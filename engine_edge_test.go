package tuplex

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

func writeFileHelper(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestAllExceptionSampleWarns(t *testing.T) {
	// Every row fails the UDF: sample-driven typing can't help, but the
	// pipeline still completes with failed-row reports (§7).
	csv := "v\nx\ny\nz\n"
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte(csv))).
		MapColumn("v", UDF("lambda m: m / 0")))
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Failed) != 3 {
		t.Fatalf("failed = %d", len(res.Failed))
	}
	for _, f := range res.Failed {
		// 'x' / 0 is a TypeError in Python (the operand check precedes
		// the zero check).
		if f.Exc != TypeError {
			t.Fatalf("exc = %v", f.Exc)
		}
	}
}

func TestToCSVSplicesExceptionRowsInOrder(t *testing.T) {
	csv := "v\n1\n2\nbad\n4\n5\n"
	c := NewContext(WithSampleSize(2))
	res, err := c.CSV("", CSVData([]byte(csv))).
		MapColumn("v", UDF("lambda m: m + 1")).
		Resolve(TypeError, UDF("lambda m: -1")).
		ToCSV("")
	if err != nil {
		t.Fatal(err)
	}
	want := "v\n2\n3\n-1\n5\n6\n"
	if string(res.CSV) != want {
		t.Fatalf("csv = %q, want %q", res.CSV, want)
	}
}

func TestCacheCreatesStageBoundary(t *testing.T) {
	csv := "v\n1\n2\n3\n"
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte(csv))).
		MapColumn("v", UDF("lambda m: m * 2")).
		Cache().
		MapColumn("v", UDF("lambda m: m + 1")))
	if res.Metrics.NumStages < 2 {
		t.Fatalf("stages = %d, want >= 2", res.Metrics.NumStages)
	}
	if res.Rows[2][0] != int64(7) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	left := "k,v\na,1\n,2\nb,3\n"
	right := "k,w\na,10\n,99\n"
	c := NewContext(WithSampleSize(1)) // sample row has non-null key
	res := collect(t, c.CSV("", CSVData([]byte(left))).
		Join(c.CSV("", CSVData([]byte(right))), "k", "k"))
	if len(res.Rows) != 1 || res.Rows[0][0] != "a" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestLeftJoinNullKeyPads(t *testing.T) {
	left := "k,v\na,1\n,2\n"
	right := "k,w\na,10\n"
	c := NewContext(WithSampleSize(1))
	res := collect(t, c.CSV("", CSVData([]byte(left))).
		LeftJoin(c.CSV("", CSVData([]byte(right))), "k", "k"))
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[1][2] != nil {
		t.Fatalf("null-key row should pad, got %v", res.Rows[1])
	}
}

func TestResolverOrderFirstMatchWins(t *testing.T) {
	csv := "v\n1\nbad\n"
	c := NewContext(WithSampleSize(1))
	res := collect(t, c.CSV("", CSVData([]byte(csv))).
		MapColumn("v", UDF("lambda m: m + 1")).
		Resolve(TypeError, UDF("lambda m: -1")).
		Resolve(TypeError, UDF("lambda m: -2")))
	if res.Rows[1][0] != int64(-1) {
		t.Fatalf("rows = %v (first resolver must win)", res.Rows)
	}
}

func TestResolverItselfFailingReportsRow(t *testing.T) {
	csv := "v\n1\nbad\n"
	c := NewContext(WithSampleSize(1))
	res := collect(t, c.CSV("", CSVData([]byte(csv))).
		MapColumn("v", UDF("lambda m: m + 1")).
		Resolve(TypeError, UDF("lambda m: m / 0"))) // resolver raises too
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Failed) != 1 {
		t.Fatalf("failed = %v", res.Failed)
	}
}

func TestEmptyCSVErrors(t *testing.T) {
	c := NewContext()
	if _, err := c.CSV("", CSVData(nil)).Collect(); err == nil {
		t.Fatal("empty CSV accepted")
	}
}

func TestMissingFileErrors(t *testing.T) {
	c := NewContext()
	if _, err := c.CSV("/nonexistent/definitely/missing.csv").Collect(); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestTextColumnNaming(t *testing.T) {
	c := NewContext()
	res := collect(t, c.Text("", TextData([]byte("a\nb\n")), TextColumn("line")))
	if res.Columns[0] != "line" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestHeaderlessCSVWithColumnNames(t *testing.T) {
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte("1:x\n2:y\n")),
		CSVHeader(false), CSVDelimiter(':'), CSVColumns("n", "s")))
	if len(res.Rows) != 2 || res.Rows[0][0] != int64(1) || res.Rows[1][1] != "y" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCustomNullValuesEndToEnd(t *testing.T) {
	csv := "v\n5\nN/A\n7\n"
	c := NewContext(WithSampleSize(10))
	res := collect(t, c.CSV("", CSVData([]byte(csv)), CSVNullValues("", "N/A")).
		MapColumn("v", UDF("lambda m: m * 2 if m else -1")))
	if res.Rows[1][0] != int64(-1) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestBigIntsRoundTrip(t *testing.T) {
	csv := "v\n9007199254740993\n-9223372036854775807\n"
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte(csv))))
	if res.Rows[0][0] != int64(9007199254740993) {
		t.Fatalf("rows = %v (int64 precision lost)", res.Rows)
	}
}

func TestChainedResolversDifferentExceptions(t *testing.T) {
	// int(m) raises ValueError for garbage strings and TypeError for
	// None; each resolver handles its own class.
	csv := "v\nx1\nx2\ngarbage!!\n\nx5\n"
	c := NewContext(WithSampleSize(2))
	res := collect(t, c.CSV("", CSVData([]byte(csv))).
		MapColumn("v", UDF("lambda m: int(m[1:])")).
		Resolve(ValueError, UDF("lambda m: -1")).
		Resolve(TypeError, UDF("lambda m: -2")))
	got := fmt.Sprint(res.Rows)
	want := "[[1] [2] [-1] [-2] [5]]"
	if got != want {
		t.Fatalf("rows = %v, want %v (failed: %v)", got, want, res.Failed)
	}
}

func TestUDFSyntaxErrorSurfacesEarly(t *testing.T) {
	c := NewContext()
	_, err := c.CSV("", CSVData([]byte("a\n1\n"))).
		Filter(UDF("lambda x (broken")).
		Collect()
	if err == nil || !strings.Contains(err.Error(), "python") {
		t.Fatalf("err = %v", err)
	}
}

func TestWarningsSurfaceForDegenerateSample(t *testing.T) {
	// A sample whose rows all have different column counts still picks a
	// majority; degenerate inputs must not crash.
	csv := "a,b\n1\n1,2,3\n4,5\n"
	c := NewContext(WithSampleSize(10))
	res, err := c.CSV("", CSVData([]byte(csv))).Collect()
	if err != nil {
		t.Fatal(err)
	}
	total := len(res.Rows) + len(res.Failed)
	if total != 3 {
		t.Fatalf("rows+failed = %d, want 3", total)
	}
}

func TestMetricsStringIsReadable(t *testing.T) {
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte("v\n1\n"))))
	s := res.Metrics.String()
	if !strings.Contains(s, "rows:") || !strings.Contains(s, "total=") {
		t.Fatalf("metrics string = %q", s)
	}
}

func TestSeedDeterminism(t *testing.T) {
	run := func() string {
		c := NewContext(WithSeed(77))
		res := collect(t, c.Text("", TextData([]byte("x\ny\nz\n"))).
			Map(UDF("lambda x: ''.join([random_choice(AB) for t in range(6)])").
				WithGlobal("AB", "ABCDEF")))
		return fmt.Sprint(res.Rows)
	}
	if run() != run() {
		t.Fatal("same seed produced different random output")
	}
}

func TestMultiFileCSVSource(t *testing.T) {
	dir := t.TempDir()
	p1 := dir + "/a.csv"
	p2 := dir + "/b.csv"
	if err := writeFileHelper(p1, "v,w\n1,x\n2,y\n"); err != nil {
		t.Fatal(err)
	}
	if err := writeFileHelper(p2, "v,w\n3,z\n"); err != nil {
		t.Fatal(err)
	}
	// The paper's pipelines join paths with ','.
	c := NewContext()
	res := collect(t, c.CSV(p1+","+p2).MapColumn("v", UDF("lambda m: m * 10")))
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[2][0] != int64(30) || res.Rows[2][1] != "z" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestTakeTruncates(t *testing.T) {
	c := NewContext()
	res, err := c.CSV("", CSVData([]byte("v\n1\n2\n3\n4\n"))).Take(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
