// BenchmarkIngest measures the tentpole of the streamed ingest work:
// end-to-end wall clock of the Zillow pipeline over an on-disk CSV
// (cold read on the measured path), materialized vs streamed, at one
// and several executors. The streamed path should win whenever record
// splitting/parsing can overlap disk I/O — clearly at N executors, and
// at worst break even single-threaded.
package tuplex_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/pipelines"
)

func BenchmarkIngest(b *testing.B) {
	raw := data.Zillow(data.ZillowConfig{Rows: 100_000, Seed: 2})
	path := filepath.Join(b.TempDir(), "zillow.csv")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		b.Fatal(err)
	}
	// Small chunks so even this bench-sized file spans many chunks, the
	// way a paper-scale (multi-GB) input spans 16 MiB ones.
	const chunk = 256 << 10
	for _, execs := range []int{1, benchParallelism} {
		for _, mode := range []struct {
			name string
			opts []tuplex.Option
		}{
			{"materialized", []tuplex.Option{tuplex.WithStreamingIngest(false)}},
			{"streamed", []tuplex.Option{tuplex.WithChunkSize(chunk)}},
		} {
			b.Run(fmt.Sprintf("%s/exec=%d", mode.name, execs), func(b *testing.B) {
				opts := append([]tuplex.Option{tuplex.WithExecutors(execs)}, mode.opts...)
				b.SetBytes(int64(len(raw)))
				b.ResetTimer()
				for range b.N {
					c := tuplex.NewContext(opts...)
					res, err := pipelines.Zillow(c.CSV(path)).ToCSV("")
					if err != nil {
						b.Fatal(err)
					}
					if len(res.CSV) == 0 {
						b.Fatal("empty output")
					}
				}
			})
		}
	}
}
