// TestStreamedAtLeastMaterialized is the bench-smoke assertion for the
// streamed-ingest regression fixed by the columnar data plane: with
// vectorized parsing, chunked streamed ingest must not be slower than
// materializing the whole file first. It times both modes interleaved
// and compares medians, with a small grace band so scheduler noise on
// shared CI runners cannot flap the build. Gated behind
// TUPLEX_BENCH_ASSERT=1 (set by `make bench-smoke`) because a timing
// assertion has no place in the regular unit-test run.
package tuplex_test

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/pipelines"
)

func TestStreamedAtLeastMaterialized(t *testing.T) {
	if os.Getenv("TUPLEX_BENCH_ASSERT") == "" {
		t.Skip("timing assertion; set TUPLEX_BENCH_ASSERT=1 (make bench-smoke) to run")
	}
	raw := data.Zillow(data.ZillowConfig{Rows: 60_000, Seed: 2})
	path := filepath.Join(t.TempDir(), "zillow.csv")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	run := func(opts ...tuplex.Option) time.Duration {
		t0 := time.Now()
		c := tuplex.NewContext(opts...)
		res, err := pipelines.Zillow(c.CSV(path)).ToCSV("")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.CSV) == 0 {
			t.Fatal("empty output")
		}
		return time.Since(t0)
	}
	mat := func() time.Duration {
		return run(tuplex.WithExecutors(1), tuplex.WithStreamingIngest(false))
	}
	str := func() time.Duration {
		return run(tuplex.WithExecutors(1), tuplex.WithChunkSize(256<<10))
	}

	// Warm both paths once (page cache, pools, JIT-ish lazy init), then
	// interleave timed rounds so drift hits both modes equally.
	mat()
	str()
	const rounds = 5
	var mats, strs []time.Duration
	for range rounds {
		mats = append(mats, mat())
		strs = append(strs, str())
	}
	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	m, s := median(mats), median(strs)
	t.Logf("median materialized %v, streamed %v", m, s)
	// Streamed must be at least as fast, within a 10%% noise band: a
	// genuine regression (the seed's streamed path was ~2x slower) blows
	// far past this, while run-to-run jitter on 1-2 vCPU runners stays
	// inside it.
	if float64(s) > float64(m)*1.10 {
		t.Fatalf("streamed ingest slower than materialized: median %v vs %v (>10%% over)", s, m)
	}
}
