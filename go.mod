module github.com/gotuplex/tuplex

go 1.22
