package tuplex

import (
	"time"

	"github.com/gotuplex/tuplex/internal/core"
	"github.com/gotuplex/tuplex/internal/telemetry"
)

// WithTelemetry enables live monitoring for a run: a background sampler
// snapshots throughput, per-path routing counters, executor utilization
// and memory pressure at a fixed interval (default 100ms) into a
// bounded ring, and zero-allocation histograms record per-chunk and
// per-exception-resolve latencies, summarized in Metrics.Latency. With
// telemetry off (the default) the execution path carries no
// instrumentation at all; runs are also monitored automatically while
// an introspection server (Serve) is active in the process.
func WithTelemetry(opts ...TelemetryOption) Option {
	return Option{apply: func(o *core.Options) {
		o.Telemetry.Enabled = true
		for _, t := range opts {
			t.apply(&o.Telemetry)
		}
	}}
}

// TelemetryOption configures WithTelemetry.
type TelemetryOption struct {
	apply func(*telemetry.Config)
}

// TelemetryInterval sets the sampling period (default 100ms). Shorter
// intervals give finer time series at slightly higher overhead.
func TelemetryInterval(d time.Duration) TelemetryOption {
	return TelemetryOption{apply: func(c *telemetry.Config) { c.Interval = d }}
}

// TelemetryRingSize sets how many samples the run retains (default 600
// — one minute of history at the default interval).
func TelemetryRingSize(n int) TelemetryOption {
	return TelemetryOption{apply: func(c *telemetry.Config) { c.RingSize = n }}
}

// TelemetryLabel names the run in /metrics, /debug/tuplex/runz and the
// progress view.
func TelemetryLabel(label string) TelemetryOption {
	return TelemetryOption{apply: func(c *telemetry.Config) { c.Label = label }}
}

// Server is a live introspection HTTP server (see Serve).
type Server struct {
	s *telemetry.Server
}

// Serve starts an introspection HTTP server on addr (e.g. ":9090", or
// "127.0.0.1:0" for an ephemeral port) exposing:
//
//   - /metrics            Prometheus text exposition of all runs
//   - /debug/tuplex/runz  JSON list of live + recent runs with stage
//     progress (add ?samples=N for the time-series tail)
//   - /debug/pprof/       the standard pprof handlers
//
// While a server is open, every run in the process is monitored (no
// per-run WithTelemetry needed). Close the returned Server to stop.
//
// Serve is kept as a thin introspection-only shim: it does NOT accept
// job submissions. For the long-lived multi-tenant query service —
// the same introspection surface plus the /v1/jobs API with admission
// control and the compiled-pipeline cache — run the cmd/tuplex-serve
// daemon and talk to it with Client.
func Serve(addr string) (*Server, error) {
	s, err := telemetry.Serve(addr)
	if err != nil {
		return nil, err
	}
	return &Server{s: s}, nil
}

// Addr reports the server's listen address (useful with ":0").
func (s *Server) Addr() string { return s.s.Addr() }

// Close stops the server.
func (s *Server) Close() error { return s.s.Close() }
