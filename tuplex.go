// Package tuplex is a Go implementation of Tuplex, the data analytics
// framework that compiles natural Python UDFs into specialized native
// code with dual-mode execution (Spiegelberg et al., SIGMOD 2021).
//
// Pipelines mirror the paper's LINQ-style API:
//
//	c := tuplex.NewContext()
//	carriers := c.CSV("carriers.csv", tuplex.CSVHeader(true))
//	res, err := c.CSV("flights.csv", tuplex.CSVHeader(true)).
//		Join(carriers, "code", "code").
//		MapColumn("distance", tuplex.UDF("lambda m: m * 1.609")).
//		Resolve(tuplex.TypeError, tuplex.UDF("lambda m: 0.0")).
//		ToCSV("output.csv")
//
// UDFs are Python source strings (lambdas or single defs) with no type
// annotations. The engine samples the input to establish the normal
// case, compiles a specialized fast path plus a row classifier, and
// retries non-conforming rows on the compiled general-case path, the
// interpreter fallback and user resolvers — pipelines complete even on
// dirty data, with unresolved rows reported instead of raised.
package tuplex

import (
	"context"
	"fmt"

	"github.com/gotuplex/tuplex/internal/codegen"
	"github.com/gotuplex/tuplex/internal/core"
	"github.com/gotuplex/tuplex/internal/logical"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
)

// ExcKind identifies a Python exception class for Resolve/Ignore.
type ExcKind uint8

// Exception kinds usable with Resolve and Ignore.
const (
	TypeError         = ExcKind(pyvalue.ExcTypeError)
	ValueError        = ExcKind(pyvalue.ExcValueError)
	ZeroDivisionError = ExcKind(pyvalue.ExcZeroDivisionError)
	IndexError        = ExcKind(pyvalue.ExcIndexError)
	KeyError          = ExcKind(pyvalue.ExcKeyError)
	AttributeError    = ExcKind(pyvalue.ExcAttributeError)
)

// String names the exception class ("TypeError", ...).
func (k ExcKind) String() string { return pyvalue.ExcKind(k).String() }

// UDFDef is a Python UDF definition: source plus optional globals.
type UDFDef struct {
	source  string
	globals map[string]any
}

// UDF wraps Python source (a lambda or a def) as a pipeline UDF.
func UDF(source string) UDFDef { return UDFDef{source: source} }

// WithGlobal binds a module-level constant visible to the UDF (e.g. an
// alphabet string used with random.choice).
func (u UDFDef) WithGlobal(name string, value any) UDFDef {
	g := map[string]any{}
	for k, v := range u.globals {
		g[k] = v
	}
	g[name] = value
	return UDFDef{source: u.source, globals: g}
}

// Option configures a Context. Options are opaque values built by the
// With* constructors; external modules never need to name any engine
// type.
type Option struct {
	apply func(*core.Options)
}

// WithExecutors sets the executor thread count.
func WithExecutors(n int) Option {
	return Option{apply: func(o *core.Options) { o.Executors = n }}
}

// WithSampleSize sets how many input rows the sampler inspects.
func WithSampleSize(n int) Option {
	return Option{apply: func(o *core.Options) { o.Sample.Size = n }}
}

// WithNullThreshold sets the δ threshold of §4.2's option-type policy.
func WithNullThreshold(delta float64) Option {
	return Option{apply: func(o *core.Options) { o.Sample.Delta = delta }}
}

// WithNullOptimization toggles normal-case null specialization (§6.3.3
// ablation when false; default on).
func WithNullOptimization(on bool) Option {
	return Option{apply: func(o *core.Options) { o.Sample.DisableNullOpt = !on }}
}

// WithoutNullOptimization disables normal-case null specialization.
//
// Deprecated: use WithNullOptimization(false).
func WithoutNullOptimization() Option { return WithNullOptimization(false) }

// WithoutLogicalOptimizations disables filter/projection pushdown and
// join reordering.
func WithoutLogicalOptimizations() Option {
	return Option{apply: func(o *core.Options) { o.Logical = logical.Options{} }}
}

// WithLogicalOptimizations sets the planner rewrites individually.
func WithLogicalOptimizations(projection, filter, joinReorder bool) Option {
	return Option{apply: func(o *core.Options) {
		o.Logical = logical.Options{
			ProjectionPushdown: projection,
			FilterPushdown:     filter,
			JoinReorder:        joinReorder,
		}
	}}
}

// WithStageFusion toggles maximal stages (§6.3.2 ablation when false;
// default on: every UDF operator fuses into its stage).
func WithStageFusion(on bool) Option {
	return Option{apply: func(o *core.Options) { o.Fusion = on }}
}

// WithoutStageFusion makes every UDF operator an optimization barrier.
//
// Deprecated: use WithStageFusion(false).
func WithoutStageFusion() Option { return WithStageFusion(false) }

// WithCompilerOptimizations toggles specialized fast-path code
// generation. When false, the fast path uses generic boxed dispatch —
// the "LLVM optimizers disabled" arm of Fig. 11. Default on.
func WithCompilerOptimizations(on bool) Option {
	return Option{apply: func(o *core.Options) { o.Codegen = codegen.Options{Specialize: on} }}
}

// WithoutCompilerOptimizations generates generic (boxed-dispatch) code
// on the fast path.
//
// Deprecated: use WithCompilerOptimizations(false).
func WithoutCompilerOptimizations() Option { return WithCompilerOptimizations(false) }

// WithSeed seeds random.choice.
func WithSeed(seed uint64) Option {
	return Option{apply: func(o *core.Options) { o.Seed = seed }}
}

// WithPartitionRows caps rows per partition task.
func WithPartitionRows(n int) Option {
	return Option{apply: func(o *core.Options) { o.PartitionRows = n }}
}

// WithStreamingIngest toggles chunked pipelined ingest for file-backed
// sources (default on). When off, sources are fully materialized and
// record-split before execution starts.
func WithStreamingIngest(on bool) Option {
	return Option{apply: func(o *core.Options) { o.Streaming = on }}
}

// WithChunkSize sets the streamed ingest chunk size in bytes (default
// ~16 MiB). Each chunk becomes one partition task, so smaller chunks
// expose more parallelism at the cost of per-task overhead.
func WithChunkSize(n int) Option {
	return Option{apply: func(o *core.Options) { o.ChunkSize = n }}
}

// WithColumnarExecution toggles the columnar batch data plane (default
// on). When on, CSV sources parse straight into column vectors and the
// normal-case prefix of each stage runs as batch kernels over those
// vectors; rows that reject or raise bounce to the boxed row path, so
// results and exception accounting are identical either way. Turn it
// off to force the row-at-a-time plane (mainly for differential
// testing).
func WithColumnarExecution(on bool) Option {
	return Option{apply: func(o *core.Options) { o.Columnar = on }}
}

// Context owns configuration and is the entry point for pipelines,
// mirroring tuplex.Context() in the paper.
type Context struct {
	opts core.Options
}

// NewContext returns a Context with the given options applied over
// defaults.
func NewContext(opts ...Option) *Context {
	o := core.DefaultOptions()
	for _, opt := range opts {
		if opt.apply != nil {
			opt.apply(&o)
		}
	}
	return &Context{opts: o}
}

// CSVOption configures a CSV source. Like Option, it is an opaque value
// built by the CSV* constructors.
type CSVOption struct {
	apply func(*logical.CSVSource)
}

// CSVHeader declares whether the file's first row is a header (default
// true).
func CSVHeader(has bool) CSVOption {
	return CSVOption{apply: func(s *logical.CSVSource) { s.Header = has }}
}

// CSVDelimiter sets the field delimiter.
func CSVDelimiter(d byte) CSVOption {
	return CSVOption{apply: func(s *logical.CSVSource) { s.Delim = d }}
}

// CSVColumns names the columns (implies no reliance on a header row).
func CSVColumns(names ...string) CSVOption {
	return CSVOption{apply: func(s *logical.CSVSource) { s.Columns = names }}
}

// CSVNullValues sets the cell spellings treated as NULL.
func CSVNullValues(values ...string) CSVOption {
	return CSVOption{apply: func(s *logical.CSVSource) { s.NullValues = values }}
}

// CSVData supplies the content directly instead of reading a path.
func CSVData(data []byte) CSVOption {
	return CSVOption{apply: func(s *logical.CSVSource) { s.Data = data }}
}

// CSV opens a CSV dataset.
func (c *Context) CSV(path string, opts ...CSVOption) *DataSet {
	src := &logical.CSVSource{Path: path, Header: true, Delim: ','}
	for _, opt := range opts {
		if opt.apply != nil {
			opt.apply(src)
		}
	}
	return &DataSet{ctx: c, node: &logical.Node{Op: src}}
}

// TextOption configures a text source. Like Option, it is an opaque
// value built by the Text* constructors.
type TextOption struct {
	apply func(*logical.TextSource)
}

// TextData supplies content directly.
func TextData(data []byte) TextOption {
	return TextOption{apply: func(s *logical.TextSource) { s.Data = data }}
}

// TextColumn names the single text column (default "value").
func TextColumn(name string) TextOption {
	return TextOption{apply: func(s *logical.TextSource) { s.Column = name }}
}

// Text opens newline-delimited text as single-column rows.
func (c *Context) Text(path string, opts ...TextOption) *DataSet {
	src := &logical.TextSource{Path: path}
	for _, opt := range opts {
		if opt.apply != nil {
			opt.apply(src)
		}
	}
	return &DataSet{ctx: c, node: &logical.Node{Op: src}}
}

// maxParallelizeWarnings caps the per-call unsupported-type warnings so
// a large dirty input doesn't flood Result.Warnings.
const maxParallelizeWarnings = 5

// Parallelize wraps in-memory rows. Each row is a slice of Go values
// (nil, bool, int/int64, float64, string, nested []any, map[string]any).
// Values of any other Go type are converted with fmt.Sprint and reported
// in Result.Warnings, naming the offending row and column.
func (c *Context) Parallelize(data [][]any, columns []string) *DataSet {
	var warns []string
	skipped := 0
	// Rows convert straight to the unboxed slot representation over one
	// shared slab: scalar cells never touch the heap, and the engine
	// samples, classifies and executes without a boxed detour.
	ncells := 0
	for _, r := range data {
		ncells += len(r)
	}
	slab := make([]rows.Slot, 0, ncells)
	slotRows := make([]rows.Row, len(data))
	for i, r := range data {
		start := len(slab)
		for j, v := range r {
			s, ok := slotFromAny(v)
			if !ok {
				if len(warns) < maxParallelizeWarnings {
					col := fmt.Sprintf("%d", j)
					if j < len(columns) {
						col = fmt.Sprintf("%q", columns[j])
					}
					warns = append(warns, fmt.Sprintf(
						"parallelize: row %d, column %s: unsupported Go type %T converted with fmt.Sprint", i, col, v))
				} else {
					skipped++
				}
			}
			slab = append(slab, s)
		}
		slotRows[i] = slab[start:len(slab):len(slab)]
	}
	if skipped > 0 {
		warns = append(warns, fmt.Sprintf("parallelize: %d more unsupported-type conversions", skipped))
	}
	src := &logical.ParallelizeSource{SlotRows: slotRows, Names: columns}
	return &DataSet{ctx: c, node: &logical.Node{Op: src}, warns: warns}
}

// slotFromAny converts one Go value to a slot; scalars convert in place,
// everything else goes through the boxed checker (ok=false when the
// value was stringified with fmt.Sprint).
func slotFromAny(v any) (rows.Slot, bool) {
	switch v := v.(type) {
	case nil:
		return rows.Null(), true
	case bool:
		return rows.Bool(v), true
	case int:
		return rows.I64(int64(v)), true
	case int64:
		return rows.I64(v), true
	case float64:
		return rows.F64(v), true
	case string:
		return rows.Str(v), true
	default:
		bv, ok := boxValueChecked(v)
		return rows.FromValue(bv), ok
	}
}

func boxValue(v any) pyvalue.Value {
	bv, _ := boxValueChecked(v)
	return bv
}

// boxValueChecked boxes a Go value; ok is false when v (or any nested
// element) has no Python mapping and was stringified with fmt.Sprint.
func boxValueChecked(v any) (_ pyvalue.Value, ok bool) {
	switch v := v.(type) {
	case nil:
		return pyvalue.None{}, true
	case bool:
		return pyvalue.Bool(v), true
	case int:
		return pyvalue.Int(int64(v)), true
	case int64:
		return pyvalue.Int(v), true
	case float64:
		return pyvalue.Float(v), true
	case string:
		return pyvalue.Str(v), true
	case []any:
		ok = true
		items := make([]pyvalue.Value, len(v))
		for i, it := range v {
			bv, bok := boxValueChecked(it)
			items[i] = bv
			ok = ok && bok
		}
		return &pyvalue.List{Items: items}, ok
	case map[string]any:
		ok = true
		d := pyvalue.NewDict()
		for k, it := range v {
			bv, bok := boxValueChecked(it)
			d.Set(k, bv)
			ok = ok && bok
		}
		return d, ok
	case pyvalue.Value:
		return v, true
	default:
		return pyvalue.Str(fmt.Sprint(v)), false
	}
}

// DataSet is a lazily-built pipeline, mirroring the paper's dataset
// handle. Operators return new DataSets; nothing executes until an
// action (Collect / ToCSV / Aggregate).
type DataSet struct {
	ctx  *Context
	node *logical.Node
	err  error
	// warns carries advisory messages gathered while building the
	// pipeline (e.g. Parallelize type conversions); they surface on
	// Result.Warnings.
	warns []string
}

func (d *DataSet) chain(op logical.Op) *DataSet {
	if d.err != nil {
		return d
	}
	nd := &DataSet{ctx: d.ctx, node: &logical.Node{Op: op, Input: d.node}, warns: d.warns}
	if d.ctx != nil && d.ctx.opts.Validate {
		if err := nd.validateNow(); err != nil {
			return nd.fail(err)
		}
	}
	return nd
}

func (d *DataSet) udf(u UDFDef) (*logical.UDFSpec, error) {
	globals := map[string]pyvalue.Value{}
	for k, v := range u.globals {
		globals[k] = boxValue(v)
	}
	if len(globals) == 0 {
		globals = nil
	}
	return logical.ParseUDF(u.source, globals)
}

func (d *DataSet) fail(err error) *DataSet {
	return &DataSet{ctx: d.ctx, node: d.node, err: err, warns: d.warns}
}

// Map replaces each row with the UDF's result; dict results become named
// columns.
func (d *DataSet) Map(u UDFDef) *DataSet {
	spec, err := d.udf(u)
	if err != nil {
		return d.fail(err)
	}
	return d.chain(&logical.MapOp{UDF: spec})
}

// Filter keeps rows for which the UDF returns a truthy value.
func (d *DataSet) Filter(u UDFDef) *DataSet {
	spec, err := d.udf(u)
	if err != nil {
		return d.fail(err)
	}
	return d.chain(&logical.FilterOp{UDF: spec})
}

// WithColumn adds (or replaces) a column computed from the whole row.
func (d *DataSet) WithColumn(col string, u UDFDef) *DataSet {
	spec, err := d.udf(u)
	if err != nil {
		return d.fail(err)
	}
	return d.chain(&logical.WithColumnOp{Col: col, UDF: spec})
}

// MapColumn rewrites one column; the UDF receives the column value.
func (d *DataSet) MapColumn(col string, u UDFDef) *DataSet {
	spec, err := d.udf(u)
	if err != nil {
		return d.fail(err)
	}
	return d.chain(&logical.MapColumnOp{Col: col, UDF: spec})
}

// RenameColumn renames a column.
func (d *DataSet) RenameColumn(old, new string) *DataSet {
	return d.chain(&logical.RenameOp{Old: old, New: new})
}

// SelectColumns projects to the named columns, in order.
func (d *DataSet) SelectColumns(cols ...string) *DataSet {
	return d.chain(&logical.SelectOp{Cols: cols})
}

// Resolve attaches an exception resolver to the preceding operator; the
// resolver UDF receives the same input the failing UDF received.
func (d *DataSet) Resolve(exc ExcKind, u UDFDef) *DataSet {
	spec, err := d.udf(u)
	if err != nil {
		return d.fail(err)
	}
	return d.chain(&logical.ResolveOp{Exc: pyvalue.ExcKind(exc), UDF: spec})
}

// Ignore drops rows that raised the given exception in the preceding
// operator.
func (d *DataSet) Ignore(exc ExcKind) *DataSet {
	return d.chain(&logical.IgnoreOp{Exc: pyvalue.ExcKind(exc)})
}

// Join inner-joins with other (the build side) on leftKey == rightKey.
func (d *DataSet) Join(other *DataSet, leftKey, rightKey string) *DataSet {
	return d.joinWith(other, leftKey, rightKey, false, "", "")
}

// LeftJoin left-outer-joins with other; unmatched rows pad the build
// side's columns with None.
func (d *DataSet) LeftJoin(other *DataSet, leftKey, rightKey string) *DataSet {
	return d.joinWith(other, leftKey, rightKey, true, "", "")
}

// LeftJoinPrefixed left-joins and prefixes each side's column names
// (mirrors the paper's prefixes=(None, 'Origin') keyword).
func (d *DataSet) LeftJoinPrefixed(other *DataSet, leftKey, rightKey, leftPrefix, rightPrefix string) *DataSet {
	return d.joinWith(other, leftKey, rightKey, true, leftPrefix, rightPrefix)
}

func (d *DataSet) joinWith(other *DataSet, leftKey, rightKey string, left bool, lp, rp string) *DataSet {
	if other.err != nil {
		return d.fail(other.err)
	}
	if len(other.warns) > 0 {
		d = &DataSet{ctx: d.ctx, node: d.node, warns: append(append([]string{}, d.warns...), other.warns...)}
	}
	return d.chain(&logical.JoinOp{
		Build:       other.node,
		LeftKey:     leftKey,
		RightKey:    rightKey,
		Left:        left,
		LeftPrefix:  lp,
		RightPrefix: rp,
	})
}

// Unique deduplicates rows.
func (d *DataSet) Unique() *DataSet {
	return d.chain(&logical.UniqueOp{})
}

// Cache materializes rows at this point (a stage boundary).
func (d *DataSet) Cache() *DataSet {
	return d.chain(&logical.CacheOp{})
}

// Err reports any deferred pipeline-construction error (UDF parse
// failures surface here and from the terminal action).
func (d *DataSet) Err() error { return d.err }

// Row is one boxed result row.
type Row []any

// Result is a completed pipeline run.
type Result struct {
	// Columns are the output column names.
	Columns []string
	// Rows holds collected rows (Collect only).
	Rows []Row
	// CSV holds rendered output (ToCSV only).
	CSV []byte
	// Failed reports rows no path could process.
	Failed []FailedRow
	// Metrics exposes path statistics and timings.
	Metrics *Metrics
	// Trace is the run's observability record: span tree, task timings
	// and — at TraceRows and above — the row-routing ledger. Nil when the
	// run used WithTracing(TraceOff).
	Trace *Trace
	// Warnings carries advisory messages.
	Warnings []string
}

// FailedRow describes an input row no execution path could process.
// Failed rows are reported here rather than raised (§3).
type FailedRow struct {
	// Exc is the Python exception class the row raised.
	Exc ExcKind `json:"exc"`
	// Msg is the exception message.
	Msg string `json:"msg"`
	// Input is the rendered input row.
	Input string `json:"input"`
}

// Collect executes the pipeline and returns all rows.
func (d *DataSet) Collect() (*Result, error) {
	return d.run(core.SinkCollect, "")
}

// Take executes the pipeline and returns at most n rows. It is a
// debugging convenience, not an optimization: the whole pipeline still
// runs over the full input, then the collected rows are truncated.
// Take(-1) (any negative n) returns all rows, exactly like Collect.
func (d *DataSet) Take(n int) (*Result, error) {
	res, err := d.run(core.SinkCollect, "")
	if err != nil {
		return nil, err
	}
	if n >= 0 && len(res.Rows) > n {
		res.Rows = res.Rows[:n]
	}
	return res, nil
}

// ToCSV executes the pipeline and writes CSV to path ("" keeps the bytes
// in the Result only).
func (d *DataSet) ToCSV(path string) (*Result, error) {
	return d.run(core.SinkCSV, path)
}

// Aggregate folds all rows: agg is `lambda acc, row: ...`, comb merges
// two partial accumulators, initial is the starting value. Returns the
// final accumulator.
func (d *DataSet) Aggregate(agg, comb UDFDef, initial any) (any, *Result, error) {
	return d.AggregateContext(context.Background(), agg, comb, initial)
}

func (d *DataSet) run(kind core.SinkKind, path string) (*Result, error) {
	return d.runCtx(context.Background(), kind, path)
}

func (d *DataSet) runCtx(ctx context.Context, kind core.SinkKind, path string) (*Result, error) {
	if d.err != nil {
		return nil, d.err
	}
	cr, err := core.ExecuteContext(ctx, d.node, kind, path, d.ctx.opts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		CSV:      cr.CSV,
		Metrics:  newMetrics(cr.Metrics),
		Trace:    newTrace(cr.Trace),
		Warnings: append(append([]string{}, d.warns...), cr.Warnings...),
	}
	if len(res.Warnings) == 0 {
		res.Warnings = nil
	}
	for _, f := range cr.Failed {
		res.Failed = append(res.Failed, FailedRow{Exc: ExcKind(f.Exc), Msg: f.Msg, Input: f.Input})
	}
	if cr.Schema != nil {
		res.Columns = cr.Schema.Names()
	}
	switch {
	case cr.SlotRows != nil:
		// Collect sinks return unboxed slot rows; box them here through
		// the slab boxer (bulk eface construction instead of one
		// interface allocation per cell).
		var b rows.Boxer
		ncells := 0
		for _, r := range cr.SlotRows {
			ncells += len(r)
		}
		b.Grow(1, ncells)
		res.Rows = make([]Row, len(cr.SlotRows))
		for i, r := range cr.SlotRows {
			res.Rows[i] = Row(b.BoxRow(r))
		}
	case cr.Rows != nil:
		res.Rows = make([]Row, len(cr.Rows))
		for i, r := range cr.Rows {
			row := make(Row, len(r))
			for j, v := range r {
				row[j] = unboxValue(v)
			}
			res.Rows[i] = row
		}
	}
	return res, nil
}

func unboxValue(v pyvalue.Value) any {
	switch v := v.(type) {
	case pyvalue.None:
		return nil
	case pyvalue.Bool:
		return bool(v)
	case pyvalue.Int:
		return int64(v)
	case pyvalue.Float:
		return float64(v)
	case pyvalue.Str:
		return string(v)
	case *pyvalue.List:
		out := make([]any, len(v.Items))
		for i, it := range v.Items {
			out[i] = unboxValue(it)
		}
		return out
	case *pyvalue.Tuple:
		out := make([]any, len(v.Items))
		for i, it := range v.Items {
			out[i] = unboxValue(it)
		}
		return out
	case *pyvalue.Dict:
		out := map[string]any{}
		for _, k := range v.Keys() {
			val, _ := v.Get(k)
			out[k] = unboxValue(val)
		}
		return out
	default:
		return pyvalue.ToStr(v)
	}
}
