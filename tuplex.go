// Package tuplex is a Go implementation of Tuplex, the data analytics
// framework that compiles natural Python UDFs into specialized native
// code with dual-mode execution (Spiegelberg et al., SIGMOD 2021).
//
// Pipelines mirror the paper's LINQ-style API:
//
//	c := tuplex.NewContext()
//	carriers := c.CSV("carriers.csv", tuplex.CSVHeader(true))
//	res, err := c.CSV("flights.csv", tuplex.CSVHeader(true)).
//		Join(carriers, "code", "code").
//		MapColumn("distance", tuplex.UDF("lambda m: m * 1.609")).
//		Resolve(tuplex.TypeError, tuplex.UDF("lambda m: 0.0")).
//		ToCSV("output.csv")
//
// UDFs are Python source strings (lambdas or single defs) with no type
// annotations. The engine samples the input to establish the normal
// case, compiles a specialized fast path plus a row classifier, and
// retries non-conforming rows on the compiled general-case path, the
// interpreter fallback and user resolvers — pipelines complete even on
// dirty data, with unresolved rows reported instead of raised.
package tuplex

import (
	"fmt"

	"github.com/gotuplex/tuplex/internal/codegen"
	"github.com/gotuplex/tuplex/internal/core"
	"github.com/gotuplex/tuplex/internal/logical"
	"github.com/gotuplex/tuplex/internal/metrics"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/sample"
)

// ExcKind identifies a Python exception class for Resolve/Ignore.
type ExcKind = pyvalue.ExcKind

// Exception kinds usable with Resolve and Ignore.
const (
	TypeError         = pyvalue.ExcTypeError
	ValueError        = pyvalue.ExcValueError
	ZeroDivisionError = pyvalue.ExcZeroDivisionError
	IndexError        = pyvalue.ExcIndexError
	KeyError          = pyvalue.ExcKeyError
	AttributeError    = pyvalue.ExcAttributeError
)

// UDFDef is a Python UDF definition: source plus optional globals.
type UDFDef struct {
	source  string
	globals map[string]any
}

// UDF wraps Python source (a lambda or a def) as a pipeline UDF.
func UDF(source string) UDFDef { return UDFDef{source: source} }

// WithGlobal binds a module-level constant visible to the UDF (e.g. an
// alphabet string used with random.choice).
func (u UDFDef) WithGlobal(name string, value any) UDFDef {
	g := map[string]any{}
	for k, v := range u.globals {
		g[k] = v
	}
	g[name] = value
	return UDFDef{source: u.source, globals: g}
}

// Option configures a Context.
type Option func(*core.Options)

// WithExecutors sets the executor thread count.
func WithExecutors(n int) Option {
	return func(o *core.Options) { o.Executors = n }
}

// WithSampleSize sets how many input rows the sampler inspects.
func WithSampleSize(n int) Option {
	return func(o *core.Options) { o.Sample.Size = n }
}

// WithNullThreshold sets the δ threshold of §4.2's option-type policy.
func WithNullThreshold(delta float64) Option {
	return func(o *core.Options) { o.Sample.Delta = delta }
}

// WithoutNullOptimization disables normal-case null specialization
// (§6.3.3 ablation).
func WithoutNullOptimization() Option {
	return func(o *core.Options) { o.Sample.DisableNullOpt = true }
}

// WithoutLogicalOptimizations disables filter/projection pushdown and
// join reordering.
func WithoutLogicalOptimizations() Option {
	return func(o *core.Options) { o.Logical = logical.Options{} }
}

// WithLogicalOptimizations sets the planner rewrites individually.
func WithLogicalOptimizations(projection, filter, joinReorder bool) Option {
	return func(o *core.Options) {
		o.Logical = logical.Options{
			ProjectionPushdown: projection,
			FilterPushdown:     filter,
			JoinReorder:        joinReorder,
		}
	}
}

// WithoutStageFusion makes every UDF operator an optimization barrier
// (§6.3.2 ablation).
func WithoutStageFusion() Option {
	return func(o *core.Options) { o.Fusion = false }
}

// WithoutCompilerOptimizations generates generic (boxed-dispatch) code
// on the fast path — the "LLVM optimizers disabled" arm of Fig. 11.
func WithoutCompilerOptimizations() Option {
	return func(o *core.Options) { o.Codegen = codegen.Options{Specialize: false} }
}

// WithSeed seeds random.choice.
func WithSeed(seed uint64) Option {
	return func(o *core.Options) { o.Seed = seed }
}

// WithPartitionRows caps rows per partition task.
func WithPartitionRows(n int) Option {
	return func(o *core.Options) { o.PartitionRows = n }
}

// WithStreamingIngest toggles chunked pipelined ingest for file-backed
// sources (default on). When off, sources are fully materialized and
// record-split before execution starts.
func WithStreamingIngest(on bool) Option {
	return func(o *core.Options) { o.Streaming = on }
}

// WithChunkSize sets the streamed ingest chunk size in bytes (default
// ~16 MiB). Each chunk becomes one partition task, so smaller chunks
// expose more parallelism at the cost of per-task overhead.
func WithChunkSize(n int) Option {
	return func(o *core.Options) { o.ChunkSize = n }
}

// Context owns configuration and is the entry point for pipelines,
// mirroring tuplex.Context() in the paper.
type Context struct {
	opts core.Options
}

// NewContext returns a Context with the given options applied over
// defaults.
func NewContext(opts ...Option) *Context {
	o := core.DefaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	return &Context{opts: o}
}

// CSVOption configures a CSV source.
type CSVOption func(*logical.CSVSource)

// CSVHeader declares whether the file's first row is a header (default
// true).
func CSVHeader(has bool) CSVOption {
	return func(s *logical.CSVSource) { s.Header = has }
}

// CSVDelimiter sets the field delimiter.
func CSVDelimiter(d byte) CSVOption {
	return func(s *logical.CSVSource) { s.Delim = d }
}

// CSVColumns names the columns (implies no reliance on a header row).
func CSVColumns(names ...string) CSVOption {
	return func(s *logical.CSVSource) { s.Columns = names }
}

// CSVNullValues sets the cell spellings treated as NULL.
func CSVNullValues(values ...string) CSVOption {
	return func(s *logical.CSVSource) { s.NullValues = values }
}

// CSVData supplies the content directly instead of reading a path.
func CSVData(data []byte) CSVOption {
	return func(s *logical.CSVSource) { s.Data = data }
}

// CSV opens a CSV dataset.
func (c *Context) CSV(path string, opts ...CSVOption) *DataSet {
	src := &logical.CSVSource{Path: path, Header: true, Delim: ','}
	for _, fn := range opts {
		fn(src)
	}
	return &DataSet{ctx: c, node: &logical.Node{Op: src}}
}

// TextOption configures a text source.
type TextOption func(*logical.TextSource)

// TextData supplies content directly.
func TextData(data []byte) TextOption {
	return func(s *logical.TextSource) { s.Data = data }
}

// TextColumn names the single text column (default "value").
func TextColumn(name string) TextOption {
	return func(s *logical.TextSource) { s.Column = name }
}

// Text opens newline-delimited text as single-column rows.
func (c *Context) Text(path string, opts ...TextOption) *DataSet {
	src := &logical.TextSource{Path: path}
	for _, fn := range opts {
		fn(src)
	}
	return &DataSet{ctx: c, node: &logical.Node{Op: src}}
}

// Parallelize wraps in-memory rows. Each row is a slice of Go values
// (nil, bool, int/int64, float64, string, nested []any, map[string]any).
func (c *Context) Parallelize(data [][]any, columns []string) *DataSet {
	boxed := make([][]pyvalue.Value, len(data))
	for i, r := range data {
		row := make([]pyvalue.Value, len(r))
		for j, v := range r {
			row[j] = boxValue(v)
		}
		boxed[i] = row
	}
	src := &logical.ParallelizeSource{Rows: boxed, Names: columns}
	return &DataSet{ctx: c, node: &logical.Node{Op: src}}
}

func boxValue(v any) pyvalue.Value {
	switch v := v.(type) {
	case nil:
		return pyvalue.None{}
	case bool:
		return pyvalue.Bool(v)
	case int:
		return pyvalue.Int(int64(v))
	case int64:
		return pyvalue.Int(v)
	case float64:
		return pyvalue.Float(v)
	case string:
		return pyvalue.Str(v)
	case []any:
		items := make([]pyvalue.Value, len(v))
		for i, it := range v {
			items[i] = boxValue(it)
		}
		return &pyvalue.List{Items: items}
	case map[string]any:
		d := pyvalue.NewDict()
		for k, it := range v {
			d.Set(k, boxValue(it))
		}
		return d
	case pyvalue.Value:
		return v
	default:
		return pyvalue.Str(fmt.Sprint(v))
	}
}

// DataSet is a lazily-built pipeline, mirroring the paper's dataset
// handle. Operators return new DataSets; nothing executes until an
// action (Collect / ToCSV / Aggregate).
type DataSet struct {
	ctx  *Context
	node *logical.Node
	err  error
}

func (d *DataSet) chain(op logical.Op) *DataSet {
	if d.err != nil {
		return d
	}
	return &DataSet{ctx: d.ctx, node: &logical.Node{Op: op, Input: d.node}}
}

func (d *DataSet) udf(u UDFDef) (*logical.UDFSpec, error) {
	globals := map[string]pyvalue.Value{}
	for k, v := range u.globals {
		globals[k] = boxValue(v)
	}
	if len(globals) == 0 {
		globals = nil
	}
	return logical.ParseUDF(u.source, globals)
}

func (d *DataSet) fail(err error) *DataSet {
	return &DataSet{ctx: d.ctx, node: d.node, err: err}
}

// Map replaces each row with the UDF's result; dict results become named
// columns.
func (d *DataSet) Map(u UDFDef) *DataSet {
	spec, err := d.udf(u)
	if err != nil {
		return d.fail(err)
	}
	return d.chain(&logical.MapOp{UDF: spec})
}

// Filter keeps rows for which the UDF returns a truthy value.
func (d *DataSet) Filter(u UDFDef) *DataSet {
	spec, err := d.udf(u)
	if err != nil {
		return d.fail(err)
	}
	return d.chain(&logical.FilterOp{UDF: spec})
}

// WithColumn adds (or replaces) a column computed from the whole row.
func (d *DataSet) WithColumn(col string, u UDFDef) *DataSet {
	spec, err := d.udf(u)
	if err != nil {
		return d.fail(err)
	}
	return d.chain(&logical.WithColumnOp{Col: col, UDF: spec})
}

// MapColumn rewrites one column; the UDF receives the column value.
func (d *DataSet) MapColumn(col string, u UDFDef) *DataSet {
	spec, err := d.udf(u)
	if err != nil {
		return d.fail(err)
	}
	return d.chain(&logical.MapColumnOp{Col: col, UDF: spec})
}

// RenameColumn renames a column.
func (d *DataSet) RenameColumn(old, new string) *DataSet {
	return d.chain(&logical.RenameOp{Old: old, New: new})
}

// SelectColumns projects to the named columns, in order.
func (d *DataSet) SelectColumns(cols ...string) *DataSet {
	return d.chain(&logical.SelectOp{Cols: cols})
}

// Resolve attaches an exception resolver to the preceding operator; the
// resolver UDF receives the same input the failing UDF received.
func (d *DataSet) Resolve(exc ExcKind, u UDFDef) *DataSet {
	spec, err := d.udf(u)
	if err != nil {
		return d.fail(err)
	}
	return d.chain(&logical.ResolveOp{Exc: exc, UDF: spec})
}

// Ignore drops rows that raised the given exception in the preceding
// operator.
func (d *DataSet) Ignore(exc ExcKind) *DataSet {
	return d.chain(&logical.IgnoreOp{Exc: exc})
}

// Join inner-joins with other (the build side) on leftKey == rightKey.
func (d *DataSet) Join(other *DataSet, leftKey, rightKey string) *DataSet {
	return d.joinWith(other, leftKey, rightKey, false, "", "")
}

// LeftJoin left-outer-joins with other; unmatched rows pad the build
// side's columns with None.
func (d *DataSet) LeftJoin(other *DataSet, leftKey, rightKey string) *DataSet {
	return d.joinWith(other, leftKey, rightKey, true, "", "")
}

// LeftJoinPrefixed left-joins and prefixes each side's column names
// (mirrors the paper's prefixes=(None, 'Origin') keyword).
func (d *DataSet) LeftJoinPrefixed(other *DataSet, leftKey, rightKey, leftPrefix, rightPrefix string) *DataSet {
	return d.joinWith(other, leftKey, rightKey, true, leftPrefix, rightPrefix)
}

func (d *DataSet) joinWith(other *DataSet, leftKey, rightKey string, left bool, lp, rp string) *DataSet {
	if other.err != nil {
		return d.fail(other.err)
	}
	return d.chain(&logical.JoinOp{
		Build:       other.node,
		LeftKey:     leftKey,
		RightKey:    rightKey,
		Left:        left,
		LeftPrefix:  lp,
		RightPrefix: rp,
	})
}

// Unique deduplicates rows.
func (d *DataSet) Unique() *DataSet {
	return d.chain(&logical.UniqueOp{})
}

// Cache materializes rows at this point (a stage boundary).
func (d *DataSet) Cache() *DataSet {
	return d.chain(&logical.CacheOp{})
}

// Err reports any deferred pipeline-construction error (UDF parse
// failures surface here and from the terminal action).
func (d *DataSet) Err() error { return d.err }

// Row is one boxed result row.
type Row []any

// Result is a completed pipeline run.
type Result struct {
	// Columns are the output column names.
	Columns []string
	// Rows holds collected rows (Collect only).
	Rows []Row
	// CSV holds rendered output (ToCSV only).
	CSV []byte
	// Failed reports rows no path could process.
	Failed []FailedRow
	// Metrics exposes path statistics and timings.
	Metrics *metrics.Metrics
	// Warnings carries advisory messages.
	Warnings []string
}

// FailedRow re-exports the engine's failed-row report.
type FailedRow = core.FailedRow

// Collect executes the pipeline and returns all rows.
func (d *DataSet) Collect() (*Result, error) {
	return d.run(core.SinkCollect, "")
}

// Take executes the pipeline and returns at most n rows (a debugging
// convenience; the whole pipeline still runs).
func (d *DataSet) Take(n int) (*Result, error) {
	res, err := d.run(core.SinkCollect, "")
	if err != nil {
		return nil, err
	}
	if n >= 0 && len(res.Rows) > n {
		res.Rows = res.Rows[:n]
	}
	return res, nil
}

// ToCSV executes the pipeline and writes CSV to path ("" keeps the bytes
// in the Result only).
func (d *DataSet) ToCSV(path string) (*Result, error) {
	return d.run(core.SinkCSV, path)
}

// Aggregate folds all rows: agg is `lambda acc, row: ...`, comb merges
// two partial accumulators, initial is the starting value. Returns the
// final accumulator.
func (d *DataSet) Aggregate(agg, comb UDFDef, initial any) (any, *Result, error) {
	if d.err != nil {
		return nil, nil, d.err
	}
	aggSpec, err := d.udf(agg)
	if err != nil {
		return nil, nil, err
	}
	combSpec, err := d.udf(comb)
	if err != nil {
		return nil, nil, err
	}
	ds := d.chain(&logical.AggregateOp{Agg: aggSpec, Comb: combSpec, Initial: boxValue(initial)})
	res, err := ds.run(core.SinkCollect, "")
	if err != nil {
		return nil, nil, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return nil, res, fmt.Errorf("tuplex: aggregate produced unexpected shape")
	}
	return res.Rows[0][0], res, nil
}

func (d *DataSet) run(kind core.SinkKind, path string) (*Result, error) {
	if d.err != nil {
		return nil, d.err
	}
	cr, err := core.Execute(d.node, kind, path, d.ctx.opts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		CSV:      cr.CSV,
		Failed:   cr.Failed,
		Metrics:  cr.Metrics,
		Warnings: cr.Warnings,
	}
	if cr.Schema != nil {
		res.Columns = cr.Schema.Names()
	}
	if cr.Rows != nil {
		res.Rows = make([]Row, len(cr.Rows))
		for i, r := range cr.Rows {
			row := make(Row, len(r))
			for j, v := range r {
				row[j] = unboxValue(v)
			}
			res.Rows[i] = row
		}
	}
	return res, nil
}

func unboxValue(v pyvalue.Value) any {
	switch v := v.(type) {
	case pyvalue.None:
		return nil
	case pyvalue.Bool:
		return bool(v)
	case pyvalue.Int:
		return int64(v)
	case pyvalue.Float:
		return float64(v)
	case pyvalue.Str:
		return string(v)
	case *pyvalue.List:
		out := make([]any, len(v.Items))
		for i, it := range v.Items {
			out[i] = unboxValue(it)
		}
		return out
	case *pyvalue.Tuple:
		out := make([]any, len(v.Items))
		for i, it := range v.Items {
			out[i] = unboxValue(it)
		}
		return out
	case *pyvalue.Dict:
		out := map[string]any{}
		for _, k := range v.Keys() {
			val, _ := v.Get(k)
			out[k] = unboxValue(val)
		}
		return out
	default:
		return pyvalue.ToStr(v)
	}
}

// SampleConfig re-exports the sampler configuration for advanced tuning.
type SampleConfig = sample.Config
