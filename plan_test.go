package tuplex

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updatePlanGolden = flag.Bool("update-plan", false, "rewrite plan golden files")

// fullDataSet chains every DataSet operator (WithGlobal included) on a
// context with non-default options, so the plan codec is exercised over
// the whole API surface.
func fullDataSet() *DataSet {
	c := NewContext(
		WithExecutors(3),
		WithSampleSize(32),
		WithSeed(9),
		WithStreamingIngest(false),
		WithPartitionRows(512),
	)
	build := c.Parallelize([][]any{{"10001", "NY"}, {"10002", "NY"}}, []string{"zip", "state"})
	return c.CSV("", CSVData([]byte("zip,price,beds\n10001,100,2\n10002,250,3\nbad,x,1\n")), CSVHeader(true)).
		WithColumn("price2", UDF("lambda x: int(x['price']) * mult").WithGlobal("mult", 2)).
		Resolve(ValueError, UDF("lambda x: 0")).
		Ignore(TypeError).
		Filter(UDF("lambda x: int(x['beds']) < 10")).
		MapColumn("zip", UDF("lambda z: z.strip()")).
		RenameColumn("beds", "bedrooms").
		LeftJoinPrefixed(build, "zip", "zip", "", "r_").
		SelectColumns("zip", "price2", "r_state").
		Unique().
		Cache()
}

func TestPlanRoundTripAndGolden(t *testing.T) {
	d := fullDataSet()
	pl, err := d.Plan()
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	b1, err := json.Marshal(pl)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var pl2 Plan
	if err := json.Unmarshal(b1, &pl2); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	b2, err := json.Marshal(&pl2)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", b1, b2)
	}
	if !strings.Contains(string(b1), `"v":1`) {
		t.Fatalf("plan is not versioned: %s", b1)
	}

	golden := filepath.Join("testdata", "plan_full.json")
	pretty := pl.String()
	if *updatePlanGolden {
		if err := os.WriteFile(golden, []byte(pretty), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden (run with -update-plan to regenerate): %v", err)
	}
	if pretty != string(want) {
		t.Fatalf("plan drifted from golden %s:\n%s", golden, pretty)
	}
	// The golden file itself must parse and re-encode identically.
	back, err := ParsePlan(want)
	if err != nil {
		t.Fatalf("parsing golden: %v", err)
	}
	if back.String() != string(want) {
		t.Fatalf("golden did not round-trip")
	}
}

func TestParsePlanRejections(t *testing.T) {
	if _, err := ParsePlan([]byte(`{"v":2,"source":{"kind":"csv","path":"x"}}`)); err == nil ||
		!strings.Contains(err.Error(), "unsupported spec version 2") {
		t.Fatalf("want version error, got %v", err)
	}
	if _, err := ParsePlan([]byte(`{"v":1,"source":{"kind":"csv","path":"x"},"surprise":1}`)); err == nil {
		t.Fatalf("unknown fields must be rejected")
	}
	pl, err := ParsePlan([]byte(`{"v":1,"source":{"kind":"csv","path":"x"},"ops":[{"kind":"explode"}]}`))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := pl.Validate(); err == nil ||
		!strings.Contains(err.Error(), `unknown op kind "explode"`) ||
		!strings.Contains(err.Error(), "known kinds:") {
		t.Fatalf("want actionable op-kind error, got %v", err)
	}
}

// TestPlanRunMatchesDataSet checks a plan executes to exactly what the
// DataSet it came from produces, and that Plan.DataSet round-trips back
// to a runnable pipeline.
func TestPlanRunMatchesDataSet(t *testing.T) {
	d := fullDataSet()
	direct, err := d.Collect()
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	pl, err := d.Plan()
	if err != nil {
		t.Fatal(err)
	}
	viaPlan, err := pl.Run(context.Background())
	if err != nil {
		t.Fatalf("plan run: %v", err)
	}
	if !reflect.DeepEqual(direct.Rows, viaPlan.Rows) {
		t.Fatalf("plan run diverged:\n%v\nvs\n%v", direct.Rows, viaPlan.Rows)
	}
	ds2, err := pl.DataSet()
	if err != nil {
		t.Fatal(err)
	}
	viaDS, err := ds2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Rows, viaDS.Rows) {
		t.Fatalf("rebuilt dataset diverged:\n%v\nvs\n%v", direct.Rows, viaDS.Rows)
	}
}

func TestPlanSinkSetters(t *testing.T) {
	c := NewContext(WithExecutors(1))
	d := c.Parallelize([][]any{{int64(1)}, {int64(2)}, {int64(3)}}, []string{"a"})
	pl, err := d.Plan()
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.WithTakeSink(1).Run(context.Background())
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("take sink: %v / %v", res, err)
	}
	res, err = pl.WithCSVSink("").Run(context.Background())
	if err != nil || len(res.CSV) == 0 {
		t.Fatalf("csv sink: %v / %v", res, err)
	}
	res, err = pl.WithAggregateSink(
		UDF("lambda acc, row: acc + row"), UDF("lambda a, b: a + b"), int64(0)).
		Run(context.Background())
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != int64(6) {
		t.Fatalf("aggregate sink: %v / %v", res, err)
	}
	// Setters are copy-on-write: the original plan still collects.
	res, err = pl.Run(context.Background())
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("original plan mutated: %v / %v", res, err)
	}
	if fp1, _ := pl.Fingerprint(); fp1 == "" {
		t.Fatalf("empty fingerprint")
	} else if fp2, _ := pl.WithTakeSink(1).Fingerprint(); fp1 == fp2 {
		t.Fatalf("sink change must change the fingerprint")
	}
}
