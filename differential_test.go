package tuplex_test

import (
	"fmt"
	"strings"
	"testing"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/blackbox"
	"github.com/gotuplex/tuplex/internal/pyre"
	"github.com/gotuplex/tuplex/internal/pyvalue"
)

// TestDifferentialTuplexVsInterpreter is the repo's strongest dual-mode
// invariant check (§4.1): for UDFs drawn from a grammar and data with
// injected dirt, the compiled dual-mode engine must produce exactly the
// rows the fully-interpreted black-box engine produces — same values,
// same surviving rows — with failures allowed only where both sides fail.
func TestDifferentialTuplexVsInterpreter(t *testing.T) {
	rng := pyre.NewPRNG(0xd1ff)

	intExprs := []string{
		"x['i'] + 1", "x['i'] * 3 - x['j']", "x['i'] // (x['j'] + 1)",
		"x['i'] % 7", "abs(x['i'] - x['j'])", "min(x['i'], x['j'])",
		"max(x['i'], 5)", "x['i'] ** 2", "len(x['s']) + x['i']",
	}
	floatExprs := []string{
		"x['i'] / (x['j'] + 1)", "x['f'] * 1.609", "x['f'] + x['i']",
		"x['f'] ** 2", "x['f'] - 0.5",
	}
	strExprs := []string{
		"x['s'].upper()", "x['s'][1:]", "x['s'].replace('a', 'b')",
		"x['s'] + '!'", "x['s'].strip()", "x['s'][0] if x['s'] else ''",
		"str(x['i']) + x['s']", "x['s'].split('a')[0]",
		"'%04d' % x['i']", "x['s'].lower().capitalize()",
	}
	boolExprs := []string{
		"x['i'] > x['j']", "0 < x['i'] <= 50", "'a' in x['s']",
		"x['s'].startswith('v')", "x['i'] % 2 == 0 and x['f'] > 1.0",
		"not x['s']", "x['i'] == x['j'] or len(x['s']) > 3",
	}

	mkCSV := func(rows int) string {
		var sb strings.Builder
		sb.WriteString("i,j,s,f\n")
		for n := range rows {
			s := fmt.Sprintf("v%da", n%17)
			if rng.Intn(20) == 0 {
				s = "" // empty strings exercise IndexError paths
			}
			i := rng.Intn(100)
			j := rng.Intn(10) // occasionally 0: division exceptions
			if rng.Intn(25) == 0 {
				// dirty cell in a numeric column
				fmt.Fprintf(&sb, "oops,%d,%s,%d.5\n", j, s, i)
				continue
			}
			fmt.Fprintf(&sb, "%d,%d,%s,%d.5\n", i, j, s, i)
		}
		return sb.String()
	}

	pick := func(list []string) string { return list[rng.Intn(len(list))] }

	for trial := range 25 {
		csv := mkCSV(120)
		with := "lambda x: " + pick(intExprs)
		with2 := "lambda x: " + pick(append(append([]string{}, floatExprs...), strExprs...))
		filter := "lambda x: " + pick(boolExprs)

		// Tuplex dual-mode. Logical rewrites are disabled: filter
		// pushdown may legally drop a row before the UDF that would have
		// raised on it (standard database semantics), which changes
		// which rows fail — this test checks path equivalence, not plan
		// equivalence.
		c := tuplex.NewContext(tuplex.WithSampleSize(15), tuplex.WithoutLogicalOptimizations())
		res, err := c.CSV("", tuplex.CSVData([]byte(csv))).
			WithColumn("u", tuplex.UDF(with)).
			WithColumn("w", tuplex.UDF(with2)).
			Filter(tuplex.UDF(filter)).
			Collect()
		if err != nil {
			t.Fatalf("trial %d (%s | %s | %s): %v", trial, with, with2, filter, err)
		}

		// Fully interpreted oracle.
		e := blackbox.New(blackbox.Config{Mode: blackbox.ModePython})
		f, err := e.CSV([]byte(csv), true, ',', nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		f, err = e.WithColumnUDF(f, "u", with, nil)
		if err == nil {
			f, err = e.WithColumnUDF(f, "w", with2, nil)
		}
		if err == nil {
			f, err = e.FilterUDF(f, filter, nil)
		}
		if err != nil {
			// The oracle raises on the first bad row; Tuplex must have
			// reported failures instead of producing more rows than the
			// clean subset. Skip exact comparison for this trial.
			if len(res.Failed) == 0 {
				t.Fatalf("trial %d: oracle raised (%v) but tuplex reported no failures", trial, err)
			}
			continue
		}

		// Both engines processed every row: outputs must match exactly,
		// except rows tuplex reported as failed (the oracle produced
		// them only because blackbox has no failure concept for
		// mid-pipeline errors — it would have errored; err==nil means no
		// row failed anywhere).
		if len(res.Failed) > 0 {
			t.Fatalf("trial %d: tuplex failed %d rows but oracle succeeded: %v",
				trial, len(res.Failed), res.Failed[0])
		}
		if len(res.Rows) != len(f.Rows) {
			t.Fatalf("trial %d (%s | %s | %s): tuplex %d rows, oracle %d",
				trial, with, with2, filter, len(res.Rows), len(f.Rows))
		}
		for i := range res.Rows {
			got := fmt.Sprint(res.Rows[i])
			want := fmt.Sprint(unboxOracleRow(f.Rows[i]))
			if got != want {
				t.Fatalf("trial %d row %d:\n tuplex %s\n oracle %s\n udfs: %s | %s | %s",
					trial, i, got, want, with, with2, filter)
			}
		}
	}
}

func unboxOracleRow(r []pyvalue.Value) []any {
	out := make([]any, len(r))
	for i, v := range r {
		switch v := v.(type) {
		case pyvalue.None:
			out[i] = nil
		case pyvalue.Bool:
			out[i] = bool(v)
		case pyvalue.Int:
			out[i] = int64(v)
		case pyvalue.Float:
			out[i] = float64(v)
		case pyvalue.Str:
			out[i] = string(v)
		default:
			out[i] = pyvalue.Repr(v)
		}
	}
	return out
}

// TestOptimizedVsUnoptimizedDifferential pins the soundness contract of
// the dataflow-driven compiler optimizations: with
// WithCompilerOptimizations toggled, every pipeline must produce
// byte-identical outputs and identical failed/ignored accounting. The
// UDFs are chosen to trip each mechanism — sample-derived dead
// branches, constant conditions, constant-column folding, and division
// by a column that is only *mostly* non-zero (so a seeded non-zero
// range must be guarded, not trusted).
func TestOptimizedVsUnoptimizedDifferential(t *testing.T) {
	var csv strings.Builder
	csv.WriteString("i,j,flag,tag\n")
	rng := pyre.NewPRNG(0xabcdef)
	for n := range 400 {
		j := rng.Intn(9) // 0..8, zeros appear
		if n < 250 {
			j = 1 + rng.Intn(8) // the sampled prefix sees no zero
		}
		fmt.Fprintf(&csv, "%d,%d,%d,const\n", rng.Intn(100), j, rng.Intn(10))
	}
	data := []byte(csv.String())

	type pipe struct {
		name  string
		build func(c *tuplex.Context) *tuplex.DataSet
	}
	pipes := []pipe{
		{"dead-branch", func(c *tuplex.Context) *tuplex.DataSet {
			// flag is sampled in [0,9]: the then-arm is dead under the
			// seeded interval and prunable (with a range guard).
			return c.CSV("", tuplex.CSVData(data)).
				WithColumn("v", tuplex.UDF("lambda x: x['i'] * 1000 if x['flag'] > 100 else x['i'] + 1"))
		}},
		{"constant-condition", func(c *tuplex.Context) *tuplex.DataSet {
			// tag is constant across the sample: the comparison folds.
			return c.CSV("", tuplex.CSVData(data)).
				WithColumn("v", tuplex.UDF("lambda x: 1 if x['tag'] == 'const' else 0"))
		}},
		{"div-possibly-zero", func(c *tuplex.Context) *tuplex.DataSet {
			// The sampled prefix sees only non-zero j, so the optimizer
			// elides the zero check under a guard; later zero rows must
			// bounce to the general path and then hit the resolver.
			return c.CSV("", tuplex.CSVData(data)).
				WithColumn("v", tuplex.UDF("lambda x: x['i'] // x['j']")).
				Resolve(tuplex.ZeroDivisionError, tuplex.UDF("lambda x: -1"))
		}},
		{"div-ignored", func(c *tuplex.Context) *tuplex.DataSet {
			return c.CSV("", tuplex.CSVData(data)).
				WithColumn("v", tuplex.UDF("lambda x: x['i'] % x['j']")).
				Ignore(tuplex.ZeroDivisionError)
		}},
		{"always-raises-branch", func(c *tuplex.Context) *tuplex.DataSet {
			return c.CSV("", tuplex.CSVData(data)).
				WithColumn("v", tuplex.UDF("lambda x: x['i'] // 0 if x['flag'] > 100 else x['i']"))
		}},
	}

	for _, p := range pipes {
		run := func(opt bool) *tuplex.Result {
			c := tuplex.NewContext(tuplex.WithCompilerOptimizations(opt), tuplex.WithSampleSize(100))
			res, err := p.build(c).Collect()
			if err != nil {
				t.Fatalf("%s (opt=%v): %v", p.name, opt, err)
			}
			return res
		}
		on, off := run(true), run(false)
		if len(on.Rows) != len(off.Rows) {
			t.Fatalf("%s: optimized %d rows, unoptimized %d", p.name, len(on.Rows), len(off.Rows))
		}
		for i := range on.Rows {
			if fmt.Sprint(on.Rows[i]) != fmt.Sprint(off.Rows[i]) {
				t.Fatalf("%s row %d: optimized %v, unoptimized %v", p.name, i, on.Rows[i], off.Rows[i])
			}
		}
		cOn, cOff := on.Metrics.Rows, off.Metrics.Rows
		if cOn.Failed != cOff.Failed || cOn.Ignored != cOff.Ignored || cOn.Output != cOff.Output {
			t.Fatalf("%s: accounting differs: opt failed=%d ignored=%d output=%d, unopt failed=%d ignored=%d output=%d",
				p.name, cOn.Failed, cOn.Ignored, cOn.Output, cOff.Failed, cOff.Ignored, cOff.Output)
		}
		if len(on.Failed) != len(off.Failed) {
			t.Fatalf("%s: failed rows differ: %d vs %d", p.name, len(on.Failed), len(off.Failed))
		}
	}
}
