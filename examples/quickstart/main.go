// Quickstart: the paper's introductory example (§1/§3) — join flight
// records with a carrier table and convert a distance column with a
// Python UDF, including a resolver for rows where the distance is
// missing.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tuplex "github.com/gotuplex/tuplex"
)

const flights = `code,flight,distance
AA,100,1250
DL,21,802
AA,455,
UA,9,2441
ZZ,1,100
DL,7,bad-data
`

const carriers = `code,name
AA,American Airlines
DL,Delta Air Lines
UA,United Airlines
`

func main() {
	c := tuplex.NewContext(tuplex.WithExecutors(2), tuplex.WithSampleSize(2))

	carrierDS := c.CSV("", tuplex.CSVData([]byte(carriers)))
	res, err := c.CSV("", tuplex.CSVData([]byte(flights))).
		Join(carrierDS, "code", "code").
		// Natural Python, no type annotations: kilometers to miles.
		MapColumn("distance", tuplex.UDF("lambda m: m * 1.609")).
		// The empty-distance row raises TypeError (None * float) on the
		// exception path; the resolver recovers it (§3).
		Resolve(tuplex.TypeError, tuplex.UDF("lambda m: 0.0")).
		Collect()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("columns:", res.Columns)
	for _, row := range res.Rows {
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Println("metrics:", res.Metrics)
	// The 'bad-data' row cannot be resolved ('bad-data' * 1.609 is a
	// TypeError, and the resolver returns 0.0 — so it actually resolves;
	// rows that fail every path are reported instead of crashing:
	for _, f := range res.Failed {
		fmt.Printf("failed row [%s]: %s\n", f.Exc, f.Input)
	}
}
