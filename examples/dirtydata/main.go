// Dirty data: the §7 experience — pipelines never fail on malformed
// rows. This example runs the 311 zip-code cleaning query over messy
// service requests (ZIP+4 spellings, placeholders, float-ified zips,
// NaNs) and shows the dual-mode statistics: which rows ran on the
// compiled fast path, which were recovered on the slower paths, and
// which were reported as failed.
//
// Run with:
//
//	go run ./examples/dirtydata [-rows N]
package main

import (
	"flag"
	"fmt"
	"log"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/pipelines"
)

func main() {
	rows := flag.Int("rows", 200_000, "311 service requests to generate")
	messy := flag.Float64("messy", 0.08, "fraction of messy zip cells")
	flag.Parse()

	raw := data.ThreeOneOne(data.ThreeOneOneConfig{Rows: *rows, Seed: 3, MessyFraction: *messy})
	fmt.Printf("input: %.1f MB of 311 requests, %.0f%% messy zips\n",
		float64(len(raw))/(1<<20), *messy*100)

	c := tuplex.NewContext(tuplex.WithExecutors(4))
	res, err := pipelines.ThreeOneOne(c.CSV("", tuplex.CSVData(raw))).Collect()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("unique cleaned zip codes: %d\n", len(res.Rows))
	for _, r := range res.Rows {
		fmt.Printf("  %v\n", r[0])
	}
	cnt := res.Metrics.Rows
	fmt.Println()
	fmt.Println("dual-mode execution report:")
	fmt.Printf("  input rows:                 %d\n", cnt.Input)
	fmt.Printf("  fast path (compiled):       %d\n", cnt.Normal)
	fmt.Printf("  classifier rejects:         %d (cells outside the sampled normal case)\n", cnt.ClassifierRejects)
	fmt.Printf("  fast-path exceptions:       %d (raised while running compiled code)\n", cnt.NormalPathExceptions)
	fmt.Printf("  recovered on general path:  %d\n", cnt.GeneralResolved)
	fmt.Printf("  recovered by interpreter:   %d\n", cnt.FallbackResolved)
	fmt.Printf("  failed (reported):          %d\n", cnt.Failed)
	fmt.Printf("  exception rate:             %.2f%%\n", cnt.ExceptionRate()*100)
	fmt.Println()
	fmt.Println("the pipeline completed despite the dirty rows — nothing raised (§7).")

	// Demonstrate resolvers: map the zips to ints with an explicit
	// resolver for unparseable values.
	res2, err := c.CSV("", tuplex.CSVData(raw)).
		SelectColumns("Incident Zip").
		MapColumn("Incident Zip", tuplex.UDF("lambda z: int(z)")).
		Resolve(tuplex.ValueError, tuplex.UDF("lambda z: -1")).
		Resolve(tuplex.TypeError, tuplex.UDF("lambda z: -1")).
		Collect()
	if err != nil {
		log.Fatal(err)
	}
	bad := 0
	for _, r := range res2.Rows {
		if v, ok := r[0].(int64); ok && v == -1 {
			bad++
		}
	}
	fmt.Printf("\nwith explicit resolvers: %d rows mapped to the -1 sentinel, %d failed\n",
		bad, len(res2.Failed))
}
