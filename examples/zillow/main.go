// Zillow: the paper's flagship end-to-end pipeline (§6.1.1, Appendix
// A.1) — twelve string-heavy Python UDFs extracting bedrooms, bathrooms,
// square footage, offer type and price from real-estate listings.
//
// Run with:
//
//	go run ./examples/zillow [-rows N] [-executors N] [-out file.csv] [-trace]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/pipelines"
)

func main() {
	rows := flag.Int("rows", 100_000, "listings to generate")
	executors := flag.Int("executors", 4, "executor threads")
	out := flag.String("out", "", "write output CSV to this path")
	dirty := flag.Float64("dirty", 0.005, "fraction of malformed rows")
	traced := flag.Bool("trace", false, "print the run's trace tree (row-routing ledger + exception samples)")
	flag.Parse()

	fmt.Printf("generating %d listings (%.1f%% dirty)...\n", *rows, *dirty*100)
	raw := data.Zillow(data.ZillowConfig{Rows: *rows, Seed: 42, DirtyFraction: *dirty})
	fmt.Printf("input: %.1f MB\n", float64(len(raw))/(1<<20))

	opts := []tuplex.Option{tuplex.WithExecutors(*executors)}
	if *traced {
		opts = append(opts, tuplex.WithTracing(tuplex.TraceSamples))
	}
	c := tuplex.NewContext(opts...)
	t0 := time.Now()
	res, err := pipelines.Zillow(c.CSV("", tuplex.CSVData(raw))).ToCSV(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline done in %v\n", time.Since(t0))
	fmt.Println("metrics:", res.Metrics)
	if *traced {
		fmt.Println()
		fmt.Print(res.Trace)
	}
	fmt.Printf("output: %.1f MB, %d failed rows\n", float64(len(res.CSV))/(1<<20), len(res.Failed))
	for i, f := range res.Failed {
		if i >= 3 {
			fmt.Printf("  ... and %d more\n", len(res.Failed)-3)
			break
		}
		fmt.Printf("  failed [%s]: %.80s\n", f.Exc, f.Input)
	}
}
