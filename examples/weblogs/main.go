// Weblogs: the paper's log-wrangling pipeline (§6.1.3, Appendix A.3) in
// all three parse variants — natural Python string ops, split(), and a
// single regular expression — plus username anonymization via re.sub and
// random.choice, and a join against a bad-IP blacklist.
//
// Run with:
//
//	go run ./examples/weblogs [-rows N] [-variant strip|split|regex]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/pipelines"
)

func main() {
	rows := flag.Int("rows", 100_000, "log lines to generate")
	executors := flag.Int("executors", 4, "executor threads")
	variantName := flag.String("variant", "strip", "parse variant: strip, split, regex, percol")
	flag.Parse()

	variant := pipelines.WeblogStrip
	switch *variantName {
	case "split":
		variant = pipelines.WeblogSplit
	case "regex":
		variant = pipelines.WeblogRegex
	case "percol":
		variant = pipelines.WeblogPerColRegex
	}

	logs, badIPs := data.Weblogs(data.WeblogConfig{Rows: *rows, Seed: 7})
	fmt.Printf("input: %.1f MB of logs, %s variant\n", float64(len(logs))/(1<<20), variant)

	c := tuplex.NewContext(tuplex.WithExecutors(*executors), tuplex.WithSeed(1234))
	t0 := time.Now()
	res, err := pipelines.Weblogs(
		c.Text("", tuplex.TextData(logs)),
		c.CSV("", tuplex.CSVData(badIPs)),
		variant).Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retained %d requests from blacklisted IPs in %v\n", len(res.Rows), time.Since(t0))
	fmt.Println("metrics:", res.Metrics)
	for i, row := range res.Rows {
		if i >= 5 {
			break
		}
		// /~username paths are anonymized to random tags.
		fmt.Printf("  %v %v %v -> %v\n", row[0], row[2], row[5], row[3])
	}
	if len(res.Failed) > 0 {
		fmt.Printf("%d anomalous lines could not be parsed (reported, not raised):\n", len(res.Failed))
		for i, f := range res.Failed {
			if i >= 3 {
				break
			}
			fmt.Printf("  [%s] %.60s\n", f.Exc, f.Input)
		}
	}
}
