package tuplex

import (
	"context"

	"github.com/gotuplex/tuplex/internal/spec"
)

// Plan is the serializable form of a pipeline: a versioned JSON
// document ("v":1) carrying the source, every operator (UDF sources,
// globals, resolvers, join build sides), the sink and the engine
// options. The layout is stable across releases — a plan marshaled
// today decodes byte-identically later — and is exactly what a
// tuplex-serve daemon accepts at POST /v1/jobs. Unknown versions,
// fields and operator kinds are rejected with actionable errors rather
// than silently ignored.
//
// Plans are produced from a DataSet with (*DataSet).Plan, parsed from
// JSON with ParsePlan or json.Unmarshal, executed locally with Run, and
// submitted remotely with Client.Submit.
type Plan struct {
	p *spec.Pipeline
}

// Plan captures the DataSet's operator chain and its context's options
// as a serializable Plan with a collect sink. Use the sink setters
// (WithTakeSink, WithCSVSink, WithAggregateSink) for other terminal
// actions.
func (d *DataSet) Plan() (*Plan, error) {
	if d.err != nil {
		return nil, d.err
	}
	p, err := spec.FromNode(d.node, d.ctx.opts)
	if err != nil {
		return nil, err
	}
	return &Plan{p: p}, nil
}

// ParsePlan decodes a versioned plan document, strictly: unknown
// versions, fields, operator/source/sink kinds and trailing garbage are
// errors.
func ParsePlan(data []byte) (*Plan, error) {
	p, err := spec.Decode(data)
	if err != nil {
		return nil, err
	}
	return &Plan{p: p}, nil
}

// MarshalJSON renders the canonical (deterministic, compact) wire form.
func (p *Plan) MarshalJSON() ([]byte, error) { return p.p.Encode() }

// UnmarshalJSON decodes with ParsePlan's strictness.
func (p *Plan) UnmarshalJSON(data []byte) error {
	sp, err := spec.Decode(data)
	if err != nil {
		return err
	}
	p.p = sp
	return nil
}

// String renders the plan as indented JSON (debugging, golden files).
func (p *Plan) String() string {
	b, err := p.p.EncodeIndent()
	if err != nil {
		return "<invalid plan: " + err.Error() + ">"
	}
	return string(b)
}

// Version reports the spec version this build writes.
func (p *Plan) Version() int { return spec.Version }

// Fingerprint derives the compiled-pipeline cache key a tuplex-serve
// daemon would use for this plan: a hash over the canonical encoding
// plus each file-backed source's size and sampled prefix. Two plans
// with equal fingerprints share one compiled pipeline server-side.
func (p *Plan) Fingerprint() (string, error) { return p.p.Fingerprint() }

// Validate builds the plan against this binary's operator set and
// reports the first problem (unknown op kind, unparsable UDF, missing
// source, ...) without executing anything.
func (p *Plan) Validate() error {
	_, err := p.p.Build()
	return err
}

// WithCollectSink returns a copy of the plan terminating in collect.
func (p *Plan) WithCollectSink() *Plan { return p.withSink(spec.Sink{}) }

// WithTakeSink returns a copy of the plan returning at most n rows.
func (p *Plan) WithTakeSink(n int) *Plan {
	return p.withSink(spec.Sink{Kind: "take", N: n})
}

// WithCSVSink returns a copy of the plan writing CSV to path ("" keeps
// the rendered bytes in the result).
func (p *Plan) WithCSVSink(path string) *Plan {
	return p.withSink(spec.Sink{Kind: "csv", Path: path})
}

// WithAggregateSink returns a copy of the plan folding all rows; agg is
// `lambda acc, row: ...`, comb merges two partial accumulators.
func (p *Plan) WithAggregateSink(agg, comb UDFDef, initial any) *Plan {
	return p.withSink(spec.Sink{
		Kind:    "aggregate",
		Agg:     &spec.UDF{Code: agg.source, Globals: agg.globals},
		Comb:    &spec.UDF{Code: comb.source, Globals: comb.globals},
		Initial: initial,
	})
}

func (p *Plan) withSink(sink spec.Sink) *Plan {
	cp := *p.p
	cp.Sink = sink
	return &Plan{p: &cp}
}

// DataSet rebuilds the plan's operator chain as a live DataSet bound to
// a fresh Context carrying the plan's options (an aggregate sink's fold
// is part of the chain; other sink dispositions are chosen by whichever
// action the caller invokes).
func (p *Plan) DataSet() (*DataSet, error) {
	built, err := p.p.Build()
	if err != nil {
		return nil, err
	}
	return &DataSet{ctx: &Context{opts: built.Opts}, node: built.Node}, nil
}

// Run executes the plan locally under ctx with full sink fidelity:
// collect and take return rows (take truncates), csv writes or returns
// rendered bytes, aggregate returns the accumulator as the single row.
// Cancellation behaves like CollectContext.
func (p *Plan) Run(ctx context.Context) (*Result, error) {
	built, err := p.p.Build()
	if err != nil {
		return nil, err
	}
	ds := &DataSet{ctx: &Context{opts: built.Opts}, node: built.Node}
	res, err := ds.runCtx(ctx, built.Kind, built.CSVPath)
	if err != nil {
		return nil, err
	}
	if built.Take >= 0 && len(res.Rows) > built.Take {
		res.Rows = res.Rows[:built.Take]
	}
	return res, nil
}
