// Telemetry integration tests: the sampler against real streamed-ingest
// runs (this file is the `go test -race` gate for the monitor's shared
// state), determinism of the monitored run, and the introspection
// server observing a run mid-flight.
package tuplex_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/pipelines"
	"github.com/gotuplex/tuplex/internal/telemetry"
)

// writeZillow materializes a generated zillow CSV on disk so the
// streamed chunked ingest path runs.
func writeZillow(t *testing.T, rows int) string {
	t.Helper()
	raw := data.Zillow(data.ZillowConfig{Rows: rows, Seed: 7, DirtyFraction: 0.01})
	path := filepath.Join(t.TempDir(), "zillow.csv")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTelemetrySampledStreamedIngest races the 1ms sampler against a
// multi-executor streamed run (the -race build is the actual assertion)
// and checks the run left a latency record behind.
func TestTelemetrySampledStreamedIngest(t *testing.T) {
	path := writeZillow(t, 20_000)
	c := tuplex.NewContext(
		tuplex.WithExecutors(4),
		tuplex.WithChunkSize(64<<10),
		tuplex.WithTelemetry(
			tuplex.TelemetryInterval(time.Millisecond),
			tuplex.TelemetryRingSize(128),
			tuplex.TelemetryLabel("race-gate"),
		),
	)
	res, err := pipelines.Zillow(c.CSV(path)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no output rows")
	}
	lat := res.Metrics.Latency
	if lat.Chunk.Count == 0 {
		t.Fatal("monitored run recorded no chunk latencies")
	}
	if lat.Chunk.P50 <= 0 || lat.Chunk.P99 < lat.Chunk.P50 || lat.Chunk.Max < lat.Chunk.P99 {
		t.Fatalf("chunk latency quantiles not ordered: %+v", lat.Chunk)
	}
	if lat.Resolve.Count == 0 {
		t.Fatal("dirty input must leave resolve-latency observations")
	}
}

// TestTelemetryDeterminism verifies monitoring is observation only: the
// same pipeline with telemetry off and on (at an aggressive 1ms
// interval) produces identical output and identical row accounting.
func TestTelemetryDeterminism(t *testing.T) {
	path := writeZillow(t, 10_000)
	run := func(opts ...tuplex.Option) *tuplex.Result {
		t.Helper()
		opts = append([]tuplex.Option{
			tuplex.WithExecutors(4),
			tuplex.WithChunkSize(64 << 10),
		}, opts...)
		res, err := pipelines.Zillow(tuplex.NewContext(opts...).CSV(path)).ToCSV("")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := run()
	on := run(tuplex.WithTelemetry(tuplex.TelemetryInterval(time.Millisecond)))

	if string(off.CSV) != string(on.CSV) {
		t.Fatalf("output differs with telemetry on: %d vs %d bytes", len(off.CSV), len(on.CSV))
	}
	if !reflect.DeepEqual(off.Metrics.Rows, on.Metrics.Rows) {
		t.Fatalf("row accounting differs:\noff: %+v\non:  %+v", off.Metrics.Rows, on.Metrics.Rows)
	}
	if off.Metrics.Ingest.RecordsSplit != on.Metrics.Ingest.RecordsSplit ||
		off.Metrics.Ingest.BytesRead != on.Metrics.Ingest.BytesRead {
		t.Fatalf("ingest accounting differs:\noff: %+v\non:  %+v", off.Metrics.Ingest, on.Metrics.Ingest)
	}
	if !reflect.DeepEqual(off.Warnings, on.Warnings) {
		t.Fatalf("warnings differ:\noff: %v\non:  %v", off.Warnings, on.Warnings)
	}
	// Only the monitored run carries latency data; the off run's
	// summary must stay zero (no hidden instrumentation).
	if off.Metrics.Latency.Chunk.Count != 0 {
		t.Fatalf("telemetry-off run recorded latencies: %+v", off.Metrics.Latency)
	}
	if on.Metrics.Latency.Chunk.Count == 0 {
		t.Fatal("telemetry-on run recorded no latencies")
	}
}

// TestRunzReportsMidFlightStreamedIngest drives the introspection
// handler with httptest while a streamed-ingest run executes and checks
// /debug/tuplex/runz reports its live progress. The run size doubles on
// retry in case the machine finishes a small run between polls.
func TestRunzReportsMidFlightStreamedIngest(t *testing.T) {
	srv := httptest.NewServer(telemetry.NewMux(telemetry.Default))
	defer srv.Close()

	rows := 50_000
	for attempt := 0; ; attempt++ {
		label := fmt.Sprintf("midflight-%d", attempt)
		path := writeZillow(t, rows)
		done := make(chan error, 1)
		go func() {
			c := tuplex.NewContext(
				tuplex.WithExecutors(2),
				tuplex.WithChunkSize(32<<10),
				tuplex.WithTelemetry(
					tuplex.TelemetryInterval(time.Millisecond),
					tuplex.TelemetryLabel(label),
				),
			)
			_, err := pipelines.Zillow(c.CSV(path)).Collect()
			done <- err
		}()

		caught := pollRunz(t, srv.URL, label, done)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		if caught {
			return
		}
		if attempt >= 3 {
			t.Fatal("never observed the run mid-flight in /debug/tuplex/runz")
		}
		rows *= 2
	}
}

// BenchmarkIngestTelemetry is BenchmarkIngest's streamed multi-executor
// case with the monitor attached at the default 100ms interval —
// compare against BenchmarkIngest/streamed to measure telemetry-on
// overhead (acceptance: ≤3%).
func BenchmarkIngestTelemetry(b *testing.B) {
	raw := data.Zillow(data.ZillowConfig{Rows: 100_000, Seed: 2})
	path := filepath.Join(b.TempDir(), "zillow.csv")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		b.Fatal(err)
	}
	opts := []tuplex.Option{
		tuplex.WithExecutors(4),
		tuplex.WithChunkSize(256 << 10),
		tuplex.WithTelemetry(),
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for range b.N {
		c := tuplex.NewContext(opts...)
		res, err := pipelines.Zillow(c.CSV(path)).ToCSV("")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.CSV) == 0 {
			b.Fatal("empty output")
		}
	}
}

// pollRunz polls /debug/tuplex/runz until it sees the labeled run live
// with progress, the run finishes, or a deadline passes. It validates
// the live report when caught.
func pollRunz(t *testing.T, base, label string, done chan error) bool {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-done:
			done <- err // re-queue for the caller
			return false
		default:
		}
		resp, err := http.Get(base + "/debug/tuplex/runz?samples=4")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("runz status = %d", resp.StatusCode)
		}
		var rep telemetry.RunzReport
		err = json.NewDecoder(resp.Body).Decode(&rep)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rep.Live {
			if r.Label != label || r.InputRows == 0 {
				continue
			}
			// Caught mid-flight: the report must carry streamed-ingest
			// progress, not just counters.
			if !r.Live {
				t.Fatalf("live list entry not marked live: %+v", r)
			}
			if r.BytesRead == 0 {
				t.Fatalf("mid-flight report missing byte progress: %+v", r)
			}
			if r.TotalBytes == 0 {
				t.Fatalf("on-disk input must report total_bytes for ETA: %+v", r)
			}
			if r.Executors != 2 {
				t.Fatalf("executors = %d, want 2", r.Executors)
			}
			if r.DurNS <= 0 {
				t.Fatalf("live run DurNS = %d", r.DurNS)
			}
			if len(r.Samples) == 0 {
				t.Fatalf("mid-flight report carries no samples: %+v", r)
			}
			return true
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("timed out waiting for the run to finish or appear")
	return false
}
