// Command tuplex-datagen writes the synthetic evaluation datasets to
// disk so pipelines can run over real files.
//
// Usage:
//
//	tuplex-datagen -dataset zillow -rows 100000 -out zillow.csv
//	tuplex-datagen -dataset flights -rows 50000 -out flights.csv
//	tuplex-datagen -dataset weblogs -rows 200000 -out logs.txt
//	tuplex-datagen -dataset 311 -rows 100000 -out 311.csv
//	tuplex-datagen -dataset tpch -rows 1000000 -out lineitem.csv
//
// The flights dataset also writes carriers.csv and airports.txt next to
// the main file; weblogs also writes bad_ips.csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/gotuplex/tuplex/internal/data"
)

func main() {
	dataset := flag.String("dataset", "zillow", "zillow | flights | weblogs | 311 | tpch")
	rows := flag.Int("rows", 100_000, "row count")
	seed := flag.Uint64("seed", 42, "generator seed")
	out := flag.String("out", "", "output path (required)")
	dirty := flag.Float64("dirty", 0.005, "dirty-row fraction (zillow)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tuplex-datagen: -out is required")
		os.Exit(2)
	}

	write := func(path string, b []byte) {
		if err := os.WriteFile(path, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tuplex-datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%.1f MB)\n", path, float64(len(b))/(1<<20))
	}

	dir := filepath.Dir(*out)
	switch *dataset {
	case "zillow":
		write(*out, data.Zillow(data.ZillowConfig{Rows: *rows, Seed: *seed, DirtyFraction: *dirty}))
	case "flights":
		write(*out, data.Flights(data.FlightsConfig{Rows: *rows, Seed: *seed}))
		write(filepath.Join(dir, "carriers.csv"), data.Carriers())
		write(filepath.Join(dir, "airports.txt"), data.Airports())
	case "weblogs":
		logs, bad := data.Weblogs(data.WeblogConfig{Rows: *rows, Seed: *seed})
		write(*out, logs)
		write(filepath.Join(dir, "bad_ips.csv"), bad)
	case "311":
		write(*out, data.ThreeOneOne(data.ThreeOneOneConfig{Rows: *rows, Seed: *seed}))
	case "tpch":
		write(*out, data.TPCHLineitem(data.TPCHConfig{Rows: *rows, Seed: *seed}))
	default:
		fmt.Fprintf(os.Stderr, "tuplex-datagen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
}
