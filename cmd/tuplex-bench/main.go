// Command tuplex-bench regenerates the paper's evaluation tables and
// figures (§6) on synthetic data. Each subcommand reproduces one
// table/figure; `all` runs everything and can emit the EXPERIMENTS.md
// body.
//
// Usage:
//
//	tuplex-bench [flags] <experiment>
//
// Experiments: table2 fig3 fig4 fig5 fig6 fig7 fig9 fig10 fig11 fig12 ingest join bench-json all
//
// Flags:
//
//	-scale N       scale factor over the default dataset sizes (default 1.0)
//	-small         use the fast test scale
//	-parallel N    parallelism for the multi-threaded experiments
//	-repeats N     timing repeats (best-of)
//	-markdown F    also write Markdown tables to file F (with `all`)
//	-trace DIR     trace the Tuplex runs (row-routing ledger); print each
//	               trace tree and write DIR/<id>.trace.json per experiment
//	-listen ADDR   serve /metrics, /debug/tuplex/runz and pprof while the
//	               experiments run (runs are monitored automatically)
//	-progress      live TTY progress line (stage, rows, rate, exc%, ETA)
//	-out F         output path for the bench-json experiment (default BENCH_8.json)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/experiments"
	"github.com/gotuplex/tuplex/internal/telemetry"
)

func main() {
	scaleF := flag.Float64("scale", 1.0, "scale factor over default dataset sizes")
	small := flag.Bool("small", false, "use the fast test scale")
	parallel := flag.Int("parallel", 0, "parallelism (default: min(16, NumCPU))")
	repeats := flag.Int("repeats", 1, "timing repeats (best-of)")
	markdown := flag.String("markdown", "", "write Markdown tables to this file (with 'all')")
	traceDir := flag.String("trace", "", "trace Tuplex runs and write <dir>/<id>.trace.json")
	listen := flag.String("listen", "", "introspection server address (e.g. :9090)")
	progress := flag.Bool("progress", false, "live TTY progress line for the running experiment")
	benchOut := flag.String("out", "BENCH_8.json", "output path for bench-json")
	flag.Parse()

	if *listen != "" {
		srv, err := tuplex.Serve(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tuplex-bench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "tuplex-bench: serving /metrics, /debug/tuplex/runz, /debug/pprof on %s\n", srv.Addr())
	}
	if *progress {
		release := telemetry.EnableProcess()
		defer release()
		stop := telemetry.StartProgress(os.Stderr, telemetry.Default, 0)
		defer stop()
	}

	scale := experiments.DefaultScale()
	if *small {
		scale = scale.Small()
	}
	if *scaleF != 1.0 {
		scale.ZillowRows = int(float64(scale.ZillowRows) * *scaleF)
		scale.FlightRows = int(float64(scale.FlightRows) * *scaleF)
		scale.WeblogRows = int(float64(scale.WeblogRows) * *scaleF)
		scale.Rows311 = int(float64(scale.Rows311) * *scaleF)
		scale.Q6Rows = int(float64(scale.Q6Rows) * *scaleF)
	}
	if *parallel > 0 {
		scale.Parallelism = *parallel
	}
	if *repeats > 1 {
		scale.Repeats = *repeats
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "tuplex-bench:", err)
			os.Exit(1)
		}
		scale.TraceDir = *traceDir
	}

	which := "all"
	if flag.NArg() > 0 {
		which = strings.ToLower(flag.Arg(0))
	}

	if which == "bench-json" {
		if err := experiments.BenchJSON(*benchOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tuplex-bench:", err)
			os.Exit(1)
		}
		return
	}

	type expFn = func(experiments.Scale, io.Writer) (*experiments.Experiment, error)
	both := func(a, b expFn) expFn {
		return func(s experiments.Scale, w io.Writer) (*experiments.Experiment, error) {
			if _, err := a(s, w); err != nil {
				return nil, err
			}
			return b(s, w)
		}
	}
	table := map[string]expFn{
		"table2": experiments.Table2,
		"fig3":   both(experiments.Fig3Single, experiments.Fig3Parallel),
		"fig3a":  experiments.Fig3Single,
		"fig3b":  experiments.Fig3Parallel,
		"fig4":   experiments.Fig4,
		"fig5":   experiments.Fig5,
		"fig6":   experiments.Fig6,
		"fig7":   experiments.Fig7,
		"fig8":   experiments.Fig9,
		"fig9":   experiments.Fig9,
		"fig10":  experiments.Fig10,
		"fig11":  experiments.Fig11,
		"fig12":  experiments.Fig12,
		"ingest": experiments.Ingest,
		"join":   experiments.Join,
	}

	if which == "all" {
		results, err := experiments.All(scale, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tuplex-bench:", err)
			os.Exit(1)
		}
		if *markdown != "" {
			f, err := os.Create(*markdown)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tuplex-bench:", err)
				os.Exit(1)
			}
			for _, e := range results {
				e.Markdown(f)
			}
			f.Close()
			fmt.Println("wrote", *markdown)
		}
		return
	}
	fn, ok := table[which]
	if !ok {
		fmt.Fprintf(os.Stderr, "tuplex-bench: unknown experiment %q (have table2 fig3..fig12 ingest join bench-json all)\n", which)
		os.Exit(2)
	}
	if _, err := fn(scale, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tuplex-bench:", err)
		os.Exit(1)
	}
}
