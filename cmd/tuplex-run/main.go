// Command tuplex-run executes one of the paper's evaluation pipelines
// end to end, over files on disk (see tuplex-datagen) or freshly
// generated data, and prints the dual-mode execution metrics.
//
// Usage:
//
//	tuplex-run -pipeline zillow -rows 200000 -executors 8
//	tuplex-run -pipeline zillow -input zillow.csv -output out.csv
//	tuplex-run -pipeline flights -input flights.csv
//	tuplex-run -pipeline weblogs -variant regex -rows 100000
//	tuplex-run -pipeline 311 -rows 200000
//	tuplex-run -pipeline q6 -rows 1000000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/pipelines"
	"github.com/gotuplex/tuplex/internal/telemetry"
)

func main() {
	pipeline := flag.String("pipeline", "zillow", "zillow | flights | weblogs | 311 | q6")
	input := flag.String("input", "", "input path (generated in memory when empty)")
	output := flag.String("output", "", "output CSV path (collect when empty)")
	rows := flag.Int("rows", 100_000, "rows to generate when -input is empty")
	executors := flag.Int("executors", 4, "executor threads")
	variant := flag.String("variant", "strip", "weblogs parse variant: strip|split|regex|percol")
	noOpt := flag.Bool("no-opt", false, "disable all optimizations (for comparison)")
	check := flag.Bool("check", false, "statically verify the pipeline and exit without running it")
	listen := flag.String("listen", "", "introspection server address (e.g. :9090)")
	progress := flag.Bool("progress", false, "live TTY progress line while the run executes")
	traceFormat := flag.String("trace-format", "", "export the run trace: json (native span tree) | chrome (trace-event, loads in Perfetto) | tree (human-readable)")
	traceOut := flag.String("trace-out", "", "trace output path (stdout when empty)")
	flag.Parse()

	switch *traceFormat {
	case "", "json", "chrome", "tree":
	default:
		fmt.Fprintf(os.Stderr, "tuplex-run: unknown -trace-format %q (json | chrome | tree)\n", *traceFormat)
		os.Exit(2)
	}

	if *listen != "" {
		srv, err := tuplex.Serve(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tuplex-run:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "tuplex-run: serving /metrics, /debug/tuplex/runz, /debug/pprof on %s\n", srv.Addr())
	}
	if *progress {
		release := telemetry.EnableProcess()
		defer release()
		stop := telemetry.StartProgress(os.Stderr, telemetry.Default, 0)
		defer stop()
	}

	opts := []tuplex.Option{tuplex.WithExecutors(*executors)}
	if *traceFormat != "" {
		// Exported traces carry the routing ledger — it is the point of
		// reading one.
		opts = append(opts, tuplex.WithTracing(tuplex.TraceRows))
	}
	if *noOpt {
		opts = append(opts,
			tuplex.WithoutLogicalOptimizations(),
			tuplex.WithoutStageFusion(),
			tuplex.WithoutCompilerOptimizations(),
			tuplex.WithoutNullOptimization())
	}
	c := tuplex.NewContext(opts...)

	// On-disk inputs open by path so the engine's streamed chunked
	// ingest runs; generated data stays in memory.
	csvSource := func(gen func() []byte) *tuplex.DataSet {
		if *input != "" {
			return c.CSV(*input)
		}
		return c.CSV("", tuplex.CSVData(gen()))
	}

	var ds *tuplex.DataSet
	var aggregate bool
	switch *pipeline {
	case "zillow":
		ds = pipelines.Zillow(csvSource(func() []byte {
			return data.Zillow(data.ZillowConfig{Rows: *rows, Seed: 42, DirtyFraction: 0.005})
		}))
	case "flights":
		perf := csvSource(func() []byte { return data.Flights(data.FlightsConfig{Rows: *rows, Seed: 42}) })
		carriers, airports := data.Carriers(), data.Airports()
		if *input != "" {
			dir := filepath.Dir(*input)
			if b, err := os.ReadFile(filepath.Join(dir, "carriers.csv")); err == nil {
				carriers = b
			}
			if b, err := os.ReadFile(filepath.Join(dir, "airports.txt")); err == nil {
				airports = b
			}
		}
		in := pipelines.FlightsSources(c, nil, carriers, airports)
		in.Perf = perf
		ds = pipelines.Flights(in)
	case "weblogs":
		var logs *tuplex.DataSet
		if *input != "" {
			logs = c.Text(*input)
		} else {
			l, _ := data.Weblogs(data.WeblogConfig{Rows: *rows, Seed: 42})
			logs = c.Text("", tuplex.TextData(l))
		}
		_, bad := data.Weblogs(data.WeblogConfig{Rows: 1, Seed: 42})
		if *input != "" {
			if b, err := os.ReadFile(filepath.Join(filepath.Dir(*input), "bad_ips.csv")); err == nil {
				bad = b
			}
		}
		v := pipelines.WeblogStrip
		switch *variant {
		case "split":
			v = pipelines.WeblogSplit
		case "regex":
			v = pipelines.WeblogRegex
		case "percol":
			v = pipelines.WeblogPerColRegex
		}
		ds = pipelines.Weblogs(logs, c.CSV("", tuplex.CSVData(bad)), v)
	case "311":
		ds = pipelines.ThreeOneOne(csvSource(func() []byte {
			return data.ThreeOneOne(data.ThreeOneOneConfig{Rows: *rows, Seed: 42})
		}))
	case "q6":
		aggregate = true
		src := csvSource(func() []byte {
			return data.TPCHLineitem(data.TPCHConfig{Rows: *rows, Seed: 42})
		})
		if *check {
			p, err := src.Plan()
			fatalIf(err)
			agg, comb, initial := pipelines.Q6UDFs()
			os.Exit(reportDiagnostics(*pipeline, p.WithAggregateSink(agg, comb, initial)))
		}
		t0 := time.Now()
		revenue, res, err := pipelines.Q6(src)
		fatalIf(err)
		fmt.Printf("Q6 revenue: %.2f (in %v)\n", revenue, time.Since(t0))
		fmt.Println("metrics:", res.Metrics)
		fatalIf(writeTrace(res.Trace, *traceFormat, *traceOut))
		return
	default:
		fmt.Fprintf(os.Stderr, "tuplex-run: unknown pipeline %q\n", *pipeline)
		os.Exit(2)
	}
	_ = aggregate

	if *check {
		p, err := ds.Plan()
		fatalIf(err)
		os.Exit(reportDiagnostics(*pipeline, p))
	}

	t0 := time.Now()
	var res *tuplex.Result
	var err error
	if *output != "" {
		res, err = ds.ToCSV(*output)
	} else {
		res, err = ds.Collect()
	}
	fatalIf(err)
	elapsed := time.Since(t0)

	if *output != "" {
		fmt.Printf("wrote %s (%.1f MB) in %v\n", *output, float64(len(res.CSV))/(1<<20), elapsed)
	} else {
		fmt.Printf("collected %d rows in %v\n", len(res.Rows), elapsed)
		for i, row := range res.Rows {
			if i >= 3 {
				break
			}
			fmt.Printf("  %v\n", row)
		}
	}
	fmt.Println("metrics:", res.Metrics)
	if len(res.Failed) > 0 {
		fmt.Printf("%d failed rows (first 3):\n", len(res.Failed))
		for i, f := range res.Failed {
			if i >= 3 {
				break
			}
			fmt.Printf("  [%s] %.80s\n", f.Exc, f.Input)
		}
	}
	for _, wmsg := range res.Warnings {
		fmt.Println("warning:", wmsg)
	}
	fatalIf(writeTrace(res.Trace, *traceFormat, *traceOut))
}

// writeTrace exports the run's trace in the requested format to the
// requested sink (stdout by default; -trace-out redirects to a file
// ready to drop into chrome://tracing or ui.perfetto.dev).
func writeTrace(tr *tuplex.Trace, format, out string) error {
	if format == "" {
		return nil
	}
	if tr == nil {
		return fmt.Errorf("no trace recorded")
	}
	var b []byte
	var err error
	switch format {
	case "json":
		if b, err = json.MarshalIndent(tr, "", " "); err == nil {
			b = append(b, '\n')
		}
	case "chrome":
		b, err = tr.MarshalChrome()
	case "tree":
		b = []byte(tr.String())
	}
	if err != nil {
		return err
	}
	if out == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tuplex-run: wrote %s trace to %s\n", format, out)
	return nil
}

// reportDiagnostics prints every verifier finding and returns the
// process exit code: 0 when the plan carries no error-severity
// diagnostic, 1 otherwise.
func reportDiagnostics(name string, p *tuplex.Plan) int {
	diags := tuplex.Validate(p)
	for _, d := range diags {
		fmt.Printf("%s: %s\n", name, d)
	}
	errs := 0
	for _, d := range diags {
		if d.Severity == "error" {
			errs++
		}
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "tuplex-run: %s: %d error(s), %d total diagnostic(s)\n", name, errs, len(diags))
		return 1
	}
	fmt.Printf("%s: plan verifies clean (%d diagnostics)\n", name, len(diags))
	return 0
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tuplex-run:", err)
		os.Exit(1)
	}
}
