// Command tuplex-serve runs the long-lived multi-tenant query service:
// an HTTP daemon that accepts versioned JSON pipeline specs on
// /v1/jobs, executes them under admission control, and caches compiled
// pipelines so byte-identical resubmissions skip sampling and
// compilation.
//
// Endpoints:
//
//	POST   /v1/jobs              submit a pipeline spec (?wait=false for async)
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         one job's state and result
//	GET    /v1/jobs/{id}/trace   the job's trace (?format=chrome for Perfetto)
//	DELETE /v1/jobs/{id}         cancel a running job
//	GET    /metrics              Prometheus text exposition (tuplex_service_*)
//	GET    /debug/tuplex/runz    JSON introspection (jobs, cache, live runs)
//	GET    /debug/tuplex/eventz  flight recorder: recent lifecycle events
//	GET    /debug/tuplex/slowz   retained traces of jobs over -slow-job-threshold
//
// SIGTERM/SIGINT triggers a graceful drain: the listener stops
// accepting submissions (503), in-flight jobs finish (bounded by
// -drain-timeout), stragglers are canceled at the next chunk boundary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/gotuplex/tuplex/internal/plancheck"
	"github.com/gotuplex/tuplex/internal/service"
	"github.com/gotuplex/tuplex/internal/spec"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5005", "listen address (use :0 for a free port)")
	maxConcurrent := flag.Int("max-concurrent", 0, "max jobs executing at once (default: GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 64, "submissions allowed to wait for a slot; -1 disables queuing")
	cacheEntries := flag.Int("cache-entries", 64, "compiled-pipeline cache capacity (plans)")
	executorsPerJob := flag.Int("executors-per-job", 0, "clamp on per-job executor pools (0 = no clamp)")
	memoryBudget := flag.Int64("memory-budget", 0, "max input bytes one job may reference (0 = unlimited)")
	requestTimeout := flag.Duration("request-timeout", 60*time.Second, "per-job deadline, queue wait included")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
	maxResultRows := flag.Int("max-result-rows", 10000, "rows inlined into a job response before truncation")
	maxBodyBytes := flag.Int64("max-body-bytes", 8<<20, "request body cap in bytes")
	checkSpecs := flag.String("check-specs", "", "verify every *.json spec in this directory at startup; refuse to serve on errors")
	slowJobThreshold := flag.Duration("slow-job-threshold", 0, "retain full traces of jobs slower than this at /debug/tuplex/slowz (0 disables)")
	flightEvents := flag.Int("flight-events", 0, "flight-recorder ring capacity at /debug/tuplex/eventz (0 = default 1024)")
	flag.Parse()

	if *checkSpecs != "" {
		if !verifySpecDir(*checkSpecs) {
			os.Exit(1)
		}
	}

	srv, err := service.Serve(service.Config{
		Addr:            *addr,
		MaxConcurrent:   *maxConcurrent,
		QueueDepth:      *queueDepth,
		CacheEntries:    *cacheEntries,
		ExecutorsPerJob: *executorsPerJob,
		MemoryBudget:    *memoryBudget,
		RequestTimeout:  *requestTimeout,
		DrainTimeout:    *drainTimeout,
		MaxResultRows:   *maxResultRows,
		MaxBodyBytes:    *maxBodyBytes,

		SlowJobThreshold: *slowJobThreshold,
		FlightEvents:     *flightEvents,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tuplex-serve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tuplex-serve: listening on %s (POST /v1/jobs)\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	fmt.Fprintf(os.Stderr, "tuplex-serve: %s received, draining (timeout %s)\n", s, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "tuplex-serve: drain:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "tuplex-serve: drained cleanly")
}

// verifySpecDir runs the whole-plan static verifier over every *.json
// spec in dir (a spool of pipelines the deployment expects to serve)
// and reports whether the daemon should start: any error-severity
// diagnostic — or an unreadable spool — blocks startup, so a bad
// deploy fails at boot instead of at the first 422.
func verifySpecDir(dir string) bool {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "tuplex-serve: -check-specs %s: no *.json specs found (err=%v)\n", dir, err)
		return false
	}
	bad := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tuplex-serve: %s: %v\n", path, err)
			bad++
			continue
		}
		var diags []plancheck.Diagnostic
		p, err := spec.Decode(data)
		if err != nil {
			var de *spec.DecodeError
			if !errors.As(err, &de) {
				fmt.Fprintf(os.Stderr, "tuplex-serve: %s: %v\n", path, err)
				bad++
				continue
			}
			for _, prob := range de.Problems {
				diags = append(diags, plancheck.Diagnostic{
					Code: plancheck.CodeDecode, Severity: plancheck.SevError, Msg: prob,
				})
			}
		} else {
			diags = plancheck.Check(p)
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "tuplex-serve: %s: %s\n", filepath.Base(path), d)
		}
		if plancheck.HasErrors(diags) {
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "tuplex-serve: %d of %d spooled spec(s) failed verification, refusing to start\n", bad, len(paths))
		return false
	}
	fmt.Fprintf(os.Stderr, "tuplex-serve: %d spooled spec(s) verify clean\n", len(paths))
	return true
}
