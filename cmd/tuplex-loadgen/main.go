// Command tuplex-loadgen drives a tuplex-serve daemon with pipeline
// submissions and reports throughput, latency percentiles, cache-hit
// counts and admission rejections. It is both the serve-smoke harness
// (cold-vs-warm assertions) and the overload probe (the daemon must
// shed load with 429s instead of collapsing).
//
// The run has two phases: a cold phase submits each distinct plan
// variant once (first-touch latency includes sampling + compilation),
// then a sustained phase re-submits the same plans -n times (or for
// -duration) across -c workers, where every submission should be a
// cache hit.
//
// Usage:
//
//	tuplex-loadgen -addr http://127.0.0.1:5005 [flags]
//
// Flags:
//
//	-pipeline tiny|small|zillow  built-in workload (default small)
//	-spec FILE              submit this plan JSON instead of a built-in
//	-zillow-rows N          rows for the zillow workload (default 20000)
//	-distinct N             rotate N fingerprint-distinct variants (default 1)
//	-n N                    sustained submissions (default 0: use -duration)
//	-duration D             sustained-phase length when -n is 0 (default 3s)
//	-c N                    concurrent submitters (default 16)
//	-assert-hits            fail unless every sustained submission hit the cache
//	-assert-speedup F       fail unless cold p50 / warm p50 >= F
//	-assert-min-rate F      fail unless sustained jobs/sec >= F
//	-expect-429             fail unless at least one submission was rejected 429
//	-json                   print one line of machine-readable JSON instead of the summary
//	-out FILE               write the JSON report to FILE (default stdout only)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/pipelines"
)

// Report is the machine-readable run summary (-out).
type Report struct {
	Pipeline  string `json:"pipeline"`
	Distinct  int    `json:"distinct"`
	Workers   int    `json:"workers"`
	Submitted int64  `json:"submitted"`
	OK        int64  `json:"ok"`
	Rejected  int64  `json:"rejected_429"`
	Failed    int64  `json:"failed"`
	CacheHits int64  `json:"cache_hits"`

	ColdP50NS int64   `json:"cold_p50_ns"`
	ColdP99NS int64   `json:"cold_p99_ns"`
	WarmP50NS int64   `json:"warm_p50_ns"`
	WarmP99NS int64   `json:"warm_p99_ns"`
	Speedup   float64 `json:"cold_over_warm_p50"`

	DurationS  float64 `json:"duration_s"`
	JobsPerSec float64 `json:"jobs_per_sec"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:5005", "daemon base URL")
	pipeline := flag.String("pipeline", "small", "built-in workload: tiny | small | zillow")
	specFile := flag.String("spec", "", "submit this plan JSON file instead of a built-in")
	zillowRows := flag.Int("zillow-rows", 20000, "rows for the zillow workload")
	distinct := flag.Int("distinct", 1, "fingerprint-distinct plan variants to rotate")
	n := flag.Int64("n", 0, "sustained submissions (0: run for -duration)")
	duration := flag.Duration("duration", 3*time.Second, "sustained-phase length when -n is 0")
	workers := flag.Int("c", 16, "concurrent submitters")
	assertHits := flag.Bool("assert-hits", false, "fail unless every sustained submission hit the cache")
	assertSpeedup := flag.Float64("assert-speedup", 0, "fail unless cold p50 / warm p50 >= this")
	assertMinRate := flag.Float64("assert-min-rate", 0, "fail unless sustained jobs/sec >= this")
	expect429 := flag.Bool("expect-429", false, "fail unless at least one submission was rejected 429")
	jsonOut := flag.Bool("json", false, "emit the report as one line of JSON on stdout (machine-readable; no summary text)")
	out := flag.String("out", "", "write the JSON report here too")
	flag.Parse()

	plans, cleanup, err := buildPlans(*pipeline, *specFile, *distinct, *zillowRows)
	if err != nil {
		fatal(err)
	}
	defer cleanup()

	cl := tuplex.NewClient(*addr)
	ctx := context.Background()
	rep := Report{Pipeline: *pipeline, Distinct: len(plans), Workers: *workers}
	if *specFile != "" {
		rep.Pipeline = *specFile
	}

	// Cold phase: first touch of each variant compiles.
	var coldNS []int64
	for i, p := range plans {
		t0 := time.Now()
		j, err := cl.Submit(ctx, p)
		if err != nil {
			fatal(fmt.Errorf("cold submit %d: %w", i, err))
		}
		coldNS = append(coldNS, time.Since(t0).Nanoseconds())
		if j.CacheHit {
			fmt.Fprintf(os.Stderr, "loadgen: warning: cold submission %d was already cached\n", i)
		}
	}
	rep.ColdP50NS = percentile(coldNS, 50)
	rep.ColdP99NS = percentile(coldNS, 99)

	// Sustained phase: re-submission storm.
	var (
		submitted, ok, rejected, failed, hits atomic.Int64
		mu                                    sync.Mutex
		warmNS                                []int64
	)
	deadline := time.Now().Add(*duration)
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if *n > 0 {
					if i >= *n {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				p := plans[int(i)%len(plans)]
				t0 := time.Now()
				j, err := cl.Submit(ctx, p)
				el := time.Since(t0).Nanoseconds()
				submitted.Add(1)
				var se *tuplex.ServiceError
				switch {
				case err == nil:
					ok.Add(1)
					if j.CacheHit {
						hits.Add(1)
					}
					mu.Lock()
					warmNS = append(warmNS, el)
					mu.Unlock()
				case errors.As(err, &se) && se.StatusCode == 429:
					rejected.Add(1)
				default:
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: submit: %v\n", err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep.Submitted = submitted.Load()
	rep.OK = ok.Load()
	rep.Rejected = rejected.Load()
	rep.Failed = failed.Load()
	rep.CacheHits = hits.Load()
	rep.WarmP50NS = percentile(warmNS, 50)
	rep.WarmP99NS = percentile(warmNS, 99)
	rep.DurationS = elapsed.Seconds()
	if elapsed > 0 {
		rep.JobsPerSec = float64(rep.OK+rep.Rejected) / elapsed.Seconds()
	}
	if rep.WarmP50NS > 0 {
		rep.Speedup = float64(rep.ColdP50NS) / float64(rep.WarmP50NS)
	}

	if *jsonOut {
		// One line of compact JSON, nothing else on stdout: the contract
		// scripts (serve_smoke.sh) parse this instead of scraping text.
		b, _ := json.Marshal(rep)
		fmt.Println(string(b))
	} else {
		printSummary(rep)
	}
	if *out != "" {
		b, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	if rep.Failed > 0 {
		fatal(fmt.Errorf("%d submissions failed outright", rep.Failed))
	}
	if *assertHits && rep.CacheHits != rep.OK {
		fatal(fmt.Errorf("assert-hits: only %d/%d sustained submissions hit the cache", rep.CacheHits, rep.OK))
	}
	if *assertSpeedup > 0 && rep.Speedup < *assertSpeedup {
		fatal(fmt.Errorf("assert-speedup: cold/warm p50 = %.1fx, want >= %.1fx (cold %dns, warm %dns)",
			rep.Speedup, *assertSpeedup, rep.ColdP50NS, rep.WarmP50NS))
	}
	if *assertMinRate > 0 && rep.JobsPerSec < *assertMinRate {
		fatal(fmt.Errorf("assert-min-rate: %.0f jobs/sec, want >= %.0f", rep.JobsPerSec, *assertMinRate))
	}
	if *expect429 && rep.Rejected == 0 {
		fatal(errors.New("expect-429: the daemon never shed load"))
	}
}

// buildPlans returns count fingerprint-distinct variants of the chosen
// workload (distinct via a per-variant global constant, so each one
// compiles separately but is individually cacheable).
func buildPlans(pipeline, specFile string, count, zillowRows int) ([]*tuplex.Plan, func(), error) {
	cleanup := func() {}
	if count < 1 {
		count = 1
	}
	if specFile != "" {
		raw, err := os.ReadFile(specFile)
		if err != nil {
			return nil, cleanup, err
		}
		p, err := tuplex.ParsePlan(raw)
		if err != nil {
			return nil, cleanup, fmt.Errorf("%s: %w", specFile, err)
		}
		return []*tuplex.Plan{p}, cleanup, nil
	}
	var mk func(k int64) (*tuplex.Plan, error)
	switch pipeline {
	case "tiny":
		// Minimal spec and minimal execution: measures the service's
		// per-job floor (HTTP + decode + fingerprint + cache hit + run).
		mk = func(k int64) (*tuplex.Plan, error) {
			c := tuplex.NewContext(tuplex.WithExecutors(1))
			return c.Parallelize([][]any{{int64(1)}, {int64(2)}, {int64(3)}, {int64(4)}}, []string{"a"}).
				Map(tuplex.UDF("lambda a: a * k + 1").WithGlobal("k", k)).
				Plan()
		}
	case "small":
		// Tiny data, expression-heavy plan: execution is microseconds, so
		// the cold/warm gap isolates what the cache actually saves —
		// sampling, type inference and code generation scale with UDF AST
		// size, while the compiled closures evaluate the same expressions
		// in nanoseconds per row.
		mk = func(k int64) (*tuplex.Plan, error) {
			c := tuplex.NewContext(tuplex.WithExecutors(1))
			d := c.Parallelize([][]any{
				{int64(1), "aa"}, {int64(2), "bb"}, {int64(3), "cc"}, {int64(4), "dd"},
			}, []string{"a", "s"})
			prev := "a"
			for i := 0; i < 6; i++ {
				col := fmt.Sprintf("c%d", i)
				var sb []byte
				sb = fmt.Appendf(sb, "lambda x: x['%s'] + k0", prev)
				for t := 0; t < 40; t++ {
					sb = fmt.Appendf(sb, " + (x['%s'] * %d if x['%s'] %% %d == 0 else %d - x['%s'])",
						prev, t+1, prev, t+2, t, prev)
				}
				udf := tuplex.UDF(string(sb)).WithGlobal("k0", k)
				d = d.WithColumn(col, udf)
				prev = col
			}
			return d.SelectColumns("a", prev, "s").Plan()
		}
	case "zillow":
		dir, err := os.MkdirTemp("", "tuplex-loadgen")
		if err != nil {
			return nil, cleanup, err
		}
		cleanup = func() { os.RemoveAll(dir) }
		path := filepath.Join(dir, "zillow.csv")
		raw := data.Zillow(data.ZillowConfig{Rows: zillowRows, Seed: 7})
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return nil, cleanup, err
		}
		mk = func(k int64) (*tuplex.Plan, error) {
			c := tuplex.NewContext()
			p, err := pipelines.Zillow(c.CSV(path)).Plan()
			if err != nil {
				return nil, err
			}
			return p.WithCSVSink(""), nil
		}
		if count > 1 {
			return nil, cleanup, errors.New("zillow workload does not support -distinct > 1")
		}
	default:
		return nil, cleanup, fmt.Errorf("unknown pipeline %q (want small or zillow)", pipeline)
	}
	plans := make([]*tuplex.Plan, count)
	for i := range plans {
		p, err := mk(int64(i))
		if err != nil {
			return nil, cleanup, err
		}
		plans[i] = p
	}
	return plans, cleanup, nil
}

// printSummary renders the human-readable report (default output; -json
// replaces it with one machine-readable line).
func printSummary(rep Report) {
	fmt.Printf("loadgen: %s (%d variant(s), %d workers)\n", rep.Pipeline, rep.Distinct, rep.Workers)
	fmt.Printf("  submitted %d: %d ok, %d rejected (429), %d failed, %d cache hits\n",
		rep.Submitted, rep.OK, rep.Rejected, rep.Failed, rep.CacheHits)
	fmt.Printf("  cold p50 %v  p99 %v\n",
		time.Duration(rep.ColdP50NS), time.Duration(rep.ColdP99NS))
	fmt.Printf("  warm p50 %v  p99 %v  (cold/warm p50 %.1fx)\n",
		time.Duration(rep.WarmP50NS), time.Duration(rep.WarmP99NS), rep.Speedup)
	fmt.Printf("  %.0f jobs/sec over %.2fs\n", rep.JobsPerSec, rep.DurationS)
}

func percentile(ns []int64, p int) int64 {
	if len(ns) == 0 {
		return 0
	}
	s := append([]int64(nil), ns...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := len(s) * p / 100
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tuplex-loadgen:", err)
	os.Exit(1)
}
