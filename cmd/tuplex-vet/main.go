// tuplex-vet runs the repo's custom stdlib-only analyzers (see
// internal/lint) over the module's packages: exported-API internal-type
// leaks, trace-span Begin/End mispairings, and atomic-bearing types
// passed by value. It prints vet-style diagnostics and exits nonzero
// when any are found.
//
// Usage:
//
//	tuplex-vet [package dirs...]   (default: every package under .)
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gotuplex/tuplex/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tuplex-vet [package dirs...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	dirs := flag.Args()
	if len(dirs) == 0 {
		var err error
		dirs, err = lint.PackageDirs(".")
		if err != nil {
			fmt.Fprintf(os.Stderr, "tuplex-vet: %v\n", err)
			os.Exit(2)
		}
	}

	// All dirs run together so the fact prepass (atomic-bearing types)
	// sees every package before any is checked.
	diags, err := lint.RunDirs(dirs, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "tuplex-vet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
