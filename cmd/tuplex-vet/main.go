// tuplex-vet runs the repo's custom stdlib-only analyzers (see
// internal/lint) over the module's packages: exported-API internal-type
// leaks and trace-span Begin/End mispairings. It prints vet-style
// diagnostics and exits nonzero when any are found.
//
// Usage:
//
//	tuplex-vet [package dirs...]   (default: every package under .)
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gotuplex/tuplex/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tuplex-vet [package dirs...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	dirs := flag.Args()
	if len(dirs) == 0 {
		var err error
		dirs, err = lint.PackageDirs(".")
		if err != nil {
			fmt.Fprintf(os.Stderr, "tuplex-vet: %v\n", err)
			os.Exit(2)
		}
	}

	bad := false
	for _, dir := range dirs {
		diags, err := lint.RunDir(dir, lint.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "tuplex-vet: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
