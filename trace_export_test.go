package tuplex

import (
	"encoding/json"
	"reflect"
	"testing"
)

// chromeDoc mirrors the trace-event document for test decoding.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestChromeExportRealPipeline marshals a real traced run into the
// Chrome trace-event format and validates it structurally: required
// fields on every event, one complete event per span and per task, and
// child events contained in their parent's window.
func TestChromeExportRealPipeline(t *testing.T) {
	res := tracedPipeline(t, WithTracing(TraceSamples), WithExecutors(2))
	b, err := res.Trace.MarshalChrome()
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var spans, tasks int
	var count func(s *Span)
	count = func(s *Span) {
		spans++
		tasks += len(s.Tasks)
		for _, c := range s.Children {
			count(c)
		}
	}
	count(res.Trace.Root)

	var xDriver, xWorker, meta int
	var lastTID int
	var lastTS float64 = -1
	for _, e := range doc.TraceEvents {
		if e.PID != 1 {
			t.Fatalf("event %q pid = %d, want 1", e.Name, e.PID)
		}
		switch e.Ph {
		case "M":
			meta++
		case "X":
			if e.TS < 0 || e.Dur < 0 {
				t.Fatalf("event %q has negative ts/dur", e.Name)
			}
			// Sorted by (tid, ts): required for stable diffing and for
			// chrome://tracing's stack reconstruction.
			if e.TID < lastTID || (e.TID == lastTID && e.TS < lastTS) {
				t.Fatalf("events out of (tid, ts) order at %q", e.Name)
			}
			lastTID, lastTS = e.TID, e.TS
			if e.TID == 1 {
				xDriver++
			} else {
				xWorker++
			}
		default:
			t.Fatalf("unexpected phase %q on %q", e.Ph, e.Name)
		}
	}
	if xDriver != spans {
		t.Fatalf("driver events = %d, want one per span (%d)", xDriver, spans)
	}
	if xWorker != tasks {
		t.Fatalf("worker events = %d, want one per task (%d)", xWorker, tasks)
	}
	if meta < 2 {
		t.Fatalf("metadata events = %d, want process + thread names", meta)
	}

	// Nesting: the exported ts/dur come straight from the span tree, so
	// verify containment there (the export is a flat projection of it).
	var nest func(s *Span)
	nest = func(s *Span) {
		for _, c := range s.Children {
			if c.StartNS < s.StartNS || c.StartNS+c.DurNS > s.StartNS+s.DurNS {
				t.Fatalf("span %q escapes parent %q", c.Name, s.Name)
			}
			nest(c)
		}
	}
	nest(res.Trace.Root)
}

// TestChromeExportDeterministicPublic marshals the same trace twice —
// identical bytes, no map-order leakage.
func TestChromeExportDeterministicPublic(t *testing.T) {
	res := tracedPipeline(t, WithTracing(TraceRows), WithExecutors(1))
	a, err := res.Trace.MarshalChrome()
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.Trace.MarshalChrome()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two marshals of one trace differ")
	}
}

// TestParseTraceRoundTrip re-parses the exported native JSON into an
// equal span tree, and checks the internal conversion is lossless both
// ways (newTrace ∘ toInternal = identity).
func TestParseTraceRoundTrip(t *testing.T) {
	res := tracedPipeline(t, WithTracing(TraceSamples), WithExecutors(2))
	data, err := json.Marshal(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Trace, back) {
		t.Fatal("native JSON round trip diverged")
	}
	if again := newTrace(res.Trace.toInternal()); !reflect.DeepEqual(res.Trace, again) {
		t.Fatal("internal conversion round trip diverged")
	}
}

// TestMarshalChromeNilTrace: exporting a run without tracing is a clean
// error, not a panic.
func TestMarshalChromeNilTrace(t *testing.T) {
	var tr *Trace
	if _, err := tr.MarshalChrome(); err == nil {
		t.Fatal("nil trace must refuse to marshal")
	}
	if _, err := ParseTrace([]byte("{broken")); err == nil {
		t.Fatal("broken JSON must error")
	}
}
