package tuplex

import (
	"fmt"
	"strings"

	"github.com/gotuplex/tuplex/internal/core"
	"github.com/gotuplex/tuplex/internal/plancheck"
	"github.com/gotuplex/tuplex/internal/spec"
)

// Diagnostic is one finding from the whole-plan static verifier: a
// stable TPX0xx code, a severity ("error", "warning" or "info"), the
// spec location it attributes to ("source", "ops[2]",
// "ops[1].build.ops[0]", "sink", "options") and — for findings inside a
// UDF — a line:col position in the UDF source.
//
// Severities grade confidence and consequence: errors would fail
// compilation or execution deterministically (undefined column,
// incompatible join keys, malformed spec); warnings are provable logic
// defects that run but almost certainly do not mean what the author
// intended (always-raising UDF, dead resolver, constant filter, dead
// column write); infos are no-ops worth knowing about.
type Diagnostic struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Op       string `json:"op,omitempty"`
	Kind     string `json:"kind,omitempty"`
	Pos      string `json:"pos,omitempty"`
	Msg      string `json:"msg"`
}

// String renders "TPX001 error ops[2]: ..." like a compiler diagnostic.
func (d Diagnostic) String() string {
	loc := d.Op
	if d.Pos != "" {
		loc += " @" + d.Pos
	}
	if loc != "" {
		loc = " " + loc
	}
	return fmt.Sprintf("%s %s%s: %s", d.Code, d.Severity, loc, d.Msg)
}

// Validate statically verifies a plan without sampling, compiling or
// executing anything: an abstract interpreter walks the full operator
// DAG (join build sides included) propagating per-column abstract
// schemas seeded at ⊤ instead of sample statistics, and returns every
// finding sorted by spec position. An empty result means the plan is
// clean — it will not fail compilation with a schema error, and no
// provable logic defect was found.
//
// Validate reads no input data beyond a bounded peek at CSV headers to
// learn column names; when even that is unavailable the affected checks
// are suppressed (TPX011) rather than guessed.
func Validate(p *Plan) []Diagnostic {
	if p == nil {
		return []Diagnostic{{Code: "TPX010", Severity: "error", Msg: "nil plan"}}
	}
	return fromPlancheck(plancheck.Check(p.p))
}

// ValidationError carries the diagnostics that failed validation when
// it is enforced (WithValidation, service admission). Diagnostics holds
// the full list, not only the errors that triggered rejection.
type ValidationError struct {
	Diagnostics []Diagnostic
}

func (e *ValidationError) Error() string {
	n := 0
	var first string
	for _, d := range e.Diagnostics {
		if d.Severity == "error" {
			if n == 0 {
				first = d.String()
			}
			n++
		}
	}
	switch n {
	case 0:
		return "tuplex: plan failed validation"
	case 1:
		return "tuplex: invalid plan: " + first
	default:
		var b strings.Builder
		fmt.Fprintf(&b, "tuplex: invalid plan: %d errors:", n)
		for _, d := range e.Diagnostics {
			if d.Severity == "error" {
				b.WriteString("\n\t")
				b.WriteString(d.String())
			}
		}
		return b.String()
	}
}

// WithValidation makes every DataSet operator chain step run the static
// verifier (default off). A step that introduces a validation error —
// an undefined column, incompatible join keys, a malformed op — fails
// the DataSet immediately with a *ValidationError instead of deferring
// discovery to the terminal action's sample/compile, so the failing
// call site is the one in the stack trace. Warnings and infos do not
// fail construction.
func WithValidation(on bool) Option {
	return Option{apply: func(o *core.Options) { o.Validate = on }}
}

// validateNow converts the DataSet's chain to a spec and checks it,
// returning a *ValidationError when any error-severity finding exists.
func (d *DataSet) validateNow() error {
	p, err := spec.FromNode(d.node, d.ctx.opts)
	if err != nil {
		// Chains the spec encoder cannot express yet are out of the
		// verifier's scope; building will vet them.
		return nil
	}
	diags := plancheck.Check(p)
	if !plancheck.HasErrors(diags) {
		return nil
	}
	return &ValidationError{Diagnostics: fromPlancheck(diags)}
}

func fromPlancheck(in []plancheck.Diagnostic) []Diagnostic {
	if len(in) == 0 {
		return nil
	}
	out := make([]Diagnostic, len(in))
	for i, d := range in {
		out[i] = Diagnostic{
			Code:     d.Code,
			Severity: string(d.Severity),
			Op:       d.Op,
			Kind:     d.Kind,
			Pos:      d.Pos,
			Msg:      d.Msg,
		}
	}
	return out
}
