// Benchmarks regenerating the paper's evaluation (§6): one testing.B
// benchmark per table/figure, over small fixed datasets so `go test
// -bench=.` completes in minutes. For paper-style output with the
// published reference numbers alongside, run `go run ./cmd/tuplex-bench`
// — both paths share internal/experiments and internal/pipelines.
package tuplex_test

import (
	"fmt"
	"testing"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/blackbox"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/handopt"
	"github.com/gotuplex/tuplex/internal/hyper"
	"github.com/gotuplex/tuplex/internal/lambda"
	"github.com/gotuplex/tuplex/internal/pandaframe"
	"github.com/gotuplex/tuplex/internal/pipelines"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/weld"
)

const (
	benchZillowRows  = 20_000
	benchFlightRows  = 10_000
	benchWeblogRows  = 20_000
	bench311Rows     = 50_000
	benchQ6Rows      = 300_000
	benchParallelism = 4
)

var (
	benchZillow           = data.Zillow(data.ZillowConfig{Rows: benchZillowRows, Seed: 2})
	benchFlights          = data.Flights(data.FlightsConfig{Rows: benchFlightRows, Seed: 3})
	benchCarriers         = data.Carriers()
	benchAirports         = data.Airports()
	benchLogs, benchBadIP = data.Weblogs(data.WeblogConfig{Rows: benchWeblogRows, Seed: 4})
	bench311              = data.ThreeOneOne(data.ThreeOneOneConfig{Rows: bench311Rows, Seed: 5})
	benchLineitem         = data.TPCHLineitem(data.TPCHConfig{Rows: benchQ6Rows, Seed: 6})
)

// BenchmarkTable2Datagen measures the dataset generators themselves.
func BenchmarkTable2Datagen(b *testing.B) {
	b.Run("zillow", func(b *testing.B) {
		for range b.N {
			_ = data.Zillow(data.ZillowConfig{Rows: benchZillowRows, Seed: 2})
		}
	})
	b.Run("flights", func(b *testing.B) {
		for range b.N {
			_ = data.Flights(data.FlightsConfig{Rows: benchFlightRows, Seed: 3})
		}
	})
	b.Run("weblogs", func(b *testing.B) {
		for range b.N {
			_, _ = data.Weblogs(data.WeblogConfig{Rows: benchWeblogRows, Seed: 4})
		}
	})
}

// BenchmarkFig3SingleThreaded is the single-threaded Zillow comparison.
func BenchmarkFig3SingleThreaded(b *testing.B) {
	b.Run("python-dict", func(b *testing.B) {
		for range b.N {
			mustFrame(b)(blackbox.New(blackbox.Config{Mode: blackbox.ModePython}).RunZillow(benchZillow))
		}
	})
	b.Run("python-tuple", func(b *testing.B) {
		for range b.N {
			mustFrame(b)(blackbox.New(blackbox.Config{Mode: blackbox.ModePython, RowFormat: blackbox.RowsAsTuples}).RunZillow(benchZillow))
		}
	})
	b.Run("pandas", func(b *testing.B) {
		for range b.N {
			if _, err := pandaframe.NewEngine().RunZillow(benchZillow); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tuplex", func(b *testing.B) {
		for range b.N {
			runTuplexZillow(b, 1)
		}
	})
	b.Run("hand-optimized", func(b *testing.B) {
		for range b.N {
			if len(handopt.ZillowCSV(benchZillow)) == 0 {
				b.Fatal("empty output")
			}
		}
	})
}

// BenchmarkFig3Parallel is the multi-executor Zillow comparison.
func BenchmarkFig3Parallel(b *testing.B) {
	p := benchParallelism
	b.Run("pyspark-tuple", func(b *testing.B) {
		for range b.N {
			mustFrame(b)(blackbox.New(blackbox.Config{Mode: blackbox.ModePySpark, Executors: p, RowFormat: blackbox.RowsAsTuples}).RunZillow(benchZillow))
		}
	})
	b.Run("pysparksql", func(b *testing.B) {
		for range b.N {
			mustFrame(b)(blackbox.New(blackbox.Config{Mode: blackbox.ModePySparkSQL, Executors: p}).RunZillow(benchZillow))
		}
	})
	b.Run("dask", func(b *testing.B) {
		for range b.N {
			mustFrame(b)(blackbox.New(blackbox.Config{Mode: blackbox.ModeDask, Executors: p}).RunZillow(benchZillow))
		}
	})
	b.Run("tuplex", func(b *testing.B) {
		for range b.N {
			runTuplexZillow(b, p)
		}
	})
}

// BenchmarkFig4Flights is the flights pipeline comparison.
func BenchmarkFig4Flights(b *testing.B) {
	p := benchParallelism
	b.Run("dask", func(b *testing.B) {
		for range b.N {
			mustFrame(b)(blackbox.New(blackbox.Config{Mode: blackbox.ModeDask, Executors: p}).RunFlights(benchFlights, benchCarriers, benchAirports))
		}
	})
	b.Run("pysparksql", func(b *testing.B) {
		for range b.N {
			mustFrame(b)(blackbox.New(blackbox.Config{Mode: blackbox.ModePySparkSQL, Executors: p}).RunFlights(benchFlights, benchCarriers, benchAirports))
		}
	})
	b.Run("tuplex", func(b *testing.B) {
		for range b.N {
			c := tuplex.NewContext(tuplex.WithExecutors(p))
			res, err := pipelines.Flights(pipelines.FlightsSources(c, benchFlights, benchCarriers, benchAirports)).Collect()
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) == 0 {
				b.Fatal("no rows")
			}
		}
	})
}

// BenchmarkFig5Weblogs covers the parse variants on Tuplex and the
// black-box engines.
func BenchmarkFig5Weblogs(b *testing.B) {
	p := benchParallelism
	variants := []pipelines.WeblogVariant{
		pipelines.WeblogStrip, pipelines.WeblogSplit,
		pipelines.WeblogPerColRegex, pipelines.WeblogRegex,
	}
	for _, v := range variants {
		b.Run(fmt.Sprintf("tuplex-%s", slug(v.String())), func(b *testing.B) {
			for range b.N {
				c := tuplex.NewContext(tuplex.WithExecutors(p))
				res, err := pipelines.Weblogs(
					c.Text("", tuplex.TextData(benchLogs)),
					c.CSV("", tuplex.CSVData(benchBadIP)), v).ToCSV("")
				if err != nil {
					b.Fatal(err)
				}
				_ = res
			}
		})
	}
	b.Run("pyspark-strip", func(b *testing.B) {
		for range b.N {
			mustFrame(b)(blackbox.New(blackbox.Config{Mode: blackbox.ModePySpark, Executors: p}).RunWeblogs(benchLogs, benchBadIP, pipelines.WeblogStrip))
		}
	})
	b.Run("pysparksql-percol", func(b *testing.B) {
		for range b.N {
			mustFrame(b)(blackbox.New(blackbox.Config{Mode: blackbox.ModePySparkSQL, Executors: p}).RunWeblogs(benchLogs, benchBadIP, pipelines.WeblogRegex))
		}
	})
	b.Run("dask-strip", func(b *testing.B) {
		for range b.N {
			mustFrame(b)(blackbox.New(blackbox.Config{Mode: blackbox.ModeDask, Executors: p}).RunWeblogs(benchLogs, benchBadIP, pipelines.WeblogStrip))
		}
	})
}

// BenchmarkFig6PyPy contrasts the traced-JIT analog with plain
// interpretation.
func BenchmarkFig6PyPy(b *testing.B) {
	b.Run("cpython", func(b *testing.B) {
		for range b.N {
			mustFrame(b)(blackbox.New(blackbox.Config{Mode: blackbox.ModePython}).RunZillow(benchZillow))
		}
	})
	b.Run("pypy-analog", func(b *testing.B) {
		for range b.N {
			mustFrame(b)(blackbox.New(blackbox.Config{Mode: blackbox.ModePython, UDFEngine: blackbox.EngineTraced}).RunZillow(benchZillow))
		}
	})
	b.Run("pandas-pypy-cpyext", func(b *testing.B) {
		for range b.N {
			e := pandaframe.NewEngine()
			e.Traced = true
			e.CExtCost = 2
			if _, err := e.RunZillow(benchZillow); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig7Compilers contrasts the transpiler analog, Tuplex and the
// interpreter.
func BenchmarkFig7Compilers(b *testing.B) {
	b.Run("cpython", func(b *testing.B) {
		for range b.N {
			mustFrame(b)(blackbox.New(blackbox.Config{Mode: blackbox.ModePython}).RunZillow(benchZillow))
		}
	})
	b.Run("cython-analog", func(b *testing.B) {
		for range b.N {
			mustFrame(b)(blackbox.New(blackbox.Config{Mode: blackbox.ModePython, UDFEngine: blackbox.EngineTranspiled}).RunZillow(benchZillow))
		}
	})
	b.Run("tuplex", func(b *testing.B) {
		for range b.N {
			runTuplexZillow(b, 1)
		}
	})
}

// BenchmarkFig9Cleaning311 is the Weld comparison on the 311 workload.
func BenchmarkFig9Cleaning311(b *testing.B) {
	zips, err := pandaframe.Run311Load(bench311)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("weld-query-only", func(b *testing.B) {
		for range b.N {
			if len(weld.Clean311(zips)) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("weld-e2e", func(b *testing.B) {
		for range b.N {
			if _, err := weld.Run311EndToEnd(bench311); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tuplex-e2e", func(b *testing.B) {
		for range b.N {
			c := tuplex.NewContext(tuplex.WithExecutors(1))
			res, err := pipelines.ThreeOneOne(c.CSV("", tuplex.CSVData(bench311))).Collect()
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) == 0 {
				b.Fatal("no zips")
			}
		}
	})
	b.Run("dask-e2e", func(b *testing.B) {
		for range b.N {
			mustFrame(b)(blackbox.New(blackbox.Config{Mode: blackbox.ModeDask, Executors: benchParallelism}).Run311(bench311))
		}
	})
}

// BenchmarkFig10Q6 is the TPC-H Q6 comparison.
func BenchmarkFig10Q6(b *testing.B) {
	cols, err := weld.LoadQ6(benchLineitem)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := hyper.Load(benchLineitem)
	if err != nil {
		b.Fatal(err)
	}
	tab.BuildIndex()
	b.Run("weld-kernel", func(b *testing.B) {
		for range b.N {
			_ = weld.Q6(cols, data.Q6DateLo, data.Q6DateHi)
		}
	})
	b.Run("hyper-indexed", func(b *testing.B) {
		for range b.N {
			_ = tab.Q6Indexed(data.Q6DateLo, data.Q6DateHi)
		}
	})
	b.Run("hyper-e2e", func(b *testing.B) {
		for range b.N {
			t2, err := hyper.Load(benchLineitem)
			if err != nil {
				b.Fatal(err)
			}
			t2.BuildIndex()
			_ = t2.Q6Indexed(data.Q6DateLo, data.Q6DateHi)
		}
	})
	b.Run("tuplex-e2e", func(b *testing.B) {
		for range b.N {
			c := tuplex.NewContext(tuplex.WithExecutors(1))
			if _, _, err := pipelines.Q6(c.CSV("", tuplex.CSVData(benchLineitem))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("handopt", func(b *testing.B) {
		for range b.N {
			_ = handopt.Q6(benchLineitem, data.Q6DateLo, data.Q6DateHi)
		}
	})
}

// BenchmarkFig11Factors sweeps the optimization toggles on flights.
func BenchmarkFig11Factors(b *testing.B) {
	configs := []struct {
		name string
		opts []tuplex.Option
	}{
		{"unopt", []tuplex.Option{
			tuplex.WithoutLogicalOptimizations(), tuplex.WithoutStageFusion(),
			tuplex.WithoutNullOptimization(), tuplex.WithoutCompilerOptimizations()}},
		{"logical", []tuplex.Option{
			tuplex.WithoutStageFusion(), tuplex.WithoutNullOptimization(),
			tuplex.WithoutCompilerOptimizations()}},
		{"logical+fusion", []tuplex.Option{
			tuplex.WithoutNullOptimization(), tuplex.WithoutCompilerOptimizations()}},
		{"logical+fusion+null", []tuplex.Option{tuplex.WithoutCompilerOptimizations()}},
		{"all", nil},
	}
	for _, cfg := range configs {
		opts := append([]tuplex.Option{tuplex.WithExecutors(benchParallelism)}, cfg.opts...)
		b.Run(cfg.name, func(b *testing.B) {
			for range b.N {
				c := tuplex.NewContext(opts...)
				if _, err := pipelines.Flights(pipelines.FlightsSources(c, benchFlights, benchCarriers, benchAirports)).Collect(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNullOptimization isolates §6.3.3 on the flights pipeline.
func BenchmarkNullOptimization(b *testing.B) {
	b.Run("with-null-opt", func(b *testing.B) {
		for range b.N {
			c := tuplex.NewContext(tuplex.WithExecutors(benchParallelism))
			if _, err := pipelines.Flights(pipelines.FlightsSources(c, benchFlights, benchCarriers, benchAirports)).Collect(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without-null-opt", func(b *testing.B) {
		for range b.N {
			c := tuplex.NewContext(tuplex.WithExecutors(benchParallelism), tuplex.WithoutNullOptimization())
			if _, err := pipelines.Flights(pipelines.FlightsSources(c, benchFlights, benchCarriers, benchAirports)).Collect(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig12Distributed contrasts the serverless backend with the
// fixed cluster over chunked objects.
func BenchmarkFig12Distributed(b *testing.B) {
	store := lambda.NewObjectStore()
	lambda.UploadChunks(store, "in/z", lambda.ChunkCSV(benchZillow, len(benchZillow)/8+1, true))
	task := func(chunk []byte) ([]byte, error) {
		c := tuplex.NewContext(tuplex.WithExecutors(1))
		res, err := pipelines.Zillow(c.CSV("", tuplex.CSVData(chunk))).ToCSV("")
		if err != nil {
			return nil, err
		}
		return res.CSV, nil
	}
	sparkTask := func(chunk []byte) ([]byte, error) {
		e := blackbox.New(blackbox.Config{Mode: blackbox.ModePySpark, RowFormat: blackbox.RowsAsTuples})
		f, err := e.RunZillow(chunk)
		if err != nil {
			return nil, err
		}
		return e.ToCSV(f), nil
	}
	b.Run("tuplex-lambdas", func(b *testing.B) {
		for i := range b.N {
			cfg := lambda.DefaultConfig()
			cfg.MaxConcurrency = 8
			if _, err := lambda.NewBackend(cfg).Run(store, "in/z", fmt.Sprintf("out/z%d", i), task); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("spark-cluster", func(b *testing.B) {
		for range b.N {
			cl := &lambda.Cluster{Executors: 8}
			if _, _, err := cl.Run(store, "in/z", sparkTask); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompilerOptimizations isolates the dataflow-driven UDF
// specialization (§5.1 analog): the UDF below carries a branch that is
// dead under the sampled facts (flag stays in 0..9) and a string
// comparison against a column the sample proves constant. With
// optimizations on, the dataflow pass prunes the branch and folds the
// comparison so the normal path runs the surviving arithmetic only;
// with them off, every row evaluates both conditions.
func BenchmarkCompilerOptimizations(b *testing.B) {
	const rows = 50_000
	var sb []byte
	sb = append(sb, "i,j,flag,tag\n"...)
	for n := range rows {
		sb = fmt.Appendf(sb, "%d,%d,%d,steady\n", n, n%97+1, n%10)
	}
	udf := tuplex.UDF(
		"lambda x: x['i'] * x['i'] + x['j'] if x['flag'] > 100 else " +
			"(x['i'] + x['j'] if x['tag'] == 'never-this-value' else x['i'] - x['j'])")
	run := func(b *testing.B, opt bool) {
		b.Helper()
		for range b.N {
			c := tuplex.NewContext(
				tuplex.WithExecutors(1), tuplex.WithCompilerOptimizations(opt))
			res, err := c.CSV("", tuplex.CSVData(sb)).
				WithColumn("v", udf).
				Collect()
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != rows {
				b.Fatalf("rows = %d, want %d", len(res.Rows), rows)
			}
		}
	}
	b.Run("optimized", func(b *testing.B) { run(b, true) })
	b.Run("unoptimized", func(b *testing.B) { run(b, false) })
}

// BenchmarkExceptionMechanisms backs the §5 prose claim that return-code
// exception flow beats unwinding: the same guarded division loop with
// codegen-style return codes vs Go panic/recover (the unwinding analog).
func BenchmarkExceptionMechanisms(b *testing.B) {
	const n = 10_000
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(i % 100) // 1% zero divisors
	}
	b.Run("return-codes", func(b *testing.B) {
		div := func(a, bv int64) (int64, pyvalue.ExcKind) {
			if bv == 0 {
				return 0, pyvalue.ExcZeroDivisionError
			}
			return a / bv, 0
		}
		for range b.N {
			var sum int64
			exceptions := 0
			for _, v := range values {
				q, ec := div(1000, v)
				if ec != 0 {
					exceptions++
					continue
				}
				sum += q
			}
			if exceptions == 0 {
				b.Fatal("no exceptions exercised")
			}
		}
	})
	b.Run("panic-unwind", func(b *testing.B) {
		div := func(a, bv int64) int64 {
			if bv == 0 {
				panic(pyvalue.ExcZeroDivisionError)
			}
			return a / bv
		}
		for range b.N {
			var sum int64
			exceptions := 0
			for _, v := range values {
				func() {
					defer func() {
						if r := recover(); r != nil {
							exceptions++
						}
					}()
					sum += div(1000, v)
				}()
			}
			if exceptions == 0 {
				b.Fatal("no exceptions exercised")
			}
		}
	})
}

func runTuplexZillow(b *testing.B, executors int) {
	b.Helper()
	c := tuplex.NewContext(tuplex.WithExecutors(executors))
	res, err := pipelines.Zillow(c.CSV("", tuplex.CSVData(benchZillow))).ToCSV("")
	if err != nil {
		b.Fatal(err)
	}
	if len(res.CSV) == 0 {
		b.Fatal("empty output")
	}
}

func mustFrame(b *testing.B) func(*blackbox.Frame, error) {
	return func(f *blackbox.Frame, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if f == nil {
			b.Fatal("nil frame")
		}
	}
}

func slug(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' {
			c = '-'
		}
		out = append(out, c)
	}
	return string(out)
}
