#!/bin/sh
# serve_smoke.sh — CI smoke test for the tuplex-serve daemon.
#
# Exercises the service end to end with tuplex-loadgen:
#   1. zillow: a real pipeline over a generated 20k-row CSV answers 200
#      and its byte-identical resubmissions are cache hits.
#   2. small: an expression-heavy tiny-data job shows the cache skipping
#      sampling + compilation — cold p50 must be >= 10x warm p50.
#   3. tiny: sustained resubmission throughput >= 1000 jobs/sec, every
#      one a cache hit.
#   4. /metrics exposes the service counters with the hits recorded.
#   5. validate: an invalid spec gets 422 + TPX diagnostics from
#      /v1/jobs without consuming an admission slot or cache entry,
#      and /v1/validate returns the list without executing anything.
#   6. overload: a daemon capped at one slot and no queue sheds a
#      32-way storm with 429s, then still answers afterwards.
#   7. SIGTERM drains cleanly (exit 0, "drained cleanly" in the log).
set -eu

PORT="${PORT:-9825}"
PORT2="${PORT2:-9826}"
ADDR="127.0.0.1:$PORT"
ADDR2="127.0.0.1:$PORT2"
TMP="$(mktemp -d)"
SERVE_PID=""
SERVE2_PID=""
trap 'kill "$SERVE_PID" "$SERVE2_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/tuplex-serve" ./cmd/tuplex-serve
go build -o "$TMP/tuplex-loadgen" ./cmd/tuplex-loadgen

"$TMP/tuplex-serve" -addr "$ADDR" >"$TMP/serve.log" 2>&1 &
SERVE_PID=$!

# Wait for the daemon to accept connections.
ready() {
    addr="$1"
    for i in $(seq 1 50); do
        if curl -s -o /dev/null "http://$addr/v1/jobs"; then
            return 0
        fi
        sleep 0.2
    done
    echo "serve-smoke: daemon on $addr never came up" >&2
    return 1
}
ready "$ADDR"

echo "serve-smoke: [1/7] zillow job + cache hit on resubmission"
"$TMP/tuplex-loadgen" -addr "http://$ADDR" -pipeline zillow -zillow-rows 20000 \
    -n 2 -c 1 -assert-hits >"$TMP/zillow.json"

echo "serve-smoke: [2/7] cold vs warm: cache must skip sample+compile (>=10x)"
"$TMP/tuplex-loadgen" -addr "http://$ADDR" -pipeline small \
    -n 20 -c 1 -assert-hits -assert-speedup 10 >"$TMP/small.json"

echo "serve-smoke: [3/7] sustained throughput >= 1000 jobs/sec"
"$TMP/tuplex-loadgen" -addr "http://$ADDR" -pipeline tiny \
    -n 3000 -c 8 -assert-hits -assert-min-rate 1000 >"$TMP/tiny.json"

echo "serve-smoke: [4/7] service metrics exposed"
curl -s "http://$ADDR/metrics" >"$TMP/metrics.txt"
grep -q '^tuplex_service_cache_hits_total ' "$TMP/metrics.txt" || {
    echo "serve-smoke: tuplex_service_cache_hits_total missing from /metrics" >&2
    exit 1
}
hits=$(awk '/^tuplex_service_cache_hits_total /{print int($2)}' "$TMP/metrics.txt")
[ "$hits" -gt 0 ] || {
    echo "serve-smoke: /metrics recorded no cache hits (got $hits)" >&2
    exit 1
}

echo "serve-smoke: [5/7] invalid spec: 422 with diagnostics, no slot or cache entry consumed"
BAD_SPEC='{"v":1,"source":{"kind":"parallelize","columns":["a","b"],"rows":[[1,2]]},"ops":[{"kind":"withColumn","col":"c","udf":{"code":"lambda x: x[\"nope\"] + 1"}}]}'
metric() { awk -v m="^$2 " '$0 ~ m {print int($2)}' "$1"; }
curl -s "http://$ADDR/metrics" >"$TMP/before.txt"
code=$(curl -s -o "$TMP/invalid.json" -w '%{http_code}' -X POST "http://$ADDR/v1/jobs" -d "$BAD_SPEC")
[ "$code" = "422" ] || {
    echo "serve-smoke: invalid spec got $code, want 422:" >&2
    cat "$TMP/invalid.json" >&2
    exit 1
}
grep -q '"TPX001"' "$TMP/invalid.json" || {
    echo "serve-smoke: 422 body carries no TPX001 diagnostic:" >&2
    cat "$TMP/invalid.json" >&2
    exit 1
}
curl -s "http://$ADDR/metrics" >"$TMP/after.txt"
for m in tuplex_service_jobs_submitted_total tuplex_service_cache_hits_total \
         tuplex_service_cache_misses_total tuplex_service_queue_depth; do
    b=$(metric "$TMP/before.txt" "$m"); a=$(metric "$TMP/after.txt" "$m")
    [ "$b" = "$a" ] || {
        echo "serve-smoke: invalid spec moved $m ($b -> $a)" >&2
        exit 1
    }
done
inv=$(metric "$TMP/after.txt" tuplex_service_jobs_invalid_total)
[ "$inv" -ge 1 ] || {
    echo "serve-smoke: tuplex_service_jobs_invalid_total did not count the 422 (got $inv)" >&2
    exit 1
}
code=$(curl -s -o "$TMP/validate.json" -w '%{http_code}' -X POST "http://$ADDR/v1/validate" -d "$BAD_SPEC")
[ "$code" = "200" ] || {
    echo "serve-smoke: /v1/validate answered $code, want 200" >&2
    exit 1
}
grep -q '"TPX001"' "$TMP/validate.json" || {
    echo "serve-smoke: /v1/validate body carries no TPX001 diagnostic:" >&2
    cat "$TMP/validate.json" >&2
    exit 1
}

echo "serve-smoke: [6/7] overload sheds with 429 instead of collapsing"
"$TMP/tuplex-serve" -addr "$ADDR2" -max-concurrent 1 -queue-depth -1 \
    >"$TMP/serve2.log" 2>&1 &
SERVE2_PID=$!
ready "$ADDR2"
"$TMP/tuplex-loadgen" -addr "http://$ADDR2" -pipeline tiny \
    -n 800 -c 32 -expect-429 >"$TMP/overload.json"
# The daemon must still answer normally after the storm.
"$TMP/tuplex-loadgen" -addr "http://$ADDR2" -pipeline tiny \
    -n 5 -c 1 -assert-hits >"$TMP/after.json"

echo "serve-smoke: [7/7] SIGTERM drains cleanly"
for pid in "$SERVE_PID" "$SERVE2_PID"; do
    kill -TERM "$pid"
    wait "$pid" || {
        echo "serve-smoke: daemon (pid $pid) exited non-zero on SIGTERM" >&2
        cat "$TMP/serve.log" "$TMP/serve2.log" >&2
        exit 1
    }
done
SERVE_PID=""
SERVE2_PID=""
grep -q 'drained cleanly' "$TMP/serve.log" || {
    echo "serve-smoke: daemon did not report a clean drain:" >&2
    cat "$TMP/serve.log" >&2
    exit 1
}

echo "serve-smoke: ok (cache hit, >=10x cold/warm, >=1k jobs/sec, 422 fail-fast, 429 shedding, clean drain)"
