#!/bin/sh
# serve_smoke.sh — CI smoke test for the tuplex-serve daemon.
#
# Exercises the service end to end with tuplex-loadgen:
#   1. zillow: a real pipeline over a generated 20k-row CSV answers 200
#      and its byte-identical resubmissions are cache hits.
#   2. small: an expression-heavy tiny-data job shows the cache skipping
#      sampling + compilation — cold p50 must be >= 10x warm p50,
#      checked here from loadgen's -json report (not scraped text).
#   3. tiny: sustained resubmission throughput >= 1000 jobs/sec, every
#      one a cache hit.
#   4. /metrics exposes the service counters with the hits recorded.
#   5. trace: a traced warm submission's /v1/jobs/{id}/trace?format=chrome
#      is a valid Chrome trace-event document with spans; it is kept as a
#      workflow artifact ($SMOKE_ARTIFACTS).
#   6. validate: an invalid spec gets 422 + TPX diagnostics from
#      /v1/jobs without consuming an admission slot or cache entry,
#      and /v1/validate returns the list without executing anything.
#   7. overload: a daemon capped at one slot and no queue sheds a
#      32-way storm with 429s, the flight recorder at
#      /debug/tuplex/eventz shows the shed events, and the daemon still
#      answers afterwards.
#   8. SIGTERM drains cleanly (exit 0, "drained cleanly" in the log).
set -eu

PORT="${PORT:-9825}"
PORT2="${PORT2:-9826}"
ADDR="127.0.0.1:$PORT"
ADDR2="127.0.0.1:$PORT2"
TMP="$(mktemp -d)"
ART="${SMOKE_ARTIFACTS:-$TMP}"
mkdir -p "$ART"
SERVE_PID=""
SERVE2_PID=""
trap 'kill "$SERVE_PID" "$SERVE2_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/tuplex-serve" ./cmd/tuplex-serve
go build -o "$TMP/tuplex-loadgen" ./cmd/tuplex-loadgen

"$TMP/tuplex-serve" -addr "$ADDR" >"$TMP/serve.log" 2>&1 &
SERVE_PID=$!

# Wait for the daemon to accept connections.
ready() {
    addr="$1"
    for i in $(seq 1 50); do
        if curl -s -o /dev/null "http://$addr/v1/jobs"; then
            return 0
        fi
        sleep 0.2
    done
    echo "serve-smoke: daemon on $addr never came up" >&2
    return 1
}
ready "$ADDR"

# jnum FILE FIELD extracts a numeric field from a JSON report (compact
# loadgen output or the daemon's indented documents).
jnum() { sed -n "s/.*\"$2\": *\([0-9][0-9]*\).*/\1/p" "$1" | head -n 1; }
# jstr FILE FIELD extracts a string field.
jstr() { sed -n "s/.*\"$2\": *\"\([^\"]*\)\".*/\1/p" "$1" | head -n 1; }

echo "serve-smoke: [1/8] zillow job + cache hit on resubmission"
"$TMP/tuplex-loadgen" -addr "http://$ADDR" -pipeline zillow -zillow-rows 20000 \
    -n 2 -c 1 -assert-hits -json >"$TMP/zillow.json"

echo "serve-smoke: [2/8] cold vs warm: cache must skip sample+compile (>=10x)"
"$TMP/tuplex-loadgen" -addr "http://$ADDR" -pipeline small \
    -n 20 -c 1 -assert-hits -json >"$TMP/small.json"
cold_p50=$(jnum "$TMP/small.json" cold_p50_ns)
warm_p50=$(jnum "$TMP/small.json" warm_p50_ns)
warm_p99=$(jnum "$TMP/small.json" warm_p99_ns)
[ -n "$cold_p50" ] && [ -n "$warm_p50" ] && [ "$warm_p50" -gt 0 ] || {
    echo "serve-smoke: loadgen -json report missing percentiles:" >&2
    cat "$TMP/small.json" >&2
    exit 1
}
[ "$cold_p50" -ge $((warm_p50 * 10)) ] || {
    echo "serve-smoke: cold p50 ${cold_p50}ns < 10x warm p50 ${warm_p50}ns" >&2
    exit 1
}
echo "serve-smoke:   cold p50 ${cold_p50}ns, warm p50 ${warm_p50}ns, warm p99 ${warm_p99}ns"

echo "serve-smoke: [3/8] sustained throughput >= 1000 jobs/sec"
"$TMP/tuplex-loadgen" -addr "http://$ADDR" -pipeline tiny \
    -n 3000 -c 8 -assert-hits -assert-min-rate 1000 -json >"$TMP/tiny.json"

echo "serve-smoke: [4/8] service metrics exposed"
curl -s "http://$ADDR/metrics" >"$TMP/metrics.txt"
grep -q '^tuplex_service_cache_hits_total ' "$TMP/metrics.txt" || {
    echo "serve-smoke: tuplex_service_cache_hits_total missing from /metrics" >&2
    exit 1
}
hits=$(awk '/^tuplex_service_cache_hits_total /{print int($2)}' "$TMP/metrics.txt")
[ "$hits" -gt 0 ] || {
    echo "serve-smoke: /metrics recorded no cache hits (got $hits)" >&2
    exit 1
}

echo "serve-smoke: [5/8] job trace endpoint: valid Chrome trace for a warm job"
GOOD_SPEC='{"v":1,"source":{"kind":"parallelize","columns":["a","b"],"rows":[[1,2],[3,4]]},"ops":[{"kind":"withColumn","col":"c","udf":{"code":"lambda x: x[\"a\"] + 1"}}]}'
curl -s -o /dev/null -X POST "http://$ADDR/v1/jobs" -d "$GOOD_SPEC"
curl -s -H 'X-Tuplex-Trace: smoke-trace-1' -X POST "http://$ADDR/v1/jobs" \
    -d "$GOOD_SPEC" >"$TMP/traced-job.json"
job_id=$(jstr "$TMP/traced-job.json" id)
[ -n "$job_id" ] || {
    echo "serve-smoke: traced submission returned no job id:" >&2
    cat "$TMP/traced-job.json" >&2
    exit 1
}
grep -q '"trace_id": *"smoke-trace-1"' "$TMP/traced-job.json" || {
    echo "serve-smoke: X-Tuplex-Trace id did not round-trip:" >&2
    cat "$TMP/traced-job.json" >&2
    exit 1
}
code=$(curl -s -o "$TMP/job-trace.json" -w '%{http_code}' \
    "http://$ADDR/v1/jobs/$job_id/trace?format=chrome")
[ "$code" = "200" ] || {
    echo "serve-smoke: trace endpoint answered $code, want 200" >&2
    exit 1
}
# Structural checks: a trace-event document with complete events for the
# service spans and the engine run beneath them.
grep -q '"traceEvents"' "$TMP/job-trace.json" &&
    grep -q '"ph": *"X"' "$TMP/job-trace.json" &&
    grep -q '"name": *"job"' "$TMP/job-trace.json" &&
    grep -q '"name": *"run"' "$TMP/job-trace.json" || {
    echo "serve-smoke: chrome trace is not a span-bearing trace-event doc:" >&2
    head -c 400 "$TMP/job-trace.json" >&2
    exit 1
}
[ "$ART" = "$TMP" ] || cp "$TMP/job-trace.json" "$ART/job-trace.json"
echo "serve-smoke:   chrome trace for job $job_id kept at $ART/job-trace.json"

echo "serve-smoke: [6/8] invalid spec: 422 with diagnostics, no slot or cache entry consumed"
BAD_SPEC='{"v":1,"source":{"kind":"parallelize","columns":["a","b"],"rows":[[1,2]]},"ops":[{"kind":"withColumn","col":"c","udf":{"code":"lambda x: x[\"nope\"] + 1"}}]}'
metric() { awk -v m="^$2 " '$0 ~ m {print int($2)}' "$1"; }
curl -s "http://$ADDR/metrics" >"$TMP/before.txt"
code=$(curl -s -o "$TMP/invalid.json" -w '%{http_code}' -X POST "http://$ADDR/v1/jobs" -d "$BAD_SPEC")
[ "$code" = "422" ] || {
    echo "serve-smoke: invalid spec got $code, want 422:" >&2
    cat "$TMP/invalid.json" >&2
    exit 1
}
grep -q '"TPX001"' "$TMP/invalid.json" || {
    echo "serve-smoke: 422 body carries no TPX001 diagnostic:" >&2
    cat "$TMP/invalid.json" >&2
    exit 1
}
curl -s "http://$ADDR/metrics" >"$TMP/after.txt"
for m in tuplex_service_jobs_submitted_total tuplex_service_cache_hits_total \
         tuplex_service_cache_misses_total tuplex_service_queue_depth; do
    b=$(metric "$TMP/before.txt" "$m"); a=$(metric "$TMP/after.txt" "$m")
    [ "$b" = "$a" ] || {
        echo "serve-smoke: invalid spec moved $m ($b -> $a)" >&2
        exit 1
    }
done
inv=$(metric "$TMP/after.txt" tuplex_service_jobs_invalid_total)
[ "$inv" -ge 1 ] || {
    echo "serve-smoke: tuplex_service_jobs_invalid_total did not count the 422 (got $inv)" >&2
    exit 1
}
code=$(curl -s -o "$TMP/validate.json" -w '%{http_code}' -X POST "http://$ADDR/v1/validate" -d "$BAD_SPEC")
[ "$code" = "200" ] || {
    echo "serve-smoke: /v1/validate answered $code, want 200" >&2
    exit 1
}
grep -q '"TPX001"' "$TMP/validate.json" || {
    echo "serve-smoke: /v1/validate body carries no TPX001 diagnostic:" >&2
    cat "$TMP/validate.json" >&2
    exit 1
}

echo "serve-smoke: [7/8] overload sheds with 429 and the flight recorder shows it"
"$TMP/tuplex-serve" -addr "$ADDR2" -max-concurrent 1 -queue-depth -1 \
    >"$TMP/serve2.log" 2>&1 &
SERVE2_PID=$!
ready "$ADDR2"
"$TMP/tuplex-loadgen" -addr "http://$ADDR2" -pipeline tiny \
    -n 800 -c 32 -expect-429 -json >"$TMP/overload.json"
rejected=$(jnum "$TMP/overload.json" rejected_429)
[ -n "$rejected" ] && [ "$rejected" -gt 0 ] || {
    echo "serve-smoke: overload report shows no 429s:" >&2
    cat "$TMP/overload.json" >&2
    exit 1
}
# The storm must be visible in the flight recorder as shed events.
curl -s "http://$ADDR2/debug/tuplex/eventz" >"$TMP/eventz.json"
grep -q '"kind": *"shed"' "$TMP/eventz.json" || {
    echo "serve-smoke: /debug/tuplex/eventz recorded no shed events after $rejected 429s:" >&2
    head -c 400 "$TMP/eventz.json" >&2
    exit 1
}
[ "$ART" = "$TMP" ] || cp "$TMP/eventz.json" "$ART/eventz.json"
# The daemon must still answer normally after the storm.
"$TMP/tuplex-loadgen" -addr "http://$ADDR2" -pipeline tiny \
    -n 5 -c 1 -assert-hits -json >"$TMP/after.json"

echo "serve-smoke: [8/8] SIGTERM drains cleanly"
for pid in "$SERVE_PID" "$SERVE2_PID"; do
    kill -TERM "$pid"
    wait "$pid" || {
        echo "serve-smoke: daemon (pid $pid) exited non-zero on SIGTERM" >&2
        cat "$TMP/serve.log" "$TMP/serve2.log" >&2
        exit 1
    }
done
SERVE_PID=""
SERVE2_PID=""
grep -q 'drained cleanly' "$TMP/serve.log" || {
    echo "serve-smoke: daemon did not report a clean drain:" >&2
    cat "$TMP/serve.log" >&2
    exit 1
}

echo "serve-smoke: ok (cache hit, >=10x cold/warm, >=1k jobs/sec, chrome trace, 422 fail-fast, 429 shedding + eventz, clean drain)"
