#!/bin/sh
# telemetry_smoke.sh — CI smoke test for the live-introspection server.
#
# Starts tuplex-bench with -listen while a small experiment runs, then
# scrapes /metrics and /debug/tuplex/runz. Fails on any non-200 status
# or empty body, and requires /metrics to look like Prometheus text
# exposition and /runz to be JSON with a run in it.
set -eu

PORT="${PORT:-9815}"
ADDR="127.0.0.1:$PORT"
TMP="$(mktemp -d)"
trap 'kill "$BENCH_PID" 2>/dev/null || true; wait "$BENCH_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/tuplex-bench" ./cmd/tuplex-bench

"$TMP/tuplex-bench" -listen "$ADDR" -small ingest >"$TMP/bench.out" 2>&1 &
BENCH_PID=$!

# fetch URL OUT — 200-or-fail with retries while the server comes up.
fetch() {
    url="$1"; out="$2"
    for i in $(seq 1 50); do
        if ! kill -0 "$BENCH_PID" 2>/dev/null; then
            echo "telemetry-smoke: tuplex-bench exited before $url was scraped" >&2
            cat "$TMP/bench.out" >&2
            exit 1
        fi
        status="$(curl -s -o "$out" -w '%{http_code}' "http://$ADDR$url" || true)"
        if [ "$status" = "200" ] && [ -s "$out" ]; then
            return 0
        fi
        sleep 0.2
    done
    echo "telemetry-smoke: $url never returned 200 with a body (last status: ${status:-none})" >&2
    exit 1
}

fetch /metrics "$TMP/metrics.txt"
fetch /debug/tuplex/runz "$TMP/runz.json"

grep -q '^tuplex_runs_live ' "$TMP/metrics.txt" || {
    echo "telemetry-smoke: /metrics is not Prometheus text exposition:" >&2
    head "$TMP/metrics.txt" >&2
    exit 1
}

# The scrape raced a live run; either list may hold it by now, but the
# payload must be JSON mentioning runs at all.
grep -q '"live"' "$TMP/runz.json" || {
    echo "telemetry-smoke: /debug/tuplex/runz payload malformed:" >&2
    head "$TMP/runz.json" >&2
    exit 1
}

# Keep scraping until a run shows up in /metrics (the experiment loops
# several runs, so one is bound to register).
for i in $(seq 1 100); do
    if grep -q '^tuplex_input_rows_total{' "$TMP/metrics.txt"; then
        break
    fi
    sleep 0.2
    fetch /metrics "$TMP/metrics.txt"
done
grep -q '^tuplex_input_rows_total{' "$TMP/metrics.txt" || {
    echo "telemetry-smoke: no run ever appeared in /metrics" >&2
    exit 1
}

wait "$BENCH_PID" || {
    echo "telemetry-smoke: tuplex-bench failed:" >&2
    cat "$TMP/bench.out" >&2
    exit 1
}
echo "telemetry-smoke: ok (/metrics and /debug/tuplex/runz served a monitored run)"
