#!/bin/sh
# bench_compare.sh — regression gate over the committed benchmark
# snapshot.
#
# Snapshots the committed BENCH_8.json baseline, reruns `make
# bench-json` (which overwrites BENCH_8.json in place), and compares
# the fresh numbers against the baseline. Fails when any benchmark
# regresses by more than 25% in mb_per_sec or rows_per_sec, or grows
# allocs_per_op beyond 2x. join/sharded additionally has a hard
# allocs/op guard: the columnar build/probe path must stay within 2x
# of the committed snapshot (the boxed bounce it removed cost ~210k
# allocs/op; silently reverting to it would pass a rate-only gate on
# a fast machine). Improvements print a note; commit the refreshed
# BENCH_8.json when they are real.
#
# Usage: sh scripts/bench_compare.sh [baseline.json]
set -eu

BASE_FILE=${1:-BENCH_8.json}
if [ ! -f "$BASE_FILE" ]; then
    echo "bench_compare: baseline $BASE_FILE not found" >&2
    exit 2
fi

TMPDIR_CMP=$(mktemp -d)
trap 'rm -rf "$TMPDIR_CMP"' EXIT
cp "$BASE_FILE" "$TMPDIR_CMP/baseline.json"

make bench-json

python3 - "$TMPDIR_CMP/baseline.json" "$BASE_FILE" <<'EOF'
import json, sys

base_path, new_path = sys.argv[1], sys.argv[2]
base = {e["name"]: e for e in json.load(open(base_path))}
new = {e["name"]: e for e in json.load(open(new_path))}

MAX_RATE_DROP = 0.25   # mb_per_sec / rows_per_sec may drop at most 25%
MAX_ALLOC_GROWTH = 2.0 # allocs_per_op may at most double

failures = []
for name, b in sorted(base.items()):
    n = new.get(name)
    if n is None:
        failures.append(f"{name}: missing from fresh run")
        continue
    for key in ("mb_per_sec", "rows_per_sec"):
        old, cur = b.get(key, 0), n.get(key, 0)
        if old > 0:
            ratio = cur / old
            tag = f"{name} {key}: {old:.2f} -> {cur:.2f} ({ratio:.2f}x)"
            if ratio < 1 - MAX_RATE_DROP:
                failures.append("REGRESSION " + tag)
            else:
                print(("improved  " if ratio > 1 else "ok        ") + tag)
    old_a, cur_a = b.get("allocs_per_op", 0), n.get("allocs_per_op", 0)
    if old_a > 0:
        ratio = cur_a / old_a
        tag = f"{name} allocs_per_op: {old_a} -> {cur_a} ({ratio:.2f}x)"
        if ratio > MAX_ALLOC_GROWTH:
            failures.append("REGRESSION " + tag)
        else:
            print("ok        " + tag)
for name in sorted(set(new) - set(base)):
    print(f"new       {name} (no baseline yet)")

# Hard guard: join/sharded must keep the columnar build/probe path.
# A revert to the boxed bounce multiplies allocs/op ~20x, which the
# generic 2x gate above also catches — but only if the entry exists
# in both files, so pin it explicitly.
jb, jn = base.get("join/sharded"), new.get("join/sharded")
if jb is None or jn is None:
    failures.append("join/sharded: missing from baseline or fresh run")
elif jb.get("allocs_per_op", 0) > 0 and \
        jn.get("allocs_per_op", 0) > 2 * jb["allocs_per_op"]:
    failures.append(
        f"REGRESSION join/sharded allocs_per_op guard: "
        f"{jb['allocs_per_op']} -> {jn['allocs_per_op']} (>2x; boxed bounce back?)")

if failures:
    print()
    for f in failures:
        print(f, file=sys.stderr)
    sys.exit(1)
print("\nbench_compare: no regressions beyond thresholds")
EOF
