package tuplex

import (
	"fmt"
	"sort"
	"testing"

	"github.com/gotuplex/tuplex/internal/types"
)

// TestJoinDuplicateBuildKeysOrder: duplicate build keys fan out one
// output row per match, in build input order (the sharded table must
// preserve the single-map insertion order).
func TestJoinDuplicateBuildKeysOrder(t *testing.T) {
	c := NewContext()
	build := c.Parallelize([][]any{
		{int64(7), "first"},
		{int64(9), "other"},
		{int64(7), "second"},
		{int64(7), "third"},
	}, []string{"k", "name"})
	probe := c.Parallelize([][]any{
		{int64(7), "p"},
	}, []string{"k", "v"})
	res := collect(t, probe.Join(build, "k", "k"))
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for i, want := range []string{"first", "second", "third"} {
		if res.Rows[i][2] != want {
			t.Fatalf("row %d = %v, want name %q", i, res.Rows[i], want)
		}
	}
}

// TestJoinNumericKeyNormalization: int probe keys join float and bool
// build keys when the values are numerically equal (1 == 1.0 == True).
func TestJoinNumericKeyNormalization(t *testing.T) {
	c := NewContext()
	build := c.Parallelize([][]any{
		{float64(1), "f-one"},
		{float64(2.5), "f-half"},
	}, []string{"k", "name"})
	probe := c.Parallelize([][]any{
		{int64(1), "a"},
		{int64(2), "b"},
	}, []string{"k", "v"})
	res := collect(t, probe.Join(build, "k", "k"))
	if len(res.Rows) != 1 || res.Rows[0][2] != "f-one" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestJoinBuildSideExceptionRows: a non-conforming build row (bool in an
// int column) lands in the general map; a conforming probe row whose key
// matches it must divert to the exception path and pick up matches from
// BOTH the sharded table and the general map (§4.5 NC/EC pairs).
func TestJoinBuildSideExceptionRows(t *testing.T) {
	c := NewContext()
	build := c.Parallelize([][]any{
		{int64(1), "shard"},
		{int64(2), "two"},
		{true, "general"}, // exception row; True normalizes to key 1
	}, []string{"k", "name"})
	probe := c.Parallelize([][]any{
		{int64(1), "p1"},
		{int64(2), "p2"},
		{int64(3), "p3"},
	}, []string{"k", "v"})
	res := collect(t, probe.Join(build, "k", "k"))
	got := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		got = append(got, fmt.Sprint(r))
	}
	sort.Strings(got)
	want := []string{
		fmt.Sprint([]any{int64(1), "p1", "general"}),
		fmt.Sprint([]any{int64(1), "p1", "shard"}),
		fmt.Sprint([]any{int64(2), "p2", "two"}),
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

// TestJoinProbeSideExceptionRows: a non-conforming probe row resolved on
// the boxed path must probe the same build table and join correctly.
func TestJoinProbeSideExceptionRows(t *testing.T) {
	c := NewContext()
	build := c.Parallelize([][]any{
		{int64(1), "one"},
		{int64(2), "two"},
	}, []string{"k", "name"})
	probe := c.Parallelize([][]any{
		{int64(2), "clean"},
		{true, "dirty"}, // exception row; True normalizes to key 1
	}, []string{"k", "v"})
	res := collect(t, probe.Join(build, "k", "k"))
	got := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		got = append(got, fmt.Sprintf("%v-%v", r[1], r[2]))
	}
	sort.Strings(got)
	if fmt.Sprint(got) != fmt.Sprint([]string{"clean-two", "dirty-one"}) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestLeftJoinExceptionNonePadding: an unmatched exception-path probe
// row on a left join still pads the build columns with None.
func TestLeftJoinExceptionNonePadding(t *testing.T) {
	c := NewContext()
	build := c.Parallelize([][]any{
		{int64(1), "one"},
	}, []string{"k", "name"})
	probe := c.Parallelize([][]any{
		{int64(1), "hit"},
		{"zz", "miss"}, // exception row; string key matches nothing
	}, []string{"k", "v"})
	res := collect(t, probe.LeftJoin(build, "k", "k"))
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	byV := map[any]any{}
	for _, r := range res.Rows {
		byV[r[1]] = r[2]
	}
	if byV["hit"] != "one" || byV["miss"] != nil {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestJoinShardedMatchesReference: differential check of the sharded
// build/probe kernels against a nested-loop reference join, at one and
// at several executors — output rows and their order must be identical
// to the probe-order × build-order reference.
func TestJoinShardedMatchesReference(t *testing.T) {
	const buildN, probeN = 150, 400
	build := make([][]any, buildN)
	for i := range build {
		build[i] = []any{int64(i * 13 % 50), fmt.Sprintf("b%d", i)}
	}
	probe := make([][]any, probeN)
	for i := range probe {
		probe[i] = []any{int64(i * 7 % 60), fmt.Sprintf("p%d", i)}
	}
	var want []string
	for _, pr := range probe {
		for _, br := range build {
			if pr[0] == br[0] {
				want = append(want, fmt.Sprint([]any{pr[0], pr[1], br[1]}))
			}
		}
	}
	for _, execs := range []int{1, 4} {
		c := NewContext(WithExecutors(execs))
		res := collect(t, c.Parallelize(probe, []string{"k", "v"}).
			Join(c.Parallelize(build, []string{"k", "name"}), "k", "k"))
		got := make([]string, 0, len(res.Rows))
		for _, r := range res.Rows {
			got = append(got, fmt.Sprint(r))
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("executors=%d: %d rows vs reference %d; mismatch", execs, len(got), len(want))
		}
	}
}

// TestJoinCSVSinkMaterializesBuildSide: regression — with a CSV sink
// the join build sub-chain used to inherit the engine-wide sink kind,
// so its terminal stage rendered CSV and materialized nothing, leaving
// every build table empty (joins under ToCSV silently matched zero
// rows).
func TestJoinCSVSinkMaterializesBuildSide(t *testing.T) {
	c := NewContext()
	build := c.CSV("", CSVData([]byte("k,name\n1,one\n2,two\n")))
	probe := c.CSV("", CSVData([]byte("k,v\n1,p1\n3,p3\n")))
	res, err := probe.Join(build, "k", "k").ToCSV("")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(res.CSV); got != "k,v,name\n1,p1,one\n" {
		t.Fatalf("csv = %q", got)
	}
	if res.Metrics.Join.BuildRows != 2 {
		t.Fatalf("build rows = %d, want 2", res.Metrics.Join.BuildRows)
	}
}

// TestUniqueNoFramingCollision: regression for the old uniqueKey
// encoding, which concatenated per-column renders with 0-byte/tag-byte
// separators — these two distinct rows used to encode identically and
// Unique() returned only one of them.
func TestUniqueNoFramingCollision(t *testing.T) {
	tag := string(byte(types.KindStr))
	rowA := []any{"x\x00" + tag + "y", "z"}
	rowB := []any{"x", "y\x00" + tag + "z"}
	c := NewContext()
	res := collect(t, c.Parallelize([][]any{rowA, rowB, rowA}, []string{"a", "b"}).Unique())
	if len(res.Rows) != 2 {
		t.Fatalf("distinct rows = %d (%v), want 2", len(res.Rows), res.Rows)
	}
}

// TestUniqueParallelMatchesSerial: the shard-parallel unique merge keeps
// first-occurrence order identical to the single-threaded path.
func TestUniqueParallelMatchesSerial(t *testing.T) {
	data := make([][]any, 500)
	for i := range data {
		data[i] = []any{int64(i * 11 % 37), fmt.Sprintf("s%d", i%23)}
	}
	run := func(execs int) string {
		c := NewContext(WithExecutors(execs))
		res := collect(t, c.Parallelize(data, []string{"n", "s"}).Unique())
		return fmt.Sprint(res.Rows)
	}
	serial := run(1)
	if parallel := run(4); parallel != serial {
		t.Fatalf("parallel unique differs from serial:\n%s\nvs\n%s", parallel, serial)
	}
}
