package tuplex_test

import (
	"fmt"
	"strings"
	"testing"

	tuplex "github.com/gotuplex/tuplex"
)

// Columnar join edge cases: the vector-native build/probe path must
// agree with the boxed row path on inputs that stress its layout — keys
// from all-null columns, string keys long enough to span arena chunk
// seams, a filter-annihilated build side, and duplicate-key fan-out
// ordering — plus a dirty-key NC/EC differential, streamed and
// materialized.

func wantSameRows(t *testing.T, on, off *tuplex.Result) {
	t.Helper()
	if got, want := fmt.Sprint(on.Rows), fmt.Sprint(off.Rows); got != want {
		t.Fatalf("rows differ:\n  columnar %s\n  boxed    %s", got, want)
	}
	if on.Metrics.Rows != off.Metrics.Rows {
		t.Fatalf("accounting differs: columnar %+v, boxed %+v", on.Metrics.Rows, off.Metrics.Rows)
	}
}

// TestColumnarJoinAllNullKeyColumns: every key cell on one (then both)
// sides is null. Whatever null-key semantics the row path implements,
// the vector path must reproduce them, including left-outer padding.
func TestColumnarJoinAllNullKeyColumns(t *testing.T) {
	var build, probe strings.Builder
	build.WriteString("k,name\n")
	probe.WriteString("k,v\n")
	for i := range 50 {
		fmt.Fprintf(&build, ",b%d\n", i)
		if i%2 == 0 {
			fmt.Fprintf(&probe, ",p%d\n", i)
		} else {
			fmt.Fprintf(&probe, "%d,p%d\n", i, i)
		}
	}
	for _, left := range []bool{false, true} {
		on, off := bothModes(t, func(c *tuplex.Context) (*tuplex.Result, error) {
			lhs := c.CSV("", tuplex.CSVData([]byte(probe.String())))
			rhs := c.CSV("", tuplex.CSVData([]byte(build.String())))
			if left {
				return lhs.LeftJoin(rhs, "k", "k").Collect()
			}
			return lhs.Join(rhs, "k", "k").Collect()
		})
		wantSameRows(t, on, off)
	}
}

// TestColumnarJoinArenaSeamKeys: string keys from a few hundred bytes
// up past the string arena's largest chunk size (64 KiB), so encoded
// keys routinely start in one arena chunk and end in another on both
// the build and probe vectors.
func TestColumnarJoinArenaSeamKeys(t *testing.T) {
	key := func(i int) string {
		return fmt.Sprintf("k%d-%s", i, strings.Repeat(string(rune('a'+i%26)), 300+i*700%70000))
	}
	var build, probe strings.Builder
	build.WriteString("k,name\n")
	probe.WriteString("k,v\n")
	for i := range 120 {
		fmt.Fprintf(&build, "%s,b%d\n", key(i), i)
		fmt.Fprintf(&probe, "%s,p%d\n", key(i*3%150), i)
	}
	on, off := bothModes(t, func(c *tuplex.Context) (*tuplex.Result, error) {
		lhs := c.CSV("", tuplex.CSVData([]byte(probe.String())))
		rhs := c.CSV("", tuplex.CSVData([]byte(build.String())))
		return lhs.Join(rhs, "k", "k").ToCSV("")
	})
	wantSameCSV(t, on, off)
	if !strings.Contains(string(on.CSV), ",b3\n") && !strings.Contains(string(on.CSV), ",b3\r\n") {
		t.Fatalf("expected some matches in output, got %d bytes", len(on.CSV))
	}
}

// TestColumnarJoinFilterAnnihilatedBuild: a filter drops every build
// row before the join, leaving an empty build table. Inner joins must
// emit nothing; left joins must pad every probe row.
func TestColumnarJoinFilterAnnihilatedBuild(t *testing.T) {
	buildRows := make([][]any, 30)
	for i := range buildRows {
		buildRows[i] = []any{int64(i), fmt.Sprintf("b%d", i)}
	}
	probeRows := make([][]any, 20)
	for i := range probeRows {
		probeRows[i] = []any{int64(i), fmt.Sprintf("p%d", i)}
	}
	for _, left := range []bool{false, true} {
		on, off := bothModes(t, func(c *tuplex.Context) (*tuplex.Result, error) {
			rhs := c.Parallelize(buildRows, []string{"k", "name"}).
				Filter(tuplex.UDF("lambda x: x['k'] < 0"))
			lhs := c.Parallelize(probeRows, []string{"k", "v"})
			if left {
				return lhs.LeftJoin(rhs, "k", "k").Collect()
			}
			return lhs.Join(rhs, "k", "k").Collect()
		})
		wantSameRows(t, on, off)
		if left && len(on.Rows) != len(probeRows) {
			t.Fatalf("left join over empty build: rows = %d, want %d", len(on.Rows), len(probeRows))
		}
		if !left && len(on.Rows) != 0 {
			t.Fatalf("inner join over empty build: rows = %v, want none", on.Rows)
		}
	}
}

// TestColumnarJoinDuplicateKeyFanOut: heavy duplicate-key fan-out (each
// probe row matches many build rows) must keep build input order within
// each probe row's matches, at one and several executors, identically
// in both modes.
func TestColumnarJoinDuplicateKeyFanOut(t *testing.T) {
	const buildN, probeN, keys = 200, 60, 5
	buildRows := make([][]any, buildN)
	for i := range buildRows {
		buildRows[i] = []any{int64(i % keys), fmt.Sprintf("b%d", i)}
	}
	probeRows := make([][]any, probeN)
	for i := range probeRows {
		probeRows[i] = []any{int64(i % (keys + 2)), fmt.Sprintf("p%d", i)}
	}
	var want []string
	for _, pr := range probeRows {
		for _, br := range buildRows {
			if pr[0] == br[0] {
				want = append(want, fmt.Sprint([]any{pr[0], pr[1], br[1]}))
			}
		}
	}
	for _, execs := range []int{1, 4} {
		on, off := bothModes(t, func(c *tuplex.Context) (*tuplex.Result, error) {
			lhs := c.Parallelize(probeRows, []string{"k", "v"})
			rhs := c.Parallelize(buildRows, []string{"k", "name"})
			return lhs.Join(rhs, "k", "k").Collect()
		}, tuplex.WithExecutors(execs))
		wantSameRows(t, on, off)
		got := make([]string, 0, len(on.Rows))
		for _, r := range on.Rows {
			got = append(got, fmt.Sprint([]any(r)))
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("executors=%d: fan-out order diverges from nested-loop reference (%d vs %d rows)",
				execs, len(got), len(want))
		}
	}
}

// TestColumnarJoinDirtyKeyPairsDiff: NC/EC join pairs — both sides
// carry dirty key cells (bools and garbage in an int column) that land
// on the exception path and must join consistently with the sharded
// normal-case table, columnar vs boxed, materialized and streamed.
func TestColumnarJoinDirtyKeyPairsDiff(t *testing.T) {
	var build, probe strings.Builder
	build.WriteString("k,name\n")
	probe.WriteString("k,v\n")
	for i := range 800 {
		switch {
		case i%97 == 0:
			fmt.Fprintf(&build, "True,b%d\n", i)
		case i%53 == 0:
			fmt.Fprintf(&build, "junk-%d,b%d\n", i, i)
		default:
			fmt.Fprintf(&build, "%d,b%d\n", i%120, i)
		}
		switch {
		case i%89 == 0:
			fmt.Fprintf(&probe, "False,p%d\n", i)
		case i%41 == 0:
			fmt.Fprintf(&probe, "bad-%d,p%d\n", i, i)
		default:
			fmt.Fprintf(&probe, "%d,p%d\n", i%150, i)
		}
	}
	for _, streamed := range []bool{false, true} {
		extra := []tuplex.Option{tuplex.WithStreamingIngest(false)}
		if streamed {
			extra = []tuplex.Option{tuplex.WithChunkSize(2 << 10)}
		}
		for _, left := range []bool{false, true} {
			on, off := bothModes(t, func(c *tuplex.Context) (*tuplex.Result, error) {
				lhs := c.CSV("", tuplex.CSVData([]byte(probe.String())))
				rhs := c.CSV("", tuplex.CSVData([]byte(build.String())))
				if left {
					return lhs.LeftJoin(rhs, "k", "k").ToCSV("")
				}
				return lhs.Join(rhs, "k", "k").ToCSV("")
			}, extra...)
			wantSameCSV(t, on, off)
		}
	}
}
