package tuplex_test

import (
	"fmt"

	tuplex "github.com/gotuplex/tuplex"
)

// ExampleDataSet_MapColumn shows the paper's introductory conversion UDF
// with a resolver for missing values.
func ExampleDataSet_MapColumn() {
	csv := "code,distance\nAA,100\nBB,\nCC,40\n"
	c := tuplex.NewContext(tuplex.WithSampleSize(1))
	res, err := c.CSV("", tuplex.CSVData([]byte(csv))).
		MapColumn("distance", tuplex.UDF("lambda m: m * 1.609")).
		Resolve(tuplex.TypeError, tuplex.UDF("lambda m: 0.0")).
		Collect()
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0], row[1])
	}
	// Output:
	// AA 160.9
	// BB 0
	// CC 64.36
}

// ExampleDataSet_Aggregate computes a predicate-guarded sum the way the
// paper's TPC-H Q6 reproduction does.
func ExampleDataSet_Aggregate() {
	csv := "qty,price\n2,10.0\n30,99.0\n3,1.5\n"
	c := tuplex.NewContext()
	acc, _, err := c.CSV("", tuplex.CSVData([]byte(csv))).
		Aggregate(
			tuplex.UDF("lambda acc, r: acc + r['qty'] * r['price'] if r['qty'] < 24 else acc"),
			tuplex.UDF("lambda a, b: a + b"),
			0.0)
	if err != nil {
		panic(err)
	}
	fmt.Println(acc)
	// Output:
	// 24.5
}

// ExampleDataSet_Map shows a dict-literal UDF fanning a text line out
// into named columns.
func ExampleDataSet_Map() {
	c := tuplex.NewContext()
	res, err := c.Text("", tuplex.TextData([]byte("alice 200\nbob 404\n"))).
		Map(tuplex.UDF("lambda x: {'user': x.split(' ')[0], 'code': int(x.split(' ')[1])}")).
		Filter(tuplex.UDF("lambda x: x['code'] == 200")).
		Collect()
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Columns, res.Rows)
	// Output:
	// [user code] [[alice 200]]
}

// ExampleUDFDef_WithGlobal binds a module-level constant for the UDF,
// like the weblog pipeline's anonymization alphabet.
func ExampleUDFDef_WithGlobal() {
	c := tuplex.NewContext(tuplex.WithSeed(7))
	res, err := c.Text("", tuplex.TextData([]byte("x\n"))).
		Map(tuplex.UDF("lambda x: ''.join([random_choice(AB) for t in range(4)])").
			WithGlobal("AB", "Z")).
		Collect()
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Rows[0][0])
	// Output:
	// ZZZZ
}
