package tuplex

import (
	"fmt"
	"strings"
	"testing"
)

func collect(t *testing.T, d *DataSet) *Result {
	t.Helper()
	res, err := d.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return res
}

func TestQuickstartMapColumn(t *testing.T) {
	csv := "code,distance\nAA,100\nBB,250\nCC,40\n"
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte(csv))).
		MapColumn("distance", UDF("lambda m: m * 1.609")))
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if got := res.Rows[0][1]; got != 160.9 {
		t.Fatalf("row0 distance = %v", got)
	}
	if res.Metrics.Rows.Normal != 3 {
		t.Fatalf("normal rows = %d (all rows should take the fast path)", res.Metrics.Rows.Normal)
	}
}

func TestWithColumnAndFilter(t *testing.T) {
	csv := "name,price\na,5\nb,50\nc,500\n"
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte(csv))).
		WithColumn("expensive", UDF("lambda x: x['price'] > 10")).
		Filter(UDF("lambda x: x['expensive']")))
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[2] != "expensive" {
		t.Fatalf("cols = %v", res.Columns)
	}
}

func TestDirtyRowsGoToExceptionPathAndResolve(t *testing.T) {
	// Row with a non-numeric distance: classifier reject; row with None:
	// normal path raises TypeError; both recovered per the §3 example.
	csv := "code,distance\nAA,100\nBB,bad\nCC,\nDD,50\n"
	c := NewContext(WithSampleSize(2)) // sample sees only clean int rows
	ds := c.CSV("", CSVData([]byte(csv))).
		MapColumn("distance", UDF("lambda m: m * 1.609")).
		Resolve(TypeError, UDF("lambda m: 0.0")).
		Resolve(ValueError, UDF("lambda m: -1.0"))
	res := collect(t, ds)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v (failed: %v)", res.Rows, res.Failed)
	}
	// Order preserved; resolved rows merged back in position.
	if res.Rows[0][1] != 160.9 {
		t.Fatalf("row0 = %v", res.Rows[0])
	}
	if res.Rows[2][1] != 0.0 { // None -> TypeError -> 0.0
		t.Fatalf("row2 = %v", res.Rows[2])
	}
	if res.Rows[3][1] != 80.45 {
		t.Fatalf("row3 = %v", res.Rows[3])
	}
	// The 'bad' row: general parse yields the string "bad"; m * 1.609 is
	// a TypeError in Python, so the TypeError resolver catches it.
	if res.Rows[1][1] != 0.0 {
		t.Fatalf("row1 = %v", res.Rows[1])
	}
	if res.Metrics.Rows.ResolverResolved == 0 {
		t.Fatal("expected resolver activity")
	}
}

func TestFailedRowsReportedNotRaised(t *testing.T) {
	csv := "v\n1\n2\nboom\n4\n"
	c := NewContext(WithSampleSize(2))
	res := collect(t, c.CSV("", CSVData([]byte(csv))).
		MapColumn("v", UDF("lambda m: m + 2")))
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != int64(3) {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Failed) != 1 {
		t.Fatalf("failed = %v", res.Failed)
	}
	if res.Failed[0].Exc != TypeError {
		t.Fatalf("failed exc = %v", res.Failed[0].Exc)
	}
	if !strings.Contains(res.Failed[0].Input, "boom") {
		t.Fatalf("failed input = %q", res.Failed[0].Input)
	}
}

func TestIgnoreDropsRows(t *testing.T) {
	csv := "v\n1\n2\nboom\n4\n"
	c := NewContext(WithSampleSize(2))
	res := collect(t, c.CSV("", CSVData([]byte(csv))).
		MapColumn("v", UDF("lambda m: m + 2")).
		Ignore(TypeError))
	if len(res.Rows) != 3 || len(res.Failed) != 0 {
		t.Fatalf("rows=%v failed=%v", res.Rows, res.Failed)
	}
	if res.Metrics.Rows.Ignored != 1 {
		t.Fatalf("ignored = %d", res.Metrics.Rows.Ignored)
	}
}

func TestInnerJoin(t *testing.T) {
	flights := "code,dist\nAA,100\nBB,200\nZZ,300\n"
	carriers := "code,name\nAA,Alpha Air\nBB,Beta Lines\n"
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte(flights))).
		Join(c.CSV("", CSVData([]byte(carriers))), "code", "code"))
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Output: probe columns + build columns minus build key.
	want := []string{"code", "dist", "name"}
	if fmt.Sprint(res.Columns) != fmt.Sprint(want) {
		t.Fatalf("cols = %v", res.Columns)
	}
	if res.Rows[0][2] != "Alpha Air" {
		t.Fatalf("row0 = %v", res.Rows[0])
	}
}

func TestLeftJoinPadsNulls(t *testing.T) {
	flights := "code,dist\nAA,100\nZZ,300\n"
	carriers := "code,name\nAA,Alpha Air\n"
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte(flights))).
		LeftJoin(c.CSV("", CSVData([]byte(carriers))), "code", "code"))
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[1][2] != nil {
		t.Fatalf("unmatched row should pad nil, got %v", res.Rows[1])
	}
}

func TestJoinMultiMatch(t *testing.T) {
	left := "k,v\na,1\nb,2\n"
	right := "k,w\na,10\na,11\nb,20\n"
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte(left))).
		Join(c.CSV("", CSVData([]byte(right))), "k", "k"))
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoinPrefixes(t *testing.T) {
	left := "iata,dep\nBOS,5\n"
	right := "iata,city\nBOS,Boston\n"
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte(left))).
		LeftJoinPrefixed(c.CSV("", CSVData([]byte(right))), "iata", "iata", "", "Origin"))
	want := []string{"iata", "dep", "Origincity"}
	if fmt.Sprint(res.Columns) != fmt.Sprint(want) {
		t.Fatalf("cols = %v", res.Columns)
	}
}

func TestAggregateSum(t *testing.T) {
	csv := "v\n1\n2\n3\n4\n5\n"
	c := NewContext()
	acc, res, err := c.CSV("", CSVData([]byte(csv))).
		Aggregate(UDF("lambda acc, r: acc + r"), UDF("lambda a, b: a + b"), int64(0))
	if err != nil {
		t.Fatalf("aggregate: %v (res=%v)", err, res)
	}
	if acc != int64(15) {
		t.Fatalf("acc = %v", acc)
	}
}

func TestAggregateWithDirtyRows(t *testing.T) {
	csv := "v\n1\n2\nbad\n4\n"
	c := NewContext(WithSampleSize(2))
	acc, _, err := c.CSV("", CSVData([]byte(csv))).
		Aggregate(UDF("lambda acc, r: acc + r"), UDF("lambda a, b: a + b"), int64(0))
	if err != nil {
		t.Fatal(err)
	}
	// The 'bad' row fails on every path (int + str) and is reported, the
	// rest still aggregate.
	if acc != int64(7) {
		t.Fatalf("acc = %v", acc)
	}
}

func TestAggregateRowAccess(t *testing.T) {
	csv := "qty,price\n2,10.0\n3,1.5\n"
	c := NewContext()
	acc, _, err := c.CSV("", CSVData([]byte(csv))).
		Aggregate(UDF("lambda acc, r: acc + r['qty'] * r['price']"),
			UDF("lambda a, b: a + b"), 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 24.5 {
		t.Fatalf("acc = %v", acc)
	}
}

func TestUnique(t *testing.T) {
	csv := "zip\n02134\n10001\n02134\n10001\n94105\n"
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte(csv))).Unique())
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestTextSourceAndMapToDict(t *testing.T) {
	text := "alpha one\nbeta two\n"
	c := NewContext()
	res := collect(t, c.Text("", TextData([]byte(text))).
		Map(UDF("lambda x: {'first': x.split(' ')[0], 'second': x.split(' ')[1]}")))
	if fmt.Sprint(res.Columns) != fmt.Sprint([]string{"first", "second"}) {
		t.Fatalf("cols = %v", res.Columns)
	}
	if res.Rows[1][0] != "beta" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSelectAndRename(t *testing.T) {
	csv := "a,b,c\n1,2,3\n"
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte(csv))).
		RenameColumn("b", "bee").
		SelectColumns("c", "bee"))
	if fmt.Sprint(res.Columns) != fmt.Sprint([]string{"c", "bee"}) {
		t.Fatalf("cols = %v", res.Columns)
	}
	if res.Rows[0][0] != int64(3) || res.Rows[0][1] != int64(2) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestParallelExecutionMatchesSerial(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("v,w\n")
	for i := range 5000 {
		fmt.Fprintf(&sb, "%d,x%d\n", i, i%7)
	}
	pipeline := func(c *Context) *Result {
		return collect(t, c.CSV("", CSVData([]byte(sb.String()))).
			WithColumn("double", UDF("lambda x: x['v'] * 2")).
			Filter(UDF("lambda x: x['double'] % 3 == 0")))
	}
	serial := pipeline(NewContext(WithExecutors(1)))
	parallel := pipeline(NewContext(WithExecutors(8), WithPartitionRows(512)))
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("serial %d rows, parallel %d rows", len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		if fmt.Sprint(serial.Rows[i]) != fmt.Sprint(parallel.Rows[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, serial.Rows[i], parallel.Rows[i])
		}
	}
}

func TestToCSVRoundTrip(t *testing.T) {
	csv := "name,price\nwidget,5\ngadget,50\n"
	c := NewContext()
	res, err := c.CSV("", CSVData([]byte(csv))).
		MapColumn("price", UDF("lambda p: p * 2")).
		ToCSV("")
	if err != nil {
		t.Fatal(err)
	}
	want := "name,price\nwidget,10\ngadget,100\n"
	if string(res.CSV) != want {
		t.Fatalf("csv = %q, want %q", res.CSV, want)
	}
}

func TestParallelize(t *testing.T) {
	c := NewContext()
	res := collect(t, c.Parallelize([][]any{
		{int64(1), "a"},
		{int64(2), "b"},
		{"oops", "c"}, // non-conforming row -> exception path
	}, []string{"n", "s"}).
		WithColumn("n2", UDF("lambda x: x['n'] + 10")))
	if len(res.Rows) != 2 || len(res.Failed) != 1 {
		t.Fatalf("rows=%v failed=%v", res.Rows, res.Failed)
	}
	if res.Rows[1][2] != int64(12) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestChainedStagesViaUnique(t *testing.T) {
	csv := "v\n3\n1\n3\n2\n"
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte(csv))).
		MapColumn("v", UDF("lambda m: m % 2")).
		Unique().
		MapColumn("v", UDF("lambda m: m + 100")))
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != int64(101) || res.Rows[1][0] != int64(100) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestNullHeavyColumnPrunesBranch(t *testing.T) {
	// A column that is always empty types as Null; `if x else` folds.
	var sb strings.Builder
	sb.WriteString("a,b\n")
	for i := range 50 {
		fmt.Fprintf(&sb, "%d,\n", i)
	}
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte(sb.String()))).
		WithColumn("out", UDF("lambda x: x['b'] * 1.609 if x['b'] else 0.0")))
	if len(res.Rows) != 50 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][2] != 0.0 {
		t.Fatalf("row0 = %v", res.Rows[0])
	}
	if res.Metrics.Rows.Normal != 50 {
		t.Fatalf("normal = %d; null branch should stay on fast path",
			res.Metrics.Rows.Normal)
	}
}

func TestOptionColumnMixedNulls(t *testing.T) {
	// ~50% nulls: polymorphic Option type with runtime checks (§4.2).
	var sb strings.Builder
	sb.WriteString("v\n")
	for i := range 40 {
		if i%2 == 0 {
			fmt.Fprintf(&sb, "%d\n", i)
		} else {
			sb.WriteString("\n")
		}
	}
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte(sb.String()))).
		WithColumn("out", UDF("lambda x: x['v'] * 2 if x['v'] else -1")))
	if len(res.Rows) != 40 {
		t.Fatalf("rows = %d (failed %v)", len(res.Rows), res.Failed)
	}
	// v=0 is falsy in Python, so row 0 also takes the else arm.
	if res.Rows[0][1] != int64(-1) || res.Rows[1][1] != int64(-1) || res.Rows[2][1] != int64(4) {
		t.Fatalf("rows = %v", res.Rows[:3])
	}
	if res.Metrics.Rows.Normal != 40 {
		t.Fatalf("normal = %d; option checks should keep rows on fast path",
			res.Metrics.Rows.Normal)
	}
}

func TestGlobalsInUDF(t *testing.T) {
	c := NewContext(WithSeed(7))
	res := collect(t, c.Text("", TextData([]byte("x\ny\n"))).
		Map(UDF("lambda x: ''.join([random_choice(LETTERS) for t in range(5)])").
			WithGlobal("LETTERS", "AB")))
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	s := res.Rows[0][0].(string)
	if len(s) != 5 || strings.Trim(s, "AB") != "" {
		t.Fatalf("row0 = %q", s)
	}
}

func TestRegexUDF(t *testing.T) {
	text := "1.2.3.4 GET /index.html\n5.6.7.8 POST /submit\nmalformed\n"
	c := NewContext(WithSampleSize(2))
	res := collect(t, c.Text("", TextData([]byte(text))).
		Map(UDF(`def parse(x):
    m = re_search('^(\S+) (\S+) (\S+)', x)
    if m:
        return {'ip': m[1], 'method': m[2], 'path': m[3]}
    return {'ip': '', 'method': '', 'path': ''}
`)))
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v failed=%v", res.Rows, res.Failed)
	}
	if res.Rows[0][0] != "1.2.3.4" || res.Rows[2][0] != "" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCollectAfterPipelineError(t *testing.T) {
	c := NewContext()
	_, err := c.CSV("", CSVData([]byte("a\n1\n"))).
		MapColumn("a", UDF("lambda x:")). // syntax error
		Collect()
	if err == nil {
		t.Fatal("expected parse error")
	}
}

func TestMissingColumnError(t *testing.T) {
	c := NewContext()
	_, err := c.CSV("", CSVData([]byte("a\n1\n"))).
		MapColumn("zzz", UDF("lambda x: x")).
		Collect()
	if err == nil {
		t.Fatal("expected missing-column error")
	}
}

func TestProjectionPushdownParsesOnlyNeededColumns(t *testing.T) {
	// 20 columns, only two read; the dirty cell lives in an unread
	// column and must not cause exceptions (it is never parsed).
	var sb strings.Builder
	cols := make([]string, 20)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d", i)
	}
	sb.WriteString(strings.Join(cols, ","))
	sb.WriteString("\n")
	for i := range 30 {
		row := make([]string, 20)
		for j := range row {
			row[j] = fmt.Sprint(i + j)
		}
		if i == 20 {
			row[7] = "DIRTY" // unread column
		}
		sb.WriteString(strings.Join(row, ","))
		sb.WriteString("\n")
	}
	c := NewContext()
	res := collect(t, c.CSV("", CSVData([]byte(sb.String()))).
		WithColumn("sum", UDF("lambda x: x['c1'] + x['c2']")).
		SelectColumns("sum"))
	if len(res.Rows) != 30 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Metrics.Rows.ClassifierRejects != 0 {
		t.Fatal("dirty cell in an unread column caused a classifier reject; projection pushdown broken")
	}
	// Without projection pushdown, the dirty row must take the slow path.
	c2 := NewContext(WithoutLogicalOptimizations())
	res2 := collect(t, c2.CSV("", CSVData([]byte(sb.String()))).
		WithColumn("sum", UDF("lambda x: x['c1'] + x['c2']")).
		SelectColumns("sum"))
	if len(res2.Rows) != 30 {
		t.Fatalf("rows = %d", len(res2.Rows))
	}
	if res2.Metrics.Rows.ClassifierRejects != 1 {
		t.Fatalf("expected 1 classifier reject without pushdown, got %d",
			res2.Metrics.Rows.ClassifierRejects)
	}
}

func TestStageFusionAblationSameResults(t *testing.T) {
	csv := "v\n1\n2\n3\n4\n"
	run := func(opts ...Option) *Result {
		c := NewContext(opts...)
		return collect(t, c.CSV("", CSVData([]byte(csv))).
			MapColumn("v", UDF("lambda m: m + 1")).
			WithColumn("w", UDF("lambda x: x['v'] * 2")).
			Filter(UDF("lambda x: x['w'] > 4")))
	}
	fused := run()
	unfused := run(WithoutStageFusion())
	if fmt.Sprint(fused.Rows) != fmt.Sprint(unfused.Rows) {
		t.Fatalf("fusion changed results: %v vs %v", fused.Rows, unfused.Rows)
	}
	if unfused.Metrics.NumStages <= fused.Metrics.NumStages {
		t.Fatalf("expected more stages without fusion: %d vs %d",
			unfused.Metrics.NumStages, fused.Metrics.NumStages)
	}
}

func TestCompilerOptAblationSameResults(t *testing.T) {
	csv := "s\nhello world\nfoo bar\n"
	run := func(opts ...Option) *Result {
		c := NewContext(opts...)
		return collect(t, c.CSV("", CSVData([]byte(csv))).
			MapColumn("s", UDF("lambda s: s.split(' ')[0].upper()")))
	}
	opt := run()
	unopt := run(WithoutCompilerOptimizations())
	if fmt.Sprint(opt.Rows) != fmt.Sprint(unopt.Rows) {
		t.Fatalf("codegen specialization changed results: %v vs %v", opt.Rows, unopt.Rows)
	}
}
